#!/usr/bin/env python3
"""Architecture exploration: how topology shapes the schedule.

For one workload (the reconstructed 19-node graph of the paper's
Figure 7) this example sweeps a range of topologies — including ones
beyond the paper's five (torus, star, tree) — and communication models
(store-and-forward vs wormhole vs free), reporting the compacted
schedule length, utilisation, and communication traffic for each.

Run:  python examples/architecture_explorer.py
"""

from repro import cyclo_compact
from repro.arch import (
    BalancedTree,
    CompletelyConnected,
    Hypercube,
    LinearArray,
    Mesh2D,
    Ring,
    Star,
    StoreAndForwardModel,
    Torus2D,
    WormholeModel,
    ZeroCommModel,
    link_loads,
)
from repro.core import CycloConfig
from repro.schedule import compute_metrics
from repro.workloads import figure7_csdfg

CFG = CycloConfig(max_iterations=60, validate_each_step=False)


def topology_sweep() -> None:
    graph = figure7_csdfg()
    topologies = [
        CompletelyConnected(8),
        Hypercube(3),
        Torus2D(3, 3),
        Mesh2D(2, 4),
        Ring(8),
        Star(8),
        LinearArray(8),
        BalancedTree(2, 2),
    ]
    print(f"{'architecture':14s} {'PEs':>3s} {'diam':>4s} "
          f"{'init':>4s} {'after':>5s} {'util':>5s} {'comm':>4s} {'hotlink':>7s}")
    for arch in topologies:
        result = cyclo_compact(graph, arch, config=CFG)
        metrics = compute_metrics(result.graph, arch, result.schedule)
        loads = link_loads(
            result.graph, arch, result.schedule.processor_map()
        )
        print(
            f"{arch.name:14s} {arch.num_pes:3d} {arch.diameter:4d} "
            f"{result.initial_length:4d} {result.final_length:5d} "
            f"{metrics.utilization:5.2f} {metrics.comm_cost:4d} "
            f"{loads.max_load:7d}"
        )


def comm_model_sweep() -> None:
    graph = figure7_csdfg()
    mesh = Mesh2D(2, 4)
    print(f"\n{'comm model':18s} {'init':>4s} {'after':>5s}")
    for model in (StoreAndForwardModel(), WormholeModel(), ZeroCommModel()):
        arch = mesh.with_comm_model(model)
        result = cyclo_compact(graph, arch, config=CFG)
        print(f"{model.name:18s} {result.initial_length:4d} "
              f"{result.final_length:5d}")


def main() -> None:
    print("== topology sweep (19-node workload, store-and-forward) ==")
    topology_sweep()
    print("\n== communication model sweep (2x4 mesh) ==")
    comm_model_sweep()
    print("\nricher connectivity -> shorter schedules; the hotlink column")
    print("shows the congestion a single-channel interconnect would see")
    print("(the paper assumes multiple channels, §3).")


if __name__ == "__main__":
    main()
