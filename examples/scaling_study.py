#!/usr/bin/env python3
"""Scaling study: when do more processors stop helping?

Sweeps processor count, message volume and slowdown factor for one
workload and prints the resulting schedule-length curves — the
saturation behaviour that makes communication-sensitive scheduling
matter (§1 of the paper).

Run:  python examples/scaling_study.py
"""

import math

from repro.analysis import pe_count_sweep, slowdown_sweep, volume_sweep
from repro.core import CycloConfig
from repro.graph import iteration_bound
from repro.workloads import elliptic_wave_filter, figure7_csdfg

CFG = CycloConfig(max_iterations=40, validate_each_step=False)


def bar(value: int, scale: float = 1.0) -> str:
    return "#" * max(1, round(value * scale))


def main() -> None:
    graph = figure7_csdfg()
    print(f"workload: {graph.name} (iteration bound "
          f"{iteration_bound(graph)})\n")

    print("== processor count (2-D mesh family) ==")
    for p in pe_count_sweep(graph, "mesh", [1, 2, 4, 8, 16], config=CFG):
        floor = math.ceil(p.bound)
        print(f"  {p.x:3d} PEs: after={p.after:3d} {bar(p.after)}"
              f"{'  <- saturated (bound ' + str(floor) + ')' if p.after <= floor + 2 and p.x >= 4 else ''}")

    print("\n== message volume (8-PE linear array) ==")
    for p in volume_sweep(graph, "linear", 8, [1, 2, 4], config=CFG):
        print(f"  x{p.x}: after={p.after:3d} {bar(p.after)}")

    elliptic = elliptic_wave_filter()
    print("\n== slowdown factor (elliptic filter, completely connected) ==")
    for p in slowdown_sweep(elliptic, "complete", 8, [1, 2, 3], config=CFG):
        print(f"  x{p.x}: after={p.after:3d} (bound {p.bound}) {bar(p.after)}")

    print("\ntakeaways: PE scaling saturates once the iteration bound or")
    print("the interconnect binds; heavier messages erase parallelism on")
    print("poor topologies; slowdown (Table 11's transform) lowers the")
    print("bound and unlocks deeper pipelining.")


if __name__ == "__main__":
    main()
