#!/usr/bin/env python3
"""DSP filter scheduling across architectures (the paper's Table 11).

Takes the 5th-order elliptic wave filter and an 8-stage lattice filter,
applies the paper's slow-down-3 transform, and schedules them on the
five experimental 8-PE architectures under both remapping policies,
printing a Table 11-shaped comparison.

Run:  python examples/filter_pipeline.py
"""

from repro import paper_architectures
from repro.analysis import format_table11, run_grid
from repro.core import CycloConfig
from repro.graph import slowdown
from repro.workloads import elliptic_wave_filter, lattice_filter


def main() -> None:
    workloads = {
        "Elliptic Filter": slowdown(elliptic_wave_filter(), 3),
        "Lattice Filter": slowdown(lattice_filter(8), 3),
    }
    archs = paper_architectures(8)

    rows = []
    for name, graph in workloads.items():
        print(f"scheduling {name} ({graph.num_nodes} ops, "
              f"total work {graph.total_work()})...")
        for relaxation, label in ((False, "w/o"), (True, "with")):
            cfg = CycloConfig(
                relaxation=relaxation,
                max_iterations=80,
                validate_each_step=False,
            )
            cells = run_grid(graph, archs, relaxation=relaxation, config=cfg)
            rows.append((name, label, cells))

    print()
    print(format_table11(rows))
    print()
    print("reading the table: 'init' is the start-up schedule length,")
    print("'after' the cyclo-compacted length; 'with'/'w/o' is remapping")
    print("relaxation (Definition 4.2). Expected shape: after < init")
    print("everywhere, relaxation never worse, completely connected (com)")
    print("ties or wins.")


if __name__ == "__main__":
    main()
