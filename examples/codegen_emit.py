#!/usr/bin/env python3
"""From loop to programs: scheduling -> code generation -> simulation.

Takes the HAL differential-equation benchmark, compacts it onto a
2x2 mesh with refinement, emits the per-processor steady-state
programs (compute/send/recv listings), extracts the prologue/epilogue
a compiler would wrap around the loop, and finally replays the
schedule in the execution simulator to confirm the emitted program's
timing is deadlock free.

Run:  python examples/codegen_emit.py
"""

from repro.arch import Mesh2D
from repro.codegen import generate_program
from repro.core import CycloConfig, optimize
from repro.retiming import build_loop_code
from repro.sim import buffer_requirements, simulate
from repro.workloads import differential_equation_solver


def main() -> None:
    graph = differential_equation_solver()
    arch = Mesh2D(2, 2)

    result = optimize(
        graph, arch, config=CycloConfig(max_iterations=40, validate_each_step=False)
    )
    print(f"{graph.name} on {arch.name}: {result.initial_length} -> "
          f"{result.final_length} control steps\n")

    # 1. per-PE steady-state programs
    program = generate_program(result.graph, arch, result.schedule)
    print(program.render())
    print(f"\n{program.total_computes} computes and {program.total_sends} "
          f"messages per iteration")

    # 2. prologue / epilogue induced by the cumulative retiming
    iterations = 12
    code = build_loop_code(graph, result.retiming, iterations)
    print(f"\nloop wrapper for {iterations} iterations:")
    print(f"  prologue  {len(code.prologue):3d} instances")
    print(f"  steady    {code.steady_iterations:3d} iterations")
    print(f"  epilogue  {len(code.epilogue):3d} instances")

    # 3. dynamic confirmation + buffer sizing
    sim = simulate(result.graph, arch, result.schedule, iterations=8)
    buffers = buffer_requirements(
        result.graph, arch, result.schedule, result=sim
    )
    print(f"\nsimulated 8 iterations: makespan {sim.makespan}, "
          f"{len(sim.messages)} messages, no violations")
    print(f"peak edge buffers: {buffers.total_tokens} tokens "
          f"({buffers.total_words} words)")


if __name__ == "__main__":
    main()
