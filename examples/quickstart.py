#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Schedules the 6-node CSDFG of Figure 1(b) onto the 2x2 mesh of
Figure 1(a), prints the start-up schedule (7 control steps, matching
the paper's Figure 2(a)), runs cyclo-compaction and prints the
compacted schedule (the paper reaches 5 control steps; this
implementation's remapping typically finds 3-4).

Run:  python examples/quickstart.py
"""

from repro import (
    cyclo_compact,
    figure1_csdfg,
    figure1_mesh,
    iteration_bound,
    render_table,
    start_up_schedule,
    validate_schedule,
)


def main() -> None:
    graph = figure1_csdfg()
    mesh = figure1_mesh()

    print(f"workload: {graph.name} ({graph.num_nodes} tasks, "
          f"{graph.num_edges} dependences)")
    print(f"architecture: {mesh.name} ({mesh.num_pes} PEs, "
          f"diameter {mesh.diameter})")
    print(f"iteration bound (absolute floor): {iteration_bound(graph)}\n")

    # 1. the communication-aware start-up schedule (paper §3)
    startup = start_up_schedule(graph, mesh)
    print(render_table(startup, title="start-up schedule (paper Figure 2(a)):"))
    print()

    # 2. cyclo-compaction (paper §4): rotation + remapping
    result = cyclo_compact(graph, mesh)
    print(render_table(
        result.schedule,
        title=f"after cyclo-compaction "
              f"({result.initial_length} -> {result.final_length} control steps):",
    ))
    print(f"\nlength trajectory: {result.trace.lengths}")
    print(f"cumulative retiming: { {k: v for k, v in result.retiming.items() if v} }")

    # 3. every schedule the library returns is validator-checked
    validate_schedule(result.graph, mesh, result.schedule)
    print("final schedule validated: OK")


if __name__ == "__main__":
    main()
