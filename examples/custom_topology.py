#!/usr/bin/env python3
"""Scheduling on a user-defined architecture.

Builds an irregular multi-board interconnect (two 4-PE clusters joined
by a single bridge link) from an explicit adjacency, saves/reloads it
as JSON, and schedules a communication-heavy fork-join kernel on it —
showing how the optimiser keeps chatty tasks on one side of the bridge.

Run:  python examples/custom_topology.py
"""

import tempfile
from pathlib import Path

from repro import cyclo_compact, render_gantt
from repro.arch import from_adjacency, link_loads, load_architecture, save_architecture
from repro.core import CycloConfig
from repro.graph import fork_join_csdfg


def main() -> None:
    # two completely-connected 4-PE clusters (0-3 and 4-7) with a
    # single bridge link 3 -- 4
    adjacency = {
        0: [1, 2, 3],
        1: [2, 3],
        2: [3],
        4: [5, 6, 7],
        5: [6, 7],
        6: [7],
        3: [4],  # the bridge
    }
    arch = from_adjacency(adjacency, name="dual-cluster")
    print(f"architecture {arch.name}: {arch.num_pes} PEs, "
          f"diameter {arch.diameter} (via the bridge)")

    # persist / reload round trip
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "dual_cluster.json"
        save_architecture(arch, path)
        arch = load_architecture(path)
        print(f"architecture round-tripped through {path.name}")

    # a wide fork-join kernel with chunky messages
    graph = fork_join_csdfg(6, stages=2, time=2, volume=3, loop_delay=2)
    result = cyclo_compact(
        graph, arch, config=CycloConfig(max_iterations=40, validate_each_step=False)
    )
    print(f"\nschedule: {result.initial_length} -> {result.final_length} "
          f"control steps")
    print(render_gantt(result.schedule, title="compacted schedule:"))

    report = link_loads(result.graph, arch, result.schedule.processor_map())
    bridge = report.loads.get((3, 4), 0)
    print(f"\nper-iteration traffic over the bridge link (3,4): {bridge}")
    print(f"total store-and-forward traffic: {report.total_traffic}")
    print("the optimiser clusters communicating tasks to avoid the bridge.")


if __name__ == "__main__":
    main()
