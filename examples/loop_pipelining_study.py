#!/usr/bin/env python3
"""Loop pipelining internals: rotation, retiming, prologue/epilogue.

Dissects what cyclo-compaction does to the loop: how the cumulative
retiming relates to explicit Leiserson–Saxe retiming, what code a
compiler would actually emit (prologue / steady state / epilogue), and
how convergence looks pass by pass.

Run:  python examples/loop_pipelining_study.py
"""

from repro import cyclo_compact
from repro.analysis import convergence_study
from repro.arch import CompletelyConnected
from repro.core import CycloConfig
from repro.graph import critical_path_length, iteration_bound
from repro.retiming import build_loop_code, min_period_retiming
from repro.workloads import figure7_csdfg


def main() -> None:
    graph = figure7_csdfg()
    arch = CompletelyConnected(8)

    print(f"workload: {graph.name}")
    print(f"  critical path (no pipelining):  {critical_path_length(graph)}")
    print(f"  iteration bound (rate optimum): {iteration_bound(graph)}")
    ls_period, _ = min_period_retiming(graph)
    print(f"  Leiserson-Saxe min period (unlimited PEs, free comm): {ls_period}")

    result = cyclo_compact(
        graph, arch, config=CycloConfig(max_iterations=60, validate_each_step=False)
    )
    print(f"\ncyclo-compaction on {arch.name}: "
          f"{result.initial_length} -> {result.final_length}")

    retimed = {k: v for k, v in result.retiming.items() if v}
    print(f"cumulative retiming (non-zero entries): {retimed}")

    # what a compiler emits for N iterations of the retimed loop
    iterations = 10
    code = build_loop_code(graph, result.retiming, iterations)
    print(f"\nloop code for {iterations} iterations:")
    print(f"  prologue:  {len(code.prologue)} instances "
          f"({[f'{i.node}@{i.iteration}' for i in code.prologue[:8]]}"
          f"{' ...' if len(code.prologue) > 8 else ''})")
    print(f"  steady:    {code.steady_iterations} iterations x "
          f"{graph.num_nodes} tasks")
    print(f"  epilogue:  {len(code.epilogue)} instances")
    total = code.total_instances(graph)
    assert total == iterations * graph.num_nodes
    print(f"  total:     {total} == {iterations} x {graph.num_nodes}  (exact)")

    # convergence trajectory
    report = convergence_study(graph, arch, max_iterations=40)
    print(f"\nconvergence: best {report.best} at pass {report.passes_to_best}")
    print(f"trajectory: {list(report.lengths)}")


if __name__ == "__main__":
    main()
