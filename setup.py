"""Setuptools shim.

The execution environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs (``pip install -e .`` via
pyproject only) fail on ``bdist_wheel``.  This shim enables the legacy
editable path; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
