"""RA2xx — static diagnostics of an architecture (healthy or degraded).

The checks work purely from the topology's hop-distance matrix and the
communication cost model — no scheduler is consulted.  A
:class:`~repro.arch.degraded.DegradedTopology` gets two extra looks:
survivor connectivity is re-reported as a diagnostic when construction
already failed upstream (see :func:`build_architecture` in
:mod:`repro.analyze.engine`), and rerouting inflation is compared
against the healthy base machine (RA205).
"""

from __future__ import annotations

from repro.analyze.diagnostics import Diagnostic
from repro.analyze.rules import make
from repro.arch.degraded import DegradedTopology
from repro.arch.routing import route
from repro.arch.topology import Architecture
from repro.graph.csdfg import CSDFG

__all__ = ["check_arch"]

#: Skip the O(n^2) route sweep of RA207 beyond this machine size.
_HOTSPOT_MAX_PES = 128

#: Hot-link threshold: max per-link load >= this multiple of the mean.
_HOTSPOT_RATIO = 3.0


def check_arch(
    arch: Architecture, graph: CSDFG | None = None
) -> list[Diagnostic]:
    """All RA2xx findings of a built architecture.

    ``graph`` sharpens the communication diagnostics (worst-case
    message cost vs. the iteration's total work, surplus processors);
    without it only topology-intrinsic checks run.
    """
    out: list[Diagnostic] = []
    alive = [p for p in arch.processors if arch.is_alive(p)]

    if isinstance(arch, DegradedTopology):
        base_diameter = arch.base.diameter
        degraded_diameter = arch.diameter
        if degraded_diameter > base_diameter:
            out.append(make(
                "RA205",
                f"failed hardware inflated the hop diameter of "
                f"{arch.base.name!r} from {base_diameter} to "
                f"{degraded_diameter} over {len(alive)} surviving PE(s)",
            ))

    out.extend(_contention_bridges(arch, alive))
    out.extend(_contention_hotspot(arch, alive))

    if graph is not None and graph.num_nodes > 0:
        out.extend(_comm_blowup(arch, graph))
        if len(alive) > graph.num_nodes:
            out.append(make(
                "RA204",
                f"{len(alive)} usable PE(s) for {graph.num_nodes} "
                f"task(s): {len(alive) - graph.num_nodes} PE(s) can "
                f"never be busy",
            ))
    return out


def _usable_links(
    arch: Architecture, alive: list[int]
) -> list[tuple[int, int]]:
    """Canonical links whose endpoints are both usable."""
    alive_set = set(alive)
    if isinstance(arch, DegradedTopology):
        return [
            (a, b)
            for a, b in arch.links
            if a in alive_set and b in alive_set
        ]
    return [(a, b) for a, b in arch.links]


def _bridge_links(
    alive: list[int], links: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Bridges of the usable topology (iterative Tarjan low-link)."""
    adjacency: dict[int, list[int]] = {pe: [] for pe in alive}
    for a, b in links:
        adjacency[a].append(b)
        adjacency[b].append(a)
    disc: dict[int, int] = {}
    low: dict[int, int] = {}
    bridges: list[tuple[int, int]] = []
    counter = 0
    for root in alive:
        if root in disc:
            continue
        disc[root] = low[root] = counter
        counter += 1
        stack = [(root, None, iter(adjacency[root]))]
        while stack:
            node, parent, neighbours = stack[-1]
            child = next(neighbours, None)
            if child is None:
                stack.pop()
                if stack:
                    up = stack[-1][0]
                    low[up] = min(low[up], low[node])
                    if low[node] > disc[up]:
                        bridges.append((min(up, node), max(up, node)))
                continue
            if child == parent:
                continue
            if child in disc:
                low[node] = min(low[node], disc[child])
                continue
            disc[child] = low[child] = counter
            counter += 1
            stack.append((child, node, iter(adjacency[child])))
    return sorted(bridges)


def _split_sizes(
    alive: list[int],
    links: list[tuple[int, int]],
    bridge: tuple[int, int],
) -> tuple[int, int]:
    """Component sizes after cutting ``bridge``."""
    adjacency: dict[int, set[int]] = {pe: set() for pe in alive}
    for a, b in links:
        if (min(a, b), max(a, b)) == bridge:
            continue
        adjacency[a].add(b)
        adjacency[b].add(a)
    seen = {bridge[0]}
    frontier = [bridge[0]]
    while frontier:
        node = frontier.pop()
        for nxt in adjacency[node]:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    one = len(seen)
    return one, len(alive) - one


def _contention_bridges(
    arch: Architecture, alive: list[int]
) -> list[Diagnostic]:
    """RA206 when the usable topology funnels traffic over bridges."""
    if len(alive) < 3:
        return []
    links = _usable_links(arch, alive)
    bridges = _bridge_links(alive, links)
    if not bridges:
        return []
    # report the most balanced split: it carries the most cross traffic
    worst = max(bridges, key=lambda br: min(_split_sizes(alive, links, br)))
    a, b = _split_sizes(alive, links, worst)
    return [make(
        "RA206",
        f"{len(bridges)} of {len(links)} usable link(s) are bridges; "
        f"cutting the worst, {worst}, splits {arch.name!r} into "
        f"{a} + {b} PE(s), so all traffic between the sides "
        f"serialises on that one link under contention",
    )]


def _contention_hotspot(
    arch: Architecture, alive: list[int]
) -> list[Diagnostic]:
    """RA207 when deterministic routes concentrate uniform traffic."""
    links = _usable_links(arch, alive)
    if len(links) < 2 or len(alive) < 3 or len(alive) > _HOTSPOT_MAX_PES:
        return []
    loads: dict[tuple[int, int], int] = {link: 0 for link in links}
    for i, src in enumerate(alive):
        for dst in alive[i + 1:]:
            path = route(arch, src, dst)
            for a, b in zip(path, path[1:]):
                loads[(min(a, b), max(a, b))] += 1
    total = sum(loads.values())
    if total == 0:
        return []
    mean = total / len(links)
    hot_link, hot_load = max(loads.items(), key=lambda kv: (kv[1], kv[0]))
    if hot_load < _HOTSPOT_RATIO * mean:
        return []
    return [make(
        "RA207",
        f"uniform all-pairs routing pushes {hot_load} of {total} "
        f"route-hops over link {hot_link} of {arch.name!r} "
        f"({hot_load / mean:.1f}x the per-link mean): a contention "
        f"hotspot any shared-bottleneck workload will queue on",
    )]


def _comm_blowup(arch: Architecture, graph: CSDFG) -> list[Diagnostic]:
    """RA203 when one worst-case message rivals the whole compute."""
    volumes = [e.volume for e in graph.edges()]
    if not volumes or arch.diameter == 0:
        return []
    heaviest = max(volumes)
    worst = arch.comm_model.cost(arch.diameter, heaviest)  # repro-lint: disable=RL103 (diameter is not a PE pair)
    work = graph.total_work()
    if worst < work:
        return []
    return [make(
        "RA203",
        f"worst-case message cost M(diameter={arch.diameter}, "
        f"c={heaviest}) = {worst} on {arch.name!r} is >= the "
        f"iteration's total work {work}",
    )]
