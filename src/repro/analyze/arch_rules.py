"""RA2xx — static diagnostics of an architecture (healthy or degraded).

The checks work purely from the topology's hop-distance matrix and the
communication cost model — no scheduler is consulted.  A
:class:`~repro.arch.degraded.DegradedTopology` gets two extra looks:
survivor connectivity is re-reported as a diagnostic when construction
already failed upstream (see :func:`build_architecture` in
:mod:`repro.analyze.engine`), and rerouting inflation is compared
against the healthy base machine (RA205).
"""

from __future__ import annotations

from repro.analyze.diagnostics import Diagnostic
from repro.analyze.rules import make
from repro.arch.degraded import DegradedTopology
from repro.arch.topology import Architecture
from repro.graph.csdfg import CSDFG

__all__ = ["check_arch"]


def check_arch(
    arch: Architecture, graph: CSDFG | None = None
) -> list[Diagnostic]:
    """All RA2xx findings of a built architecture.

    ``graph`` sharpens the communication diagnostics (worst-case
    message cost vs. the iteration's total work, surplus processors);
    without it only topology-intrinsic checks run.
    """
    out: list[Diagnostic] = []
    alive = [p for p in arch.processors if arch.is_alive(p)]

    if isinstance(arch, DegradedTopology):
        base_diameter = arch.base.diameter
        degraded_diameter = arch.diameter
        if degraded_diameter > base_diameter:
            out.append(make(
                "RA205",
                f"failed hardware inflated the hop diameter of "
                f"{arch.base.name!r} from {base_diameter} to "
                f"{degraded_diameter} over {len(alive)} surviving PE(s)",
            ))

    if graph is not None and graph.num_nodes > 0:
        out.extend(_comm_blowup(arch, graph))
        if len(alive) > graph.num_nodes:
            out.append(make(
                "RA204",
                f"{len(alive)} usable PE(s) for {graph.num_nodes} "
                f"task(s): {len(alive) - graph.num_nodes} PE(s) can "
                f"never be busy",
            ))
    return out


def _comm_blowup(arch: Architecture, graph: CSDFG) -> list[Diagnostic]:
    """RA203 when one worst-case message rivals the whole compute."""
    volumes = [e.volume for e in graph.edges()]
    if not volumes or arch.diameter == 0:
        return []
    heaviest = max(volumes)
    worst = arch.comm_model.cost(arch.diameter, heaviest)  # repro-lint: disable=RL103 (diameter is not a PE pair)
    work = graph.total_work()
    if worst < work:
        return []
    return [make(
        "RA203",
        f"worst-case message cost M(diameter={arch.diameter}, "
        f"c={heaviest}) = {worst} on {arch.name!r} is >= the "
        f"iteration's total work {work}",
    )]
