"""The rule catalogue: every stable diagnostic code, in one place.

Codes are grouped by what they analyze:

* ``RA1xx`` — CSDFG structure and annotations,
* ``RA2xx`` — architecture/topology,
* ``RA3xx`` — optimiser configuration (including the statically proven
  schedule-length lower bound),
* ``RA4xx`` — serialized-schedule certification (the DESIGN §1
  two-clause criterion re-derived from ``arch.hops`` + the cost model),
* ``RL1xx`` — codebase lint (repo invariants enforced over the source
  tree with :mod:`ast`),
* ``RD1xx`` — interprocedural determinism flow (unseeded randomness,
  iteration order or the wall clock reaching result-bearing paths,
  checked over the module-level call graph by
  :mod:`repro.analyze.flow`),
* ``RC2xx`` — interprocedural engine contracts (the freeze-then-certify
  contention pricing protocol, cache construction discipline, kernel
  backend encapsulation).

Codes are *stable*: tests, CI annotations, suppression comments and
``docs/analysis.md`` all refer to them, so a code is never renumbered
or reused.  New rules take the next free number in their band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.diagnostics import SEVERITIES, Diagnostic, Severity
from repro.errors import AnalysisError

__all__ = ["Rule", "RULES", "rule", "make"]


@dataclass(frozen=True)
class Rule:
    """Catalogue entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str
    description: str
    hint: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise AnalysisError(
                f"rule {self.code}: severity must be one of {SEVERITIES}"
            )


def _catalogue(entries: list[Rule]) -> dict[str, Rule]:
    out: dict[str, Rule] = {}
    for entry in entries:
        if entry.code in out:
            raise AnalysisError(f"duplicate rule code {entry.code}")
        out[entry.code] = entry
    return out


#: Every registered rule, keyed by code.
RULES: dict[str, Rule] = _catalogue([
    # ------------------------------------------------------------- RA1xx
    Rule(
        "RA101", "error", "zero-delay-cycle",
        "A directed cycle carries no loop delay: the iteration can never "
        "start (deadlock).  A CSDFG is live iff every cycle's total delay "
        "is strictly positive (paper §2).",
        "add a delay (d >= 1) to at least one edge of the cycle",
    ),
    Rule(
        "RA102", "error", "empty-graph",
        "The graph has no nodes; there is nothing to schedule.",
        "add at least one task node",
    ),
    Rule(
        "RA103", "warning", "dead-node",
        "A node has no incident edges: it constrains nothing and nothing "
        "constrains it, which usually means a benchmark-construction typo.",
        "connect the node or remove it",
    ),
    Rule(
        "RA104", "warning", "disconnected-graph",
        "The underlying undirected graph has more than one component; "
        "benchmark CSDFGs are expected to be weakly connected.",
        "check for missing dependence edges between the components",
    ),
    Rule(
        "RA105", "error", "bad-node-time",
        "A node's execution time is outside the model's domain "
        "(t(v) >= 1 control steps).",
        "set the node's time to a positive integer",
    ),
    Rule(
        "RA106", "error", "bad-edge-delay",
        "An edge's delay count is negative (d(e) >= 0 is required).",
        "set the edge's delay to a non-negative integer",
    ),
    Rule(
        "RA107", "error", "bad-edge-volume",
        "An edge's data volume is outside the model's domain "
        "(c(e) >= 1 units).",
        "set the edge's volume to a positive integer",
    ),
    Rule(
        "RA108", "error", "malformed-graph",
        "The graph payload is structurally broken: an edge references an "
        "unknown node, the same ordered pair carries two edges, or a "
        "required field is missing.",
        "regenerate the graph JSON with repro.graph.io.save_json",
    ),
    # ------------------------------------------------------------- RA2xx
    Rule(
        "RA201", "error", "disconnected-topology",
        "The surviving processors of a degraded topology are split into "
        "multiple components: no static schedule can route all traffic.",
        "revive a PE/link or drop one component from the machine",
    ),
    Rule(
        "RA202", "error", "invalid-architecture",
        "The architecture description cannot be built (unknown kind, or a "
        "PE count the kind does not support, e.g. a 6-PE hypercube).",
        "pick a kind from repro.arch.ARCHITECTURE_KINDS with a valid size",
    ),
    Rule(
        "RA203", "warning", "comm-blowup",
        "A single worst-case message (hop diameter x the heaviest edge "
        "volume, priced by the cost model) costs at least as much as the "
        "entire iteration's compute: communication will dominate any "
        "cross-PE placement on this pair.",
        "use a denser topology, reduce edge volumes, or expect the "
        "optimiser to cluster tasks on few PEs",
    ),
    Rule(
        "RA204", "info", "idle-processors",
        "The machine has more usable processors than the graph has tasks; "
        "the surplus PEs can never be busy.",
        "a smaller machine gives identical schedules faster",
    ),
    Rule(
        "RA205", "warning", "degraded-reroute-blowup",
        "Rerouting around failed hardware increased the hop diameter of "
        "the surviving network: communication costs are inflated relative "
        "to the healthy machine.",
        "re-optimise schedules produced for the healthy machine",
    ),
    Rule(
        "RA206", "warning", "contention-bottleneck-bridge",
        "The usable topology contains bridge links: every transfer "
        "between the two sides of a bridge crosses that one link, so "
        "under contention-aware pricing (serialised links) the bridge "
        "serialises all cross-partition traffic.",
        "add redundant links, or schedule with a contention model so "
        "the optimiser is charged for the bottleneck",
    ),
    Rule(
        "RA207", "warning", "contention-hotspot",
        "Deterministic routing concentrates traffic: under uniform "
        "all-pairs communication one link carries several times the "
        "mean per-link load, so contended prices on routes through it "
        "will dwarf the contention-free estimate.",
        "balance the topology, or enable contention-aware scheduling "
        "to steer traffic off the hot link",
    ),
    # ------------------------------------------------------------- RA3xx
    Rule(
        "RA301", "error", "infeasible-target",
        "The requested target length is below the statically provable "
        "lower bound B = max(iteration bound, processor work bound, "
        "longest task): every legal schedule has length >= B, so the "
        "target cannot be met by any scheduler.",
        "raise the target to the reported bound or shrink the workload",
    ),
    Rule(
        "RA302", "warning", "no-compaction-passes",
        "max_iterations is 0: only the start-up schedule will be "
        "produced; cyclo-compaction never runs.",
        "set max_iterations >= 1 (or None for the 3*|V| default)",
    ),
    Rule(
        "RA303", "warning", "zero-deadline",
        "deadline_seconds is 0: the optimiser will stop after at most one "
        "pass boundary, keeping the start-up schedule.",
        "remove the deadline or give it a positive budget",
    ),
    Rule(
        "RA304", "error", "malformed-config",
        "The optimiser configuration payload is rejected by CycloConfig "
        "(unknown key, out-of-domain value).",
        "regenerate the config JSON with CycloConfig.to_dict",
    ),
    Rule(
        "RA305", "info", "length-lower-bound",
        "The statically proven schedule-length lower bound for this "
        "(graph, architecture, config) triple.",
        "",
    ),
    # ------------------------------------------------------------- RA4xx
    Rule(
        "RA401", "error", "incomplete-schedule",
        "The schedule does not place exactly the graph's node set: a "
        "graph node is missing, or a scheduled node is not in the graph.",
        "re-schedule, or fix the node relabelling that desynced them",
    ),
    Rule(
        "RA402", "error", "resource-conflict",
        "Two tasks occupy the same processor during the same control step "
        "(DESIGN §1 clause 1: exclusive occupancy of PE(v) over "
        "[CB(v), CE(v)]).",
        "move one of the tasks to a free slot",
    ),
    Rule(
        "RA403", "error", "precedence-violation",
        "A dependence edge breaks DESIGN §1 clause 2: "
        "CB(v) + d(e)*L < CE(u) + M(PE(u), PE(v); c(e)) + 1 with M "
        "re-derived from arch.hops and the communication cost model.",
        "delay the consumer, co-locate the endpoints, or grow L",
    ),
    Rule(
        "RA404", "error", "unroutable-placement",
        "A task is placed on a processor that is outside the "
        "architecture, failed, or executes it with the wrong duration.",
        "re-schedule against the current (possibly degraded) machine",
    ),
    Rule(
        "RA405", "info", "certified-length-slack",
        "The schedule is legal but longer than necessary: these exact "
        "placements stay legal at a smaller schedule length.",
        "set the table length to the reported minimum",
    ),
    # ------------------------------------------------------------- RL1xx
    Rule(
        "RL101", "error", "unseeded-random",
        "A call draws from Python's (or numpy's) global random state, or "
        "constructs an unseeded Random().  Everything in this repository "
        "must be deterministic given explicit seeds; only repro.qa may "
        "own randomness, and even there it must be seeded.",
        "thread a seeded random.Random through the call",
    ),
    Rule(
        "RL102", "error", "wall-clock-in-core",
        "Core scheduling code (repro.core, repro.graph, repro.retiming) "
        "reads the wall clock (time.time/perf_counter/monotonic, "
        "datetime.now): results could depend on machine speed.  "
        "Observability, perf drivers and qa are allowlisted.",
        "move the timing to repro.obs/repro.perf, or suppress a "
        "deliberate budget check with a disable comment",
    ),
    Rule(
        "RL103", "error", "comm-cost-bypass",
        "Hop-cost arithmetic composed by hand (cost-model call fed from "
        "arch.hops, or a direct comm_model.cost access) outside "
        "repro.arch: every other layer must price communication through "
        "Architecture.comm_cost or a CommCostCache so the semantics stay "
        "in one place.",
        "call arch.comm_cost / CommCostCache.cost instead",
    ),
    Rule(
        "RL104", "error", "bare-except",
        "A bare `except:` swallows SystemExit/KeyboardInterrupt and hides "
        "real failures.",
        "catch a concrete exception type (ReproError for library errors)",
    ),
    Rule(
        "RL105", "error", "broad-except-in-core",
        "`except Exception` in a core package (repro.core, repro.graph, "
        "repro.retiming, repro.arch, repro.schedule) can mask invariant "
        "violations the fuzzer is meant to surface.",
        "catch the typed ReproError subclass, or suppress a deliberate "
        "recovery boundary with a disable comment",
    ),
    Rule(
        "RL106", "error", "untyped-raise",
        "A core package raises a builtin exception (Exception, "
        "RuntimeError, ValueError, TypeError, KeyError) instead of a "
        "typed ReproError subclass; callers cannot catch it by contract.",
        "raise the matching repro.errors type",
    ),
    Rule(
        "RL107", "error", "print-in-instrumented-code",
        "A print() call in an instrumented package (repro.core, "
        "repro.perf) or in repro.obs.runtime: diagnostics there must "
        "flow through the observability sinks (spans, counters, "
        "events), not stdout — stray prints corrupt machine-read CLI "
        "output and bypass the run-history/trace record.",
        "record a span/counter/event via repro.obs, or return the text "
        "to the CLI layer; suppress a deliberate user-facing print "
        "with a disable comment",
    ),
    Rule(
        "RL108", "error", "scalar-loop-in-kernel-module",
        "A python-level loop (for statement or comprehension) iterates "
        "over graph.nodes()/graph.edges() inside a batched-kernel "
        "module: these modules exist to keep the per-node work "
        "array-at-a-time, so per-element graph walks belong in the "
        "caller, which gathers once and passes flat sequences.",
        "hoist the gather to the caller and pass flat sequences, or "
        "suppress a deliberate scalar path with a disable comment",
    ),
    Rule(
        "RL109", "warning", "useless-suppression",
        "A `# repro-lint: disable=` comment names a code that is not in "
        "the rule catalogue, or suppresses nothing on its line (or, for "
        "a file-level disable-file=, nothing in its file): stale "
        "suppressions hide the moment a rule would start firing again.",
        "delete the suppression, or fix the code it names",
    ),
    # ------------------------------------------------------------- RD1xx
    Rule(
        "RD101", "error", "unseeded-rng-reaches-parallel-work",
        "A function dispatched as parallel work (a run_parallel payload, "
        "an executor-submitted worker) or passed as a scheduling "
        "priority transitively draws from unseeded randomness — global "
        "random state, an unseeded Random(), or the per-process-salted "
        "builtin hash().  Restart shards and worker results would then "
        "differ run to run, breaking the engine's "
        "same-seed-same-schedule guarantee.",
        "thread a seeded random.Random (or a crc32-style keyed hash, "
        "as repro.perf.restarts.JitteredPriority does) through the path",
    ),
    Rule(
        "RD102", "error", "set-order-crosses-merge-boundary",
        "A worker-merge boundary function (one that merges worker "
        "metric snapshots, publishes per-run stats, or runs as a "
        "parallel payload) iterates a set or a set-returning helper "
        "without sorting: set iteration order varies with "
        "PYTHONHASHSEED, so merged tallies, published stats or worker "
        "results pick up hash-order dependence.",
        "wrap the iteration in sorted(...), or iterate a list/dict "
        "built in deterministic order",
    ),
    Rule(
        "RD103", "error", "clock-or-env-flows-into-schedule",
        "A wall-clock or os.environ read flows into a scheduling entry "
        "point — either a clock/env-derived value is passed as an "
        "argument to the optimiser, or a function transitively callable "
        "from a core entry point reads the clock/environment.  Schedule "
        "lengths and placements would then depend on machine speed or "
        "ambient environment, not just (graph, arch, config, seed).",
        "keep clock reads in repro.obs/repro.perf drivers; pass "
        "budgets and knobs as explicit config values",
    ),
    Rule(
        "RD104", "error", "completion-order-accumulation",
        "Results are consumed in worker *completion* order "
        "(as_completed, imap_unordered): float accumulation and "
        "first-wins merges then depend on thread timing.  The engine's "
        "parallel driver must collect in submission (item) order, as "
        "repro.perf.parallel.run_parallel does.",
        "iterate futures in submission order (deque + popleft) and "
        "reduce in item order",
    ),
    # ------------------------------------------------------------- RC2xx
    Rule(
        "RC201", "error", "contended-pricing-without-frozen-snapshot",
        "A CommCostCache is constructed with a contention model but "
        "without a frozen LinkOccupancy snapshot (missing, or a bare "
        "empty ledger) outside repro.arch.  The freeze-then-certify "
        "protocol requires pricing against occupancy frozen from a "
        "concrete assignment, so that cost(src, dst, volume) stays a "
        "pure function during the certification that follows.",
        "freeze first: occ = LinkOccupancy.from_assignment(graph, arch, "
        "assignment), then CommCostCache.for_graph(..., contention=m, "
        "occupancy=occ)",
    ),
    Rule(
        "RC202", "error", "stale-occupancy-freeze-across-remap",
        "A contended cache is used for a remap/compaction call without "
        "re-freezing after an earlier remap (or a loop re-uses a "
        "snapshot frozen outside it): the second remap prices against "
        "occupancy the first one already invalidated, so the certified "
        "costs drift from the placements actually produced.",
        "rebuild the frozen cache from the current assignment "
        "immediately before each contended remap round",
    ),
    Rule(
        "RC203", "error", "cache-construction-in-hot-loop",
        "A CommCostCache or LinkOccupancy ledger is constructed inside "
        "a for/while loop: construction walks every edge/link, so "
        "per-iteration rebuilds turn O(passes) algorithms into "
        "O(passes * edges).  Deliberate per-round repricing (the "
        "contention fixpoint) is the documented exception.",
        "hoist the construction out of the loop, or suppress a "
        "deliberate per-round reprice with a disable comment",
    ),
    Rule(
        "RC204", "error", "kernel-backend-branch-outside-kernels",
        "Code outside repro.core.kernels (and the repro.qa oracles, "
        "which deliberately compare both backends) branches on the "
        "kernel backend: reads BACKEND/np_kernels/py_kernels, consults "
        "the REPRO_KERNELS env pin, or try/except-guards a numpy "
        "import.  Backend selection is pinned once at import time in "
        "one module so numpy-less hosts and CI pins behave identically "
        "everywhere.",
        "call the dispatching wrappers in repro.core.kernels instead "
        "of branching on the backend locally",
    ),
])


def rule(code: str) -> Rule:
    """Look up a catalogue entry; unknown codes are a caller bug."""
    try:
        return RULES[code]
    except KeyError:
        raise AnalysisError(
            f"unknown rule code {code!r}; known: {sorted(RULES)}"
        ) from None


def make(
    code: str,
    message: str,
    *,
    severity: Severity | None = None,
    hint: str | None = None,
    **locus,
) -> Diagnostic:
    """Build a :class:`Diagnostic` with catalogue defaults.

    ``severity`` and ``hint`` default to the rule's catalogue values;
    ``locus`` keywords (``node=``, ``edge=``, ``pe=``, ``file=``,
    ``line=``, ``col=``) pass through.
    """
    entry = rule(code)
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else entry.severity,
        message=message,
        hint=hint if hint is not None else entry.hint,
        **locus,
    )
