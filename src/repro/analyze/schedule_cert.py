"""RA4xx — schedule certificate checking.

Certifies a serialized static cyclic schedule against DESIGN §1's
two-clause criterion *without constructing a scheduler and without
calling the runtime validator*: clause 1 (exclusive processor
occupancy) is recomputed from the placements, clause 2 (precedence +
communication) is re-derived edge by edge from ``arch.hops`` and the
communication cost model —

    CB(v) + d(e) * L  >=  CE(u) + M(PE(u), PE(v); c(e)) + 1

with ``CE(u) = CB(u) + duration(u) - 1`` and
``M = comm_model.cost(arch.hops(PE(u), PE(v)), c(e))``.  This is the
third independent implementation of the criterion (after the validator
and the qa design-criterion oracle), so a schedule that certifies here
is legal by an implementation that shares no code with the pipeline
that produced it.
"""

from __future__ import annotations

from repro.analyze.diagnostics import Diagnostic
from repro.analyze.rules import make
from repro.arch.topology import Architecture
from repro.graph.csdfg import CSDFG
from repro.schedule.table import ScheduleTable

__all__ = ["certify_schedule"]


def certify_schedule(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    *,
    pipelined_pes: bool = False,
) -> list[Diagnostic]:
    """All RA4xx findings of ``schedule`` for ``graph`` on ``arch``.

    An empty error set is the certificate: the schedule satisfies both
    clauses of the DESIGN §1 criterion at its recorded length.  A
    single RA405 *info* finding may accompany a clean certificate when
    the same placements stay legal at a smaller length.
    """
    out: list[Diagnostic] = []

    # completeness ------------------------------------------------------
    scheduled = {str(v) for v in schedule.nodes()}
    expected = {str(v) for v in graph.nodes()}
    for missing in sorted(expected - scheduled):
        out.append(make(
            "RA401", f"graph node {missing!r} is not scheduled",
            node=missing,
        ))
    for extra in sorted(scheduled - expected):
        out.append(make(
            "RA401", f"scheduled node {extra!r} is not in the graph",
            node=extra,
        ))

    # placement well-formedness (clause-1 preconditions) ----------------
    placements = {str(v): schedule.placement(v) for v in schedule.nodes()}
    routable: set[str] = set()
    for name in sorted(expected & scheduled):
        p = placements[name]
        if not (0 <= p.pe < arch.num_pes):
            out.append(make(
                "RA404",
                f"node {name!r}: PE {p.pe} outside {arch.name!r} "
                f"({arch.num_pes} PEs)",
                node=name,
            ))
            continue
        if not arch.is_alive(p.pe):
            out.append(make(
                "RA404",
                f"node {name!r}: placed on failed pe{p.pe + 1} of "
                f"{arch.name!r}",
                node=name, pe=p.pe,
            ))
            continue
        routable.add(name)
        want = arch.execution_time(p.pe, graph.time(_node_key(graph, name)))
        if p.duration != want:
            out.append(make(
                "RA404",
                f"node {name!r}: duration {p.duration} != {want} on "
                f"pe{p.pe + 1}",
                node=name, pe=p.pe,
            ))
        if p.finish > schedule.length:
            out.append(make(
                "RA404",
                f"node {name!r}: finishes at cs {p.finish}, beyond the "
                f"schedule length {schedule.length}",
                node=name, pe=p.pe,
            ))

    # clause 1: exclusive occupancy -------------------------------------
    occupancy: dict[tuple[int, int], str] = {}
    for name in sorted(routable):
        p = placements[name]
        last = p.start if pipelined_pes else p.finish
        for cs in range(p.start, last + 1):
            other = occupancy.get((p.pe, cs))
            if other is not None:
                out.append(make(
                    "RA402",
                    f"pe{p.pe + 1} cs{cs}: {other!r} and {name!r} "
                    f"overlap",
                    node=name, pe=p.pe,
                ))
            else:
                occupancy[(p.pe, cs)] = name

    # clause 2: precedence + communication, M from hops + cost model ----
    L = schedule.length
    min_required = 1
    for edge in graph.edges():
        src, dst = str(edge.src), str(edge.dst)
        if src not in routable or dst not in routable:
            continue
        pu, pv = placements[src], placements[dst]
        ce_u = pu.start + pu.duration - 1
        m = arch.comm_model.cost(arch.hops(pu.pe, pv.pe), edge.volume)  # repro-lint: disable=RL103 (independent re-derivation)
        if pv.start + edge.delay * L < ce_u + m + 1:
            out.append(make(
                "RA403",
                f"edge {src!r}->{dst!r} (d={edge.delay}, "
                f"c={edge.volume}) pe{pu.pe + 1}->pe{pv.pe + 1}: "
                f"CB={pv.start} + {edge.delay}*{L} < CE={ce_u} + "
                f"M={m} + 1",
                edge=(src, dst),
            ))
        if edge.delay > 0:
            # the smallest L keeping this edge legal at these placements
            slack = ce_u + m + 1 - pv.start
            need = -(-slack // edge.delay)  # ceil division
            if need > min_required:
                min_required = need

    # slack report: only meaningful on an otherwise clean certificate ---
    if not out and routable:
        makespan = max(placements[name].finish for name in routable)
        feasible = max(min_required, makespan, 1)
        if feasible < L:
            out.append(make(
                "RA405",
                f"placements stay legal down to length {feasible} "
                f"(< recorded length {L})",
            ))
    return out


def _node_key(graph: CSDFG, name: str):
    """Resolve a string node name back to the graph's node key."""
    if name in graph:
        return name
    for node in graph.nodes():
        if str(node) == name:
            return node
    return name
