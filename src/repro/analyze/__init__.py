"""repro.analyze — the static-analysis subsystem.

**Head 1, the input analyzer** (:func:`analyze_inputs`), statically
checks the things users hand the scheduler — CSDFG graphs,
architectures (healthy or degraded), optimiser configs, serialized
schedules — and proves what can be proven without running a scheduler:
liveness (RA101), feasibility of a target length against the static
lower bound (RA301/RA305), and the full DESIGN §1 two-clause legality
certificate of a schedule re-derived from ``arch.hops`` and the
communication cost model (RA4xx).

**Head 2, the codebase lint** (:func:`lint_paths`), enforces the
repository's own invariants over the source tree with :mod:`ast`
(RL1xx): seeded randomness, no wall clock in core, one communication
pricing authority, typed exceptions.

**Head 3, the interprocedural flow analyzer** (:func:`analyze_flow`),
builds a module-level call graph with per-function taint summaries and
proves whole-program determinism and contract properties the per-file
lint cannot see (RD1xx/RC2xx): unseeded randomness reaching parallel
payloads, set order crossing worker-merge boundaries, clock/env reads
flowing into schedules, and the freeze-then-certify contention pricing
protocol.  Its runtime backstop is the **dynamic determinism
sanitizer** (:func:`sanitize_command`, ``repro sanitize``), which runs
a target command twice under perturbed ``PYTHONHASHSEED``/``--jobs``
and diffs the canonicalized outputs.

All heads produce the same currency — :class:`Diagnostic` values with
stable codes, aggregated into an :class:`AnalysisReport` and emitted as
text, JSON or SARIF 2.1.0 (:func:`render_report`).  The rule catalogue
lives in :data:`RULES` and is documented in ``docs/analysis.md``.
"""

from repro.analyze.arch_rules import check_arch
from repro.analyze.config_rules import (
    check_config,
    check_target_length,
    length_lower_bound,
)
from repro.analyze.diagnostics import (
    SEVERITIES,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analyze.emit import FORMATS, render_report, to_json, to_sarif
from repro.analyze.flow import FlowProgram, FunctionSummary, analyze_flow
from repro.analyze.sanitize import (
    RunOutcome,
    SanitizeReport,
    canonicalize_output,
    sanitize_command,
    schedule_fingerprint,
)
from repro.analyze.suppress import (
    Suppressions,
    apply_suppressions,
    parse_suppressions,
)
from repro.analyze.engine import (
    analyze_inputs,
    build_architecture,
    load_config_input,
    load_graph_input,
    load_schedule_input,
)
from repro.analyze.graph_rules import check_graph, check_graph_payload
from repro.analyze.lint import infer_module, lint_paths, lint_source
from repro.analyze.rules import RULES, Rule, make, rule
from repro.analyze.schedule_cert import certify_schedule

__all__ = [
    "SEVERITIES",
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "Rule",
    "RULES",
    "rule",
    "make",
    "check_graph",
    "check_graph_payload",
    "check_arch",
    "check_config",
    "check_target_length",
    "length_lower_bound",
    "certify_schedule",
    "analyze_inputs",
    "load_graph_input",
    "build_architecture",
    "load_config_input",
    "load_schedule_input",
    "lint_source",
    "lint_paths",
    "infer_module",
    "analyze_flow",
    "FlowProgram",
    "FunctionSummary",
    "sanitize_command",
    "canonicalize_output",
    "schedule_fingerprint",
    "SanitizeReport",
    "RunOutcome",
    "Suppressions",
    "parse_suppressions",
    "apply_suppressions",
    "FORMATS",
    "render_report",
    "to_json",
    "to_sarif",
]
