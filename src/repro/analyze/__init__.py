"""repro.analyze — the two-headed static-analysis subsystem.

**Head 1, the input analyzer** (:func:`analyze_inputs`), statically
checks the things users hand the scheduler — CSDFG graphs,
architectures (healthy or degraded), optimiser configs, serialized
schedules — and proves what can be proven without running a scheduler:
liveness (RA101), feasibility of a target length against the static
lower bound (RA301/RA305), and the full DESIGN §1 two-clause legality
certificate of a schedule re-derived from ``arch.hops`` and the
communication cost model (RA4xx).

**Head 2, the codebase lint** (:func:`lint_paths`), enforces the
repository's own invariants over the source tree with :mod:`ast`
(RL1xx): seeded randomness, no wall clock in core, one communication
pricing authority, typed exceptions.

Both heads produce the same currency — :class:`Diagnostic` values with
stable codes, aggregated into an :class:`AnalysisReport` and emitted as
text, JSON or SARIF 2.1.0 (:func:`render_report`).  The rule catalogue
lives in :data:`RULES` and is documented in ``docs/analysis.md``.
"""

from repro.analyze.arch_rules import check_arch
from repro.analyze.config_rules import (
    check_config,
    check_target_length,
    length_lower_bound,
)
from repro.analyze.diagnostics import (
    SEVERITIES,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analyze.emit import FORMATS, render_report, to_json, to_sarif
from repro.analyze.engine import (
    analyze_inputs,
    build_architecture,
    load_config_input,
    load_graph_input,
    load_schedule_input,
)
from repro.analyze.graph_rules import check_graph, check_graph_payload
from repro.analyze.lint import infer_module, lint_paths, lint_source
from repro.analyze.rules import RULES, Rule, make, rule
from repro.analyze.schedule_cert import certify_schedule

__all__ = [
    "SEVERITIES",
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "Rule",
    "RULES",
    "rule",
    "make",
    "check_graph",
    "check_graph_payload",
    "check_arch",
    "check_config",
    "check_target_length",
    "length_lower_bound",
    "certify_schedule",
    "analyze_inputs",
    "load_graph_input",
    "build_architecture",
    "load_config_input",
    "load_schedule_input",
    "lint_source",
    "lint_paths",
    "infer_module",
    "FORMATS",
    "render_report",
    "to_json",
    "to_sarif",
]
