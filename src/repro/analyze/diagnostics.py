"""Typed diagnostics shared by both static-analysis heads.

A :class:`Diagnostic` is one finding: a stable rule code (``RA1xx``
graph, ``RA2xx`` architecture, ``RA3xx`` config, ``RA4xx`` schedule for
the input analyzer; ``RL1xx`` for the codebase lint), a severity, a
human message, an optional fix hint, and a *locus* — the node, edge, PE
or source file/line the finding is anchored to.  An
:class:`AnalysisReport` aggregates the findings of one run and knows
how to answer the only question CI asks: "may this proceed?"
(:attr:`AnalysisReport.ok` / :meth:`AnalysisReport.exit_code`).

Findings are data, never exceptions: a broken input produces a report
full of errors, not a stack trace (see ``docs/analysis.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Severity", "SEVERITIES", "Diagnostic", "AnalysisReport"]

#: Severity levels, most severe first.  ``error`` findings make the
#: analyzed input unusable (and the CLI exit non-zero); ``warning``
#: findings are suspicious but legal; ``info`` findings are facts worth
#: surfacing (e.g. the statically proven schedule-length lower bound).
SEVERITIES: tuple[str, ...] = ("error", "warning", "info")

Severity = str


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes
    ----------
    code:
        Stable rule code (``RA101``, ``RL102``, ...); the catalogue in
        :mod:`repro.analyze.rules` maps every code to its metadata.
    severity:
        ``"error"``, ``"warning"`` or ``"info"``.
    message:
        Human-readable description of this specific finding.
    hint:
        How to fix it (defaults to the rule's catalogue hint).
    node / edge / pe:
        Input-analyzer locus: the graph node, the ``(src, dst)`` edge,
        or the 0-based processor id the finding points at.
    file / line / col:
        Codebase-lint locus (1-based line, 0-based column).
    """

    code: str
    severity: Severity
    message: str
    hint: str = ""
    node: str | None = None
    edge: tuple[str, str] | None = None
    pe: int | None = None
    file: str | None = None
    line: int | None = None
    col: int | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def locus(self) -> str:
        """Compact rendering of wherever this finding points."""
        parts: list[str] = []
        if self.file is not None:
            where = self.file
            if self.line is not None:
                where += f":{self.line}"
            parts.append(where)
        if self.node is not None:
            parts.append(f"node {self.node}")
        if self.edge is not None:
            parts.append(f"edge {self.edge[0]}->{self.edge[1]}")
        if self.pe is not None:
            parts.append(f"pe{self.pe + 1}")
        return ", ".join(parts)

    def render(self) -> str:
        """One-line human form: ``error RA101 [node A]: message``."""
        locus = self.locus
        where = f" [{locus}]" if locus else ""
        text = f"{self.severity} {self.code}{where}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        """JSON-safe form; locus keys are omitted when unset."""
        out: dict = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        if self.node is not None:
            out["node"] = self.node
        if self.edge is not None:
            out["edge"] = list(self.edge)
        if self.pe is not None:
            out["pe"] = self.pe
        if self.file is not None:
            out["file"] = self.file
        if self.line is not None:
            out["line"] = self.line
        if self.col is not None:
            out["col"] = self.col
        return out


@dataclass
class AnalysisReport:
    """The findings of one analyzer or lint run.

    ``subject`` labels what was analyzed (a workload/architecture pair,
    a source tree); ``suppressed`` counts findings silenced by inline
    ``# repro-lint: disable=CODE`` comments (lint head only).
    """

    subject: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "AnalysisReport") -> None:
        """Fold another report's findings into this one."""
        self.diagnostics.extend(other.diagnostics)
        self.suppressed += other.suppressed

    # ------------------------------------------------------------------
    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity("error")

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity("warning")

    @property
    def infos(self) -> list[Diagnostic]:
        return self.by_severity("info")

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was produced."""
        return not self.errors

    def exit_code(self, *, strict: bool = False) -> int:
        """Process exit code: 1 on errors (also warnings when
        ``strict``), 0 otherwise."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def codes(self) -> list[str]:
        """The distinct rule codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def summary(self) -> str:
        counts = ", ".join(
            f"{len(self.by_severity(s))} {s}(s)" for s in SEVERITIES
        )
        text = f"{counts}"
        if self.suppressed:
            text += f", {self.suppressed} suppressed"
        return text

    def describe(self) -> str:
        """Multi-line human report (findings sorted by severity)."""
        head = f"analysis of {self.subject}: " if self.subject else ""
        lines = [f"{head}{self.summary()}"]
        rank = {s: i for i, s in enumerate(SEVERITIES)}
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (rank[d.severity], d.code, d.locus),
        )
        lines.extend(f"  {d.render()}" for d in ordered)
        return "\n".join(lines)
