"""The input-analyzer driver (``repro analyze``).

:func:`analyze_inputs` runs every applicable rule family over a
(graph, architecture[, config][, schedule]) tuple and returns one
:class:`~repro.analyze.diagnostics.AnalysisReport`.  The loaders turn
files and CLI-style specs into analyzer inputs *without raising* on
user mistakes: a malformed graph JSON, an impossible architecture or a
rejected config all come back as coded diagnostics, which is the whole
point of a static front door — CI and users get `RAxxx` findings, not
tracebacks.

The analyzer is cheap by design (graph walks, the hop matrix, one
iteration-bound computation when a target is being proved infeasible),
so it also serves as the fuzz shrinker's viability pre-gate: a shrink
candidate that fails analysis is rejected before any scheduler time is
spent on it (see :mod:`repro.qa.shrink`).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analyze.arch_rules import check_arch
from repro.analyze.config_rules import check_config, check_target_length
from repro.analyze.diagnostics import AnalysisReport, Diagnostic
from repro.analyze.graph_rules import check_graph, check_graph_payload
from repro.analyze.rules import make
from repro.analyze.schedule_cert import certify_schedule
from repro.arch.degraded import DegradedTopology
from repro.arch.registry import ARCHITECTURE_KINDS, make_architecture
from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.errors import DisconnectedTopologyError, ReproError
from repro.graph import io as graph_io
from repro.graph.csdfg import CSDFG
from repro.schedule.io import schedule_from_json
from repro.schedule.table import ScheduleTable

__all__ = [
    "analyze_inputs",
    "load_graph_input",
    "build_architecture",
    "load_config_input",
    "load_schedule_input",
]


def analyze_inputs(
    graph: CSDFG,
    arch: Architecture | None,
    *,
    config: CycloConfig | None = None,
    schedule: ScheduleTable | None = None,
    target_length: int | None = None,
    subject: str | None = None,
) -> AnalysisReport:
    """Run every applicable static rule over the given inputs.

    ``arch`` may be ``None`` when architecture construction already
    failed (its diagnostics then arrive via the loader); the
    graph-level rules still run.  ``schedule`` adds the RA4xx
    certificate check; ``target_length`` adds the RA301 infeasibility
    proof (RA305 reports the bound whenever an architecture is
    present).
    """
    if subject is None:
        subject = graph.name + (f" on {arch.name}" if arch is not None else "")
    report = AnalysisReport(subject=subject)
    report.extend(check_graph(graph))
    if config is not None:
        report.extend(check_config(config))
    if arch is not None:
        report.extend(check_arch(arch, graph))
        report.extend(
            check_target_length(graph, arch, config, target_length)
        )
        if schedule is not None:
            report.extend(certify_schedule(
                graph,
                arch,
                schedule,
                pipelined_pes=bool(config is not None and config.pipelined_pes),
            ))
    return report


# ----------------------------------------------------------------------
# loaders: files / CLI specs -> analyzer inputs, mistakes -> diagnostics
# ----------------------------------------------------------------------
def load_graph_input(
    spec: str,
) -> tuple[CSDFG | None, list[Diagnostic]]:
    """Resolve a graph argument: a CSDFG JSON path or a workload name.

    Returns ``(graph, diagnostics)``; ``graph`` is ``None`` exactly
    when an error-severity diagnostic was produced.
    """
    path = Path(spec)
    if path.suffix == ".json" or path.exists():
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            return None, [make("RA108", f"cannot read {spec}: {exc}")]
        except json.JSONDecodeError as exc:
            return None, [make("RA108", f"{spec} is not valid JSON: {exc}")]
        if (
            isinstance(payload, dict)
            and payload.get("format") == "repro-qa-case"
        ):
            # reproducer cases embed their graph; analyze that
            payload = payload.get("graph")
        problems = check_graph_payload(payload)
        if any(d.severity == "error" for d in problems):
            return None, problems
        return graph_io.from_json(payload), problems

    from repro.workloads import make_workload, workload_names

    if spec in workload_names():
        return make_workload(spec), []
    return None, [make(
        "RA108",
        f"{spec!r} is neither a readable CSDFG JSON file nor a "
        f"registered workload; known workloads: "
        f"{', '.join(workload_names())}",
    )]


def build_architecture(
    kind: str,
    num_pes: int,
    *,
    failed_pes: tuple[int, ...] = (),
    failed_links: tuple[tuple[int, int], ...] = (),
) -> tuple[Architecture | None, list[Diagnostic]]:
    """Build a (possibly degraded) architecture, mistakes as RA2xx.

    ``kind`` accepts the CLI shorthand ``"mesh:8"`` (overrides
    ``num_pes``).
    """
    if ":" in kind:
        kind, _, raw = kind.partition(":")
        try:
            num_pes = int(raw)
        except ValueError:
            return None, [make(
                "RA202",
                f"architecture spec {kind}:{raw} has a non-integer PE count",
            )]
    if kind not in ARCHITECTURE_KINDS:
        return None, [make(
            "RA202",
            f"unknown architecture kind {kind!r}; known: "
            f"{', '.join(sorted(ARCHITECTURE_KINDS))}",
        )]
    try:
        arch = make_architecture(kind, num_pes)
    except ReproError as exc:
        return None, [make("RA202", f"{kind} x{num_pes}: {exc}")]
    if not failed_pes and not failed_links:
        return arch, []
    try:
        return DegradedTopology(
            arch, failed_pes=failed_pes, failed_links=failed_links
        ), []
    except DisconnectedTopologyError as exc:
        return None, [make(
            "RA201",
            f"{kind} x{num_pes} minus PEs {sorted(failed_pes)} / links "
            f"{sorted(failed_links)}: {exc}",
        )]
    except ReproError as exc:
        return None, [make("RA202", f"degrading {kind} x{num_pes}: {exc}")]


def load_config_input(
    path: str,
) -> tuple[CycloConfig | None, int | None, list[Diagnostic]]:
    """Load an optimiser config JSON.

    Returns ``(config, target_length, diagnostics)``.  The payload may
    carry an extra ``"target_length"`` key — it is not a
    :class:`CycloConfig` field, it parameterises the RA301 feasibility
    proof — which is stripped before the config is constructed.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        return None, None, [make("RA304", f"cannot read {path}: {exc}")]
    except json.JSONDecodeError as exc:
        return None, None, [make(
            "RA304", f"{path} is not valid JSON: {exc}"
        )]
    if not isinstance(payload, dict):
        return None, None, [make(
            "RA304", f"{path}: config payload must be a JSON object"
        )]
    target = payload.pop("target_length", None)
    if target is not None and (not isinstance(target, int) or target < 1):
        return None, None, [make(
            "RA304",
            f"{path}: target_length must be an integer >= 1, got {target!r}",
        )]
    try:
        return CycloConfig.from_dict(payload), target, []
    except (ReproError, TypeError, ValueError) as exc:
        return None, None, [make("RA304", f"{path}: {exc}")]


def load_schedule_input(
    path: str,
) -> tuple[ScheduleTable | None, list[Diagnostic]]:
    """Load a serialized schedule for certification (mistakes as RA4xx)."""
    try:
        payload = json.loads(Path(path).read_text())
        return schedule_from_json(payload), []
    except OSError as exc:
        return None, [make("RA401", f"cannot read {path}: {exc}")]
    except json.JSONDecodeError as exc:
        return None, [make("RA401", f"{path} is not valid JSON: {exc}")]
    except ReproError as exc:
        return None, [make("RA401", f"{path}: {exc}")]
