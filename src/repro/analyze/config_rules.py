"""RA3xx — optimiser-config diagnostics and the static length bound.

The centrepiece is :func:`length_lower_bound`: the largest schedule
length floor provable from the graph and machine alone —

* the **iteration bound** ``max_C ceil((sum t)/(sum d))`` (no static
  cyclic schedule of any processor count beats the maximum cycle
  ratio),
* the **processor work bound** ``ceil(total work / usable PEs)``
  (with pipelined PEs each task occupies one control step, so the
  numerator becomes the task count),
* the **longest task** ``max t(v)`` (the validator requires every task
  to finish within the schedule length, and per-PE speed scales are
  >= 1).

A configured target below that floor is statically infeasible (RA301)
— the scheduler need never run to reject it.
"""

from __future__ import annotations

import math

from repro.analyze.diagnostics import Diagnostic
from repro.analyze.rules import make
from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.graph.csdfg import CSDFG
from repro.graph.properties import iteration_bound

__all__ = ["length_lower_bound", "check_config", "check_target_length"]


def length_lower_bound(
    graph: CSDFG, arch: Architecture, config: CycloConfig | None = None
) -> int:
    """The statically provable schedule-length floor ``B`` (>= 1)."""
    if graph.num_nodes == 0:
        return 1
    pipelined = bool(config is not None and config.pipelined_pes)
    alive = sum(1 for p in arch.processors if arch.is_alive(p))
    occupancy_work = graph.num_nodes if pipelined else graph.total_work()
    work_bound = -(-occupancy_work // max(1, alive))  # ceil division
    longest = max(graph.time(v) for v in graph.nodes())
    bound = max(1, work_bound, longest)
    ib = iteration_bound(graph)
    if ib > 0:
        bound = max(bound, math.ceil(ib))
    return bound


def check_config(config: CycloConfig) -> list[Diagnostic]:
    """RA3xx findings intrinsic to the configuration itself."""
    out: list[Diagnostic] = []
    if config.max_iterations == 0:
        out.append(make(
            "RA302",
            "max_iterations = 0: compaction never runs, only the "
            "start-up schedule is produced",
        ))
    if config.deadline_seconds == 0:
        out.append(make(
            "RA303",
            "deadline_seconds = 0: the wall-clock budget expires before "
            "the first compaction pass",
        ))
    return out


def check_target_length(
    graph: CSDFG,
    arch: Architecture,
    config: CycloConfig | None,
    target_length: int | None,
) -> list[Diagnostic]:
    """RA301/RA305: prove a target infeasible, or report the bound."""
    if graph.num_nodes == 0:
        return []
    bound = length_lower_bound(graph, arch, config)
    out: list[Diagnostic] = [make(
        "RA305",
        f"every legal schedule of {graph.name!r} on {arch.name!r} has "
        f"length >= {bound} control steps",
    )]
    if target_length is not None and target_length < bound:
        out.append(make(
            "RA301",
            f"target length {target_length} is statically infeasible: "
            f"the provable lower bound is {bound} control steps",
        ))
    return out
