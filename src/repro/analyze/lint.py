"""Head 2 — the codebase lint (``repro lint``).

A small :mod:`ast`-based linter enforcing the repository's own
invariants (rules ``RL101``–``RL108`` in the catalogue):

* determinism — no draws from global random state and no unseeded
  ``Random()`` outside :mod:`repro.qa` (RL101), no wall-clock reads in
  the core scheduling packages (RL102);
* one pricing authority — no hand-composed hop-cost arithmetic outside
  :mod:`repro.arch` (RL103);
* typed failure — no bare ``except:`` anywhere (RL104), no
  ``except Exception`` (RL105) and no raising builtin exception types
  (RL106) in the core packages, where the fuzzer relies on typed
  :class:`~repro.errors.ReproError` contracts;
* sinks over stdout — no ``print()`` in the instrumented packages
  (:mod:`repro.core`, :mod:`repro.perf`) or in
  :mod:`repro.obs.runtime` (RL107): diagnostics there belong in the
  observability sinks, not on stdout;
* batched kernels stay batched — no python-level loop (``for`` or
  comprehension) over ``graph.nodes()``/``graph.edges()`` inside the
  batched-kernel modules (RL108): callers gather once and pass flat
  sequences.

A finding on a line carrying ``# repro-lint: disable=CODE`` (several
codes comma-separated, or ``disable=all``) is suppressed and counted in
:attr:`~repro.analyze.diagnostics.AnalysisReport.suppressed`; a
``# repro-lint: disable-file=CODE`` comment suppresses for the whole
file.  Suppressions that name unknown codes or silence nothing are
themselves flagged (RL109) — see :mod:`repro.analyze.suppress`, which
this head shares with the flow analyzer.

The linter needs only the source text: files are never imported, so it
is safe to run over trees that do not import (and over the mutation
fixtures the test suite plants in temporary directories).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analyze.diagnostics import AnalysisReport, Diagnostic
from repro.analyze.rules import make
from repro.analyze.suppress import apply_suppressions
from repro.errors import AnalysisError

__all__ = ["infer_module", "lint_source", "lint_paths"]

#: Packages whose results must not depend on the wall clock (RL102).
WALLCLOCK_BANNED = ("repro.core", "repro.graph", "repro.retiming")

#: Packages held to the typed-exception contract (RL105, RL106).
CORE_PACKAGES = WALLCLOCK_BANNED + ("repro.arch", "repro.schedule")

#: Modules where print() must give way to the obs sinks (RL107):
#: the instrumented packages plus the observability runtime itself.
PRINT_BANNED_PACKAGES = ("repro.core", "repro.perf")
PRINT_BANNED_MODULES = ("repro.obs.runtime",)

#: Modules holding array-at-a-time kernels, where per-node python
#: loops over graph nodes/edges are banned (RL108): callers gather
#: once, kernels take flat sequences.
BATCHED_KERNEL_MODULES = ("repro.core.kernels",)

#: Graph-walk methods whose iteration RL108 flags.
_GRAPH_WALKS = frozenset({"nodes", "edges", "in_edges", "out_edges"})

#: Functions that read or mutate a module-global random state.
_RAND_FUNCS = frozenset({
    "random", "randint", "randrange", "getrandbits", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
    "seed", "rand", "randn",
})

#: Wall-clock reads banned from the core packages.
_CLOCK_FUNCS = frozenset({
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("time", "time_ns"),
    ("time", "perf_counter_ns"), ("time", "monotonic_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})

#: Builtin exception types core packages must not raise (RL106).
#: NotImplementedError is conventional Python and stays allowed.
_BUILTIN_RAISES = frozenset({
    "Exception", "BaseException", "RuntimeError", "ValueError",
    "TypeError", "KeyError", "IndexError", "ArithmeticError",
    "ZeroDivisionError", "AttributeError", "OSError", "IOError",
})

def infer_module(path: str | Path) -> str:
    """Dotted module name of a source file, anchored at ``repro``.

    Works on any path that contains a ``repro`` directory component —
    including copies planted under a temporary directory, which is how
    the mutation tests exercise the linter without touching the real
    tree.  Paths outside any ``repro`` package fall back to their stem.
    """
    parts = Path(path).with_suffix("").parts
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    else:
        parts = parts[-1:]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _in(module: str, packages: tuple[str, ...]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


def _dotted(node: ast.expr) -> list[str]:
    """The attribute chain of an expression: ``np.random.rand`` ->
    ``["np", "random", "rand"]`` (empty when not a plain chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: str, path: str) -> None:
        self.module = module
        self.path = path
        self.found: list[Diagnostic] = []

    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        self.found.append(make(
            code, message,
            file=self.path,
            line=getattr(node, "lineno", None),
            col=getattr(node, "col_offset", None),
        ))

    # -- RL101 / RL102 / RL103(call form) ------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted(node.func)
        if not _in(self.module, ("repro.qa",)):
            self._check_random(node, chain)
        if _in(self.module, WALLCLOCK_BANNED) and len(chain) >= 2:
            if tuple(chain[-2:]) in _CLOCK_FUNCS:
                self._emit(
                    "RL102",
                    f"{'.'.join(chain)}() reads the wall clock inside "
                    f"{self.module}",
                    node,
                )
        if (
            not _in(self.module, ("repro.arch",))
            and chain
            and chain[-1] == "cost"
            and any(
                isinstance(arg, ast.Call)
                and _dotted(arg.func)[-1:] == ["hops"]
                for arg in node.args
            )
        ):
            self._emit(
                "RL103",
                "cost model fed directly from .hops(...): hop-cost "
                f"arithmetic composed by hand in {self.module}",
                node,
            )
        if chain == ["print"] and (
            _in(self.module, PRINT_BANNED_PACKAGES)
            or self.module in PRINT_BANNED_MODULES
        ):
            self._emit(
                "RL107",
                f"print() in instrumented module {self.module}: route "
                "diagnostics through the obs sinks",
                node,
            )
        self.generic_visit(node)

    def _check_random(self, node: ast.Call, chain: list[str]) -> None:
        if (
            len(chain) >= 2
            and chain[-1] in _RAND_FUNCS
            and "random" in chain[:-1]
        ):
            self._emit(
                "RL101",
                f"{'.'.join(chain)}() draws from global random state in "
                f"{self.module}",
                node,
            )
        elif chain[-1:] == ["Random"] and not node.args and not node.keywords:
            self._emit(
                "RL101",
                f"unseeded Random() constructed in {self.module}",
                node,
            )

    # -- RL103 (attribute form) ----------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr == "cost"
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "comm_model"
            and not _in(self.module, ("repro.arch",))
        ):
            self._emit(
                "RL103",
                f"direct comm_model.cost access in {self.module} bypasses "
                "Architecture.comm_cost / CommCostCache",
                node,
            )
        self.generic_visit(node)

    # -- RL104 / RL105 -------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit("RL104", f"bare except: in {self.module}", node)
        elif _in(self.module, CORE_PACKAGES):
            names = (
                [n for e in node.type.elts for n in _dotted(e)[-1:]]
                if isinstance(node.type, ast.Tuple)
                else _dotted(node.type)[-1:]
            )
            if any(n in ("Exception", "BaseException") for n in names):
                self._emit(
                    "RL105",
                    f"except {'/'.join(names)} in core package "
                    f"{self.module}",
                    node,
                )
        self.generic_visit(node)

    # -- RL108 ---------------------------------------------------------
    def _check_graph_walk(self, iter_node: ast.expr, node: ast.AST) -> None:
        if self.module not in BATCHED_KERNEL_MODULES:
            return
        if not isinstance(iter_node, ast.Call):
            return
        chain = _dotted(iter_node.func)
        if len(chain) >= 2 and chain[-1] in _GRAPH_WALKS:
            self._emit(
                "RL108",
                f"python-level loop over .{chain[-1]}() in batched-kernel "
                f"module {self.module}: gather in the caller, pass flat "
                "sequences",
                node,
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_graph_walk(node.iter, node)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_graph_walk(gen.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- RL106 ---------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        if node.exc is not None and _in(self.module, CORE_PACKAGES):
            target = node.exc.func if isinstance(node.exc, ast.Call) else node.exc
            name = (_dotted(target) or [""])[-1]
            if name in _BUILTIN_RAISES:
                self._emit(
                    "RL106",
                    f"raise {name} in core package {self.module}: callers "
                    "cannot catch it by contract",
                    node,
                )
        self.generic_visit(node)


def lint_source(
    source: str,
    *,
    module: str | None = None,
    path: str = "<string>",
) -> tuple[list[Diagnostic], int]:
    """Lint one source text.  Returns ``(findings, suppressed_count)``.

    Syntax errors are reported as an RL104-free, code-less concern:
    they surface as an :class:`AnalysisError` because an unparsable
    file is a misuse of the linter, not a lint finding.
    """
    if module is None:
        module = infer_module(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    visitor = _Visitor(module, path)
    visitor.visit(tree)
    return apply_suppressions(
        visitor.found, source, path=path, owned_prefixes=("RL",)
    )


def lint_paths(paths: list[str | Path]) -> AnalysisReport:
    """Lint files and/or directories (recursively, ``*.py``)."""
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append(p)
        else:
            raise AnalysisError(f"no such file or directory: {entry}")
    report = AnalysisReport(subject=", ".join(str(p) for p in paths))
    for f in files:
        found, suppressed = lint_source(f.read_text(), path=str(f))
        report.extend(found)
        report.suppressed += suppressed
    return report
