"""Report emitters shared by both analysis heads.

Three formats: ``text`` (the human form, one finding per line),
``json`` (a stable machine shape with the summary counts), and
``sarif`` (SARIF 2.1.0, the format GitHub code scanning ingests — the
CI ``static-analysis`` job uploads these so findings annotate PRs).

Severity maps onto SARIF levels directly: ``error`` -> ``error``,
``warning`` -> ``warning``, ``info`` -> ``note``.

SARIF regions are 1-indexed on both axes, and ``artifactLocation.uri``
must be a valid URI reference — so lines/columns are clamped to >= 1
(a diagnostic minted with line 0 would otherwise produce a file the
spec forbids) and non-ASCII path characters are percent-encoded.
"""

from __future__ import annotations

import json
from urllib.parse import quote

from repro.analyze.diagnostics import SEVERITIES, AnalysisReport, Diagnostic
from repro.analyze.rules import RULES
from repro.errors import AnalysisError

__all__ = ["FORMATS", "render_report", "to_json", "to_sarif"]

FORMATS: tuple[str, ...] = ("text", "json", "sarif")

_SARIF_LEVEL = {"error": "error", "warning": "warning", "info": "note"}


def render_report(report: AnalysisReport, fmt: str = "text") -> str:
    """Serialize a report in one of :data:`FORMATS`."""
    if fmt == "text":
        return report.describe()
    if fmt == "json":
        return json.dumps(to_json(report), indent=2, sort_keys=True)
    if fmt == "sarif":
        return json.dumps(to_sarif(report), indent=2, sort_keys=True)
    raise AnalysisError(
        f"unknown output format {fmt!r}; known: {', '.join(FORMATS)}"
    )


def to_json(report: AnalysisReport) -> dict:
    """The stable JSON shape (``format: repro-analysis``)."""
    return {
        "format": "repro-analysis",
        "version": 1,
        "subject": report.subject,
        "counts": {s: len(report.by_severity(s)) for s in SEVERITIES},
        "suppressed": report.suppressed,
        "ok": report.ok,
        "diagnostics": [d.to_dict() for d in report.diagnostics],
    }


def to_sarif(report: AnalysisReport) -> dict:
    """SARIF 2.1.0 with the full rule catalogue in ``tool.driver``."""
    present = {d.code for d in report.diagnostics}
    rules = [
        {
            "id": code,
            "name": entry.title,
            "shortDescription": {"text": entry.title},
            "fullDescription": {"text": entry.description},
            "help": {"text": entry.hint or entry.description},
            "defaultConfiguration": {"level": _SARIF_LEVEL[entry.severity]},
        }
        for code, entry in sorted(RULES.items())
        if code in present
    ]
    index = {r["id"]: i for i, r in enumerate(rules)}
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-analyze",
                    "informationUri": "docs/analysis.md",
                    "rules": rules,
                }
            },
            "results": [
                _sarif_result(d, index[d.code]) for d in report.diagnostics
            ],
        }],
    }


def _artifact_uri(path: str) -> str:
    """A spec-valid ``artifactLocation.uri``: forward slashes, with
    non-ASCII and reserved characters percent-encoded."""
    return quote(path.replace("\\", "/"), safe="/:.-_~")


def _sarif_result(diag: Diagnostic, rule_index: int) -> dict:
    message = diag.message
    if diag.hint:
        message += f" (hint: {diag.hint})"
    result: dict = {
        "ruleId": diag.code,
        "ruleIndex": rule_index,
        "level": _SARIF_LEVEL[diag.severity],
        "message": {"text": message},
    }
    if diag.file is not None:
        region: dict = {}
        if diag.line is not None:
            region["startLine"] = max(1, diag.line)  # SARIF is 1-indexed
        if diag.col is not None:
            region["startColumn"] = max(1, diag.col + 1)
        location: dict = {
            "physicalLocation": {
                "artifactLocation": {"uri": _artifact_uri(diag.file)},
            }
        }
        if region:
            location["physicalLocation"]["region"] = region
        result["locations"] = [location]
    elif diag.locus:
        result["locations"] = [{
            "logicalLocations": [{"fullyQualifiedName": diag.locus}]
        }]
    return result
