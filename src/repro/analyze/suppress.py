"""Shared suppression semantics for the source-linting heads.

Both source heads — the codebase lint (:mod:`repro.analyze.lint`,
``RL1xx``) and the interprocedural flow analyzer
(:mod:`repro.analyze.flow`, ``RD1xx``/``RC2xx``) — honour the same
comment grammar:

* ``# repro-lint: disable=CODE[,CODE...]`` silences findings **on that
  line** (``disable=all`` silences every code there);
* ``# repro-lint: disable-file=CODE[,CODE...]`` anywhere in a file
  silences findings **for the whole file**.

Silenced findings are counted, never dropped on the floor: they land in
:attr:`~repro.analyze.diagnostics.AnalysisReport.suppressed`.

Suppressions are themselves checked (rule ``RL109``,
``useless-suppression``): a comment naming a code that is not in the
catalogue, or one that silenced nothing in its scope, gets a warning —
stale suppressions are how a rule silently stops protecting a line.
Each head only judges the code families it can emit
(``owned_prefixes``), so the lint head does not call a flow
suppression "unused" and vice versa; tokens that belong to no source
head (``RA...``, which applies to inputs, not source) are never
judged.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analyze.diagnostics import Diagnostic
from repro.analyze.rules import RULES, make

__all__ = ["Suppressions", "parse_suppressions", "apply_suppressions"]

_LINE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)"
)
_FILE_RE = re.compile(
    r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)"
)

#: Code-family prefixes emitted by *some* source-linting head.  A
#: suppression token outside every family (a typo like ``RL1O2`` or
#: ``bogus``) is reported by whichever head owns the catch-all — the
#: codebase lint, since it is the head every tree runs.
HEAD_PREFIXES = ("RL", "RD", "RC")


def _split(raw: str) -> set[str]:
    out = set()
    for piece in raw.split(","):
        piece = piece.strip()
        out.add("all" if piece.lower() == "all" else piece.upper())
    return out


@dataclass
class Suppressions:
    """Parsed suppression comments of one source file."""

    #: line number -> codes silenced on that line (may contain "all").
    line: dict[int, set[str]] = field(default_factory=dict)
    #: codes silenced for the whole file (may contain "all").
    file: set[str] = field(default_factory=set)
    #: every (lineno, token, is_file_level) as written, for RL109.
    tokens: list[tuple[int, str, bool]] = field(default_factory=list)


def _comments(source: str) -> list[tuple[int, str]]:
    """(lineno, text) of every real comment token.  Tokenizing (rather
    than regex-scanning raw lines) keeps grammar examples inside
    docstrings from parsing as suppressions."""
    try:
        return [
            (tok.start[0], tok.string)
            for tok in tokenize.generate_tokens(
                io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # unparsable text: fall back to raw lines (still sound — the
        # linting heads reject unparsable files before this runs)
        return list(enumerate(source.splitlines(), start=1))


def parse_suppressions(source: str) -> Suppressions:
    """Collect inline and file-level suppressions from source text."""
    out = Suppressions()
    for lineno, text in _comments(source):
        match = _FILE_RE.search(text)
        if match:
            codes = _split(match.group(1))
            out.file |= codes
            out.tokens.extend((lineno, c, True) for c in sorted(codes))
            continue
        match = _LINE_RE.search(text)
        if match:
            codes = _split(match.group(1))
            out.line.setdefault(lineno, set()).update(codes)
            out.tokens.extend((lineno, c, False) for c in sorted(codes))
    return out


def apply_suppressions(
    findings: list[Diagnostic],
    source: str,
    *,
    path: str = "<string>",
    owned_prefixes: tuple[str, ...],
) -> tuple[list[Diagnostic], int]:
    """Filter ``findings`` through the file's suppression comments.

    Returns ``(kept, suppressed_count)`` where ``kept`` is sorted by
    locus and already includes any ``RL109`` useless-suppression
    warnings this head is responsible for (per ``owned_prefixes``).
    """
    sheet = parse_suppressions(source)
    kept: list[Diagnostic] = []
    suppressed = 0
    # which (scope, token) pairs actually silenced something; scope is
    # the line number for inline comments, -1 for file level
    used: set[tuple[int, str]] = set()
    for diag in findings:
        here = sheet.line.get(diag.line or -1, set())
        if "all" in here or diag.code in here:
            suppressed += 1
            token = diag.code if diag.code in here else "all"
            used.add((diag.line or -1, token))
        elif "all" in sheet.file or diag.code in sheet.file:
            suppressed += 1
            token = diag.code if diag.code in sheet.file else "all"
            used.add((-1, token))
        else:
            kept.append(diag)
    kept.extend(_useless(sheet, used, path, owned_prefixes))
    kept.sort(key=lambda d: (d.line or 0, d.col or 0, d.code))
    return kept, suppressed


def _useless(
    sheet: Suppressions,
    used: set[tuple[int, str]],
    path: str,
    owned_prefixes: tuple[str, ...],
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    catch_all = "RL" in owned_prefixes
    for lineno, token, file_level in sheet.tokens:
        if token == "all":
            continue  # blanket waivers span heads; never judged
        owned = any(token.startswith(p) for p in owned_prefixes)
        in_some_head = any(token.startswith(p) for p in HEAD_PREFIXES)
        if token not in RULES:
            if owned or (catch_all and not in_some_head):
                out.append(make(
                    "RL109",
                    f"suppression names unknown code {token!r}: it is "
                    "not in the rule catalogue",
                    file=path, line=lineno, col=0,
                ))
            continue
        if not owned:
            continue  # another head's family; that head judges it
        scope = -1 if file_level else lineno
        if (scope, token) not in used:
            where = "anywhere in this file" if file_level else "on this line"
            out.append(make(
                "RL109",
                f"suppression of {token} silences nothing {where}",
                file=path, line=lineno, col=0,
            ))
    return out
