"""RA1xx — static diagnostics of a CSDFG.

Two entry points: :func:`check_graph` analyzes a constructed
:class:`~repro.graph.csdfg.CSDFG` (liveness, dead nodes, connectivity),
and :func:`check_graph_payload` analyzes a *raw JSON payload* before the
constructors run, so out-of-domain annotations become precise coded
diagnostics instead of a :class:`~repro.errors.GraphError` traceback.
"""

from __future__ import annotations

from typing import Any

from repro.analyze.diagnostics import Diagnostic
from repro.analyze.rules import make
from repro.graph.csdfg import CSDFG
from repro.graph.validation import find_zero_delay_cycle

__all__ = ["check_graph", "check_graph_payload"]


def check_graph(graph: CSDFG) -> list[Diagnostic]:
    """All RA1xx findings of a constructed graph."""
    out: list[Diagnostic] = []
    if graph.num_nodes == 0:
        out.append(make("RA102", f"graph {graph.name!r} has no nodes"))
        return out

    cycle = find_zero_delay_cycle(graph)
    if cycle:
        out.append(make(
            "RA101",
            "cycle with zero total delay (the iteration deadlocks): "
            + " -> ".join(map(str, cycle)),
            node=str(cycle[0]),
        ))

    for node in graph.nodes():
        if graph.in_degree(node) == 0 and graph.out_degree(node) == 0:
            out.append(make(
                "RA103",
                f"node {node!r} has no incident edges",
                node=str(node),
            ))

    out.extend(_connectivity(graph))
    return out


def _connectivity(graph: CSDFG) -> list[Diagnostic]:
    """RA104 when the underlying undirected graph is disconnected."""
    seen: set = set()
    start = next(graph.nodes())
    frontier = [start]
    seen.add(start)
    while frontier:
        node = frontier.pop()
        for nxt in list(graph.successors(node)) + list(graph.predecessors(node)):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    if len(seen) == graph.num_nodes:
        return []
    missing = sorted(str(v) for v in graph.nodes() if v not in seen)
    return [make(
        "RA104",
        f"graph is not weakly connected; unreached from "
        f"{start!r}: {', '.join(missing)}",
        node=missing[0],
    )]


def check_graph_payload(payload: Any) -> list[Diagnostic]:
    """RA1xx findings of a raw ``repro-csdfg`` JSON payload.

    Returns *only* the payload-level problems (domain violations,
    dangling endpoints, duplicates, missing fields); when it returns an
    empty list the payload is guaranteed to construct cleanly and
    should then be analyzed with :func:`check_graph`.
    """
    out: list[Diagnostic] = []
    if not isinstance(payload, dict) or payload.get("format") != "repro-csdfg":
        return [make(
            "RA108",
            "not a repro-csdfg JSON payload (missing format marker)",
        )]

    known: set[str] = set()
    for i, node in enumerate(payload.get("nodes", [])):
        if not isinstance(node, dict) or "id" not in node:
            out.append(make("RA108", f"nodes[{i}] has no 'id' field"))
            continue
        name = str(node["id"])
        if name in known:
            out.append(make("RA108", f"duplicate node id {name!r}", node=name))
        known.add(name)
        time = node.get("time", 1)
        if not isinstance(time, int) or time < 1:
            out.append(make(
                "RA105",
                f"node {name!r}: execution time must be an integer >= 1, "
                f"got {time!r}",
                node=name,
            ))

    pairs: set[tuple[str, str]] = set()
    for i, edge in enumerate(payload.get("edges", [])):
        if not isinstance(edge, dict) or "src" not in edge or "dst" not in edge:
            out.append(make("RA108", f"edges[{i}] has no src/dst fields"))
            continue
        src, dst = str(edge["src"]), str(edge["dst"])
        locus = {"edge": (src, dst)}
        for endpoint in (src, dst):
            if endpoint not in known:
                out.append(make(
                    "RA108",
                    f"edge {src!r}->{dst!r}: unknown node {endpoint!r}",
                    **locus,
                ))
        if (src, dst) in pairs:
            out.append(make(
                "RA108", f"duplicate edge {src!r}->{dst!r}", **locus
            ))
        pairs.add((src, dst))
        delay = edge.get("delay", 0)
        if not isinstance(delay, int) or delay < 0:
            out.append(make(
                "RA106",
                f"edge {src!r}->{dst!r}: delay must be an integer >= 0, "
                f"got {delay!r}",
                **locus,
            ))
        volume = edge.get("volume", 1)
        if not isinstance(volume, int) or volume < 1:
            out.append(make(
                "RA107",
                f"edge {src!r}->{dst!r}: volume must be an integer >= 1, "
                f"got {volume!r}",
                **locus,
            ))
    return out
