"""The dynamic determinism sanitizer (``repro sanitize``).

The static flow analyzer (:mod:`repro.analyze.flow`) proves the RD1xx
determinism properties it can see syntactically; this module is the
runtime backstop for everything it cannot.  The protocol is blunt and
effective: run one target ``repro`` command **twice** with the two
knobs most likely to expose hidden nondeterminism perturbed between
the runs —

* ``PYTHONHASHSEED`` — flushes out ``dict``/``set`` iteration-order
  and salted-``hash()`` dependence (the RD102/RD101 classes);
* ``--jobs`` — flushes out worker-count and completion-order
  dependence in the parallel drivers (the RD101/RD104 classes);

— then byte-compare the two outputs after *canonicalization*, which
scrubs exactly the tokens that legitimately differ between any two
runs (wall-clock durations, throughput rates, output file paths).
Schedule lengths, placements, winner indices, violation lists and
history fingerprints all survive canonicalization, so any surviving
byte difference is a real determinism bug.

A same-process variant backs the ``sanitizer-agrees`` fuzz property
(:mod:`repro.qa.properties`): :func:`schedule_fingerprint` reduces a
schedule to a canonical string so two in-process runs of the pipeline
can be compared without spawning interpreters.
"""

from __future__ import annotations

import difflib
import json
import os
import re
import subprocess
import sys
from dataclasses import dataclass, field

from repro.errors import AnalysisError

__all__ = [
    "RunOutcome", "SanitizeReport", "canonicalize_output",
    "sanitize_command", "schedule_fingerprint",
]

#: Tokens that legitimately vary between two healthy runs, replaced by
#: stable placeholders before comparison.  Everything else must match.
_SCRUBBERS: tuple[tuple[re.Pattern[str], str], ...] = (
    # wall-clock durations: "0.31s", "12.5 ms", "3.1 seconds", "2m03s"
    (re.compile(r"\b\d+(?:[._]\d+)*\s*(?:ms|s|sec|secs|seconds)\b"),
     "<DURATION>"),
    # throughput rates: "8123 nodes/s", "1,204.7 trials/s"
    (re.compile(r"\b\d[\d,_]*(?:\.\d+)?\s*(?:[A-Za-z]+/s)\b"), "<RATE>"),
    # "... written to /tmp/xyz" / "... appended under DIR (run abc123)"
    (re.compile(r"(written to|appended under|saved to)\s+\S+"),
     r"\1 <PATH>"),
    # run/trace identifiers minted per invocation
    (re.compile(r"\brun[-_ ]?id[=: ]+\S+", re.IGNORECASE), "run-id <ID>"),
    # pointers to temp dirs leak mkdtemp suffixes
    (re.compile(r"/tmp/\S+"), "<TMP>"),
    # the worker count itself is perturbed between the two runs, so a
    # command echoing its own --jobs setting is not a violation
    (re.compile(r"\b(jobs|workers?)[=: ]+\d+\b"), r"\1=<N>"),
)


def canonicalize_output(text: str) -> str:
    """Scrub run-varying tokens (durations, rates, paths, run ids)."""
    for pattern, repl in _SCRUBBERS:
        text = pattern.sub(repl, text)
    return text


@dataclass(frozen=True)
class RunOutcome:
    """One of the two perturbed executions."""

    argv: tuple[str, ...]
    hashseed: int
    jobs: int | None
    returncode: int
    stdout: str
    stderr: str

    @property
    def canonical(self) -> str:
        return (f"exit={self.returncode}\n"
                + canonicalize_output(self.stdout)
                + "\n--- stderr ---\n"
                + canonicalize_output(self.stderr))


@dataclass
class SanitizeReport:
    """The double-run verdict: identical canonical outputs, or a diff."""

    target: tuple[str, ...]
    runs: list[RunOutcome] = field(default_factory=list)
    diff: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diff

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def describe(self) -> str:
        a, b = self.runs
        head = (
            f"sanitize {' '.join(self.target)}: "
            f"run A (PYTHONHASHSEED={a.hashseed}, jobs={a.jobs}) vs "
            f"run B (PYTHONHASHSEED={b.hashseed}, jobs={b.jobs})"
        )
        if self.ok:
            return head + "\n  outputs byte-identical after canonicalization"
        return head + (
            f"\n  DETERMINISM VIOLATION: {len(self.diff)} differing "
            "diff line(s)"
        )

    def to_dict(self) -> dict:
        return {
            "format": "repro-sanitize",
            "version": 1,
            "target": list(self.target),
            "ok": self.ok,
            "runs": [
                {
                    "argv": list(r.argv),
                    "hashseed": r.hashseed,
                    "jobs": r.jobs,
                    "returncode": r.returncode,
                }
                for r in self.runs
            ],
            "diff": self.diff,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _with_jobs(target: tuple[str, ...], jobs: int) -> tuple[tuple[str, ...], int | None]:
    """Rewrite an existing ``--jobs`` value; never inject one (the
    target subcommand may not accept it).  Returns the effective jobs
    value, or None when the target runs serially with no such flag."""
    args = list(target)
    for i, arg in enumerate(args):
        if arg == "--jobs" and i + 1 < len(args):
            args[i + 1] = str(jobs)
            return tuple(args), jobs
        if arg.startswith("--jobs="):
            args[i] = f"--jobs={jobs}"
            return tuple(args), jobs
    return tuple(args), None


def _run_once(
    target: tuple[str, ...],
    *,
    hashseed: int,
    jobs: int,
    timeout: float,
    python: str,
) -> RunOutcome:
    argv_target, effective_jobs = _with_jobs(target, jobs)
    argv = (python, "-m", "repro", *argv_target)
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    try:
        proc = subprocess.run(
            argv, capture_output=True, text=True,
            timeout=timeout, env=env, check=False,
        )
    except subprocess.TimeoutExpired as exc:
        raise AnalysisError(
            f"sanitize target timed out after {timeout:.0f}s: "
            f"{' '.join(argv_target)}"
        ) from exc
    except OSError as exc:
        raise AnalysisError(f"cannot launch {argv[0]}: {exc}") from exc
    return RunOutcome(
        argv=argv, hashseed=hashseed, jobs=effective_jobs,
        returncode=proc.returncode, stdout=proc.stdout,
        stderr=proc.stderr,
    )


def sanitize_command(
    target: list[str] | tuple[str, ...],
    *,
    jobs_a: int = 1,
    jobs_b: int = 2,
    hashseed_a: int = 101,
    hashseed_b: int = 202,
    timeout: float = 120.0,
    python: str | None = None,
) -> SanitizeReport:
    """Run ``repro <target>`` twice under perturbed ``PYTHONHASHSEED``
    and ``--jobs`` and diff the canonicalized outputs.

    The target's own ``--jobs`` value (when present) is rewritten to
    ``jobs_a``/``jobs_b`` per run; a target without the flag is still
    perturbed by the hash seed.  Raises :class:`AnalysisError` for an
    unlaunchable or timed-out target; a *failing* target is fine — the
    two runs must merely fail identically.
    """
    if not target:
        raise AnalysisError(
            "sanitize needs a target repro subcommand, e.g. "
            "`repro sanitize -- schedule figure1 --arch mesh --pes 4`"
        )
    interp = python if python is not None else sys.executable
    runs = [
        _run_once(tuple(target), hashseed=hashseed_a, jobs=jobs_a,
                  timeout=timeout, python=interp),
        _run_once(tuple(target), hashseed=hashseed_b, jobs=jobs_b,
                  timeout=timeout, python=interp),
    ]
    diff = list(difflib.unified_diff(
        runs[0].canonical.splitlines(),
        runs[1].canonical.splitlines(),
        fromfile=f"run-a (hashseed={hashseed_a}, jobs={runs[0].jobs})",
        tofile=f"run-b (hashseed={hashseed_b}, jobs={runs[1].jobs})",
        lineterm="",
    ))
    return SanitizeReport(target=tuple(target), runs=runs, diff=diff)


def schedule_fingerprint(schedule) -> str:
    """A canonical, order-independent rendering of a schedule — the
    same-process currency of the ``sanitizer-agrees`` fuzz property.

    Two runs of a deterministic pipeline must produce byte-identical
    fingerprints whatever the iteration order of any internal dict or
    set happened to be.
    """
    rows = sorted(
        f"{p.node}@pe{p.pe}:{p.start}+{p.duration}"
        for p in schedule.placements()
    )
    return f"L{schedule.length}|" + ";".join(rows)
