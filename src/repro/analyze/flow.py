"""Head 3 — the interprocedural determinism & contract analyzer
(``repro analyze --flow``).

Where the per-file lint (:mod:`repro.analyze.lint`) checks one
statement at a time, this head builds a *module-level call graph* over
the whole source tree and per-function summaries — RNG taint,
wall-clock/env taint, set-iteration-order sensitivity, occupancy-freeze
state — then propagates them to a fixpoint.  Two rule families come
out of the propagation, both emitted through the same
:class:`~repro.analyze.diagnostics.Diagnostic` / SARIF currency:

**RD1xx — determinism flow.**  The engine promises
same-seed-same-schedule across ``--jobs`` and ``PYTHONHASHSEED``:

* RD101 — a parallel payload (``run_parallel``/executor ``submit``)
  or a scheduling ``priority=`` argument transitively draws unseeded
  randomness (global random state, unseeded ``Random()``, the
  per-process-salted builtin ``hash()``);
* RD102 — a worker-merge boundary (a function that merges metric
  snapshots, publishes stats, or runs as a parallel payload) iterates
  a set, or a helper summarized as *returning* set-ordered data,
  without sorting;
* RD103 — a wall-clock/``os.environ`` read flows into a scheduling
  entry point: as an argument (budget keywords excluded — deadlines
  are user intent), or as a read inside a function transitively
  callable from the core entry points (``repro.obs`` instrumentation
  is allowlisted);
* RD104 — results consumed in worker *completion* order
  (``as_completed``, ``imap_unordered``) instead of submission order.

**RC2xx — engine contracts.**  The freeze-then-certify contention
protocol (see ``docs/contention.md``) and the backend pin:

* RC201 — contended :class:`CommCostCache` built without a frozen
  :class:`LinkOccupancy` snapshot (missing, or a bare empty ledger)
  outside ``repro.arch``;
* RC202 — a frozen snapshot reused across remaps: a second contended
  remap prices against occupancy the first already invalidated, or a
  loop reuses a snapshot frozen outside it;
* RC203 — a cache/ledger *construction* (``CommCostCache``,
  ``for_graph``, ``from_assignment``) inside a ``for``/``while``
  loop — O(edges) work per iteration; the contention fixpoint's
  deliberate per-round reprice carries a documented suppression;
* RC204 — kernel-backend branching (``BACKEND``/``np_kernels``/
  ``py_kernels`` references, ``REPRO_KERNELS`` env reads, guarded
  numpy imports) outside ``repro.core.kernels`` (the ``repro.qa``
  backend-agreement oracles are allowlisted).

Like the lint head, files are parsed, never imported; suppressions use
the shared grammar in :mod:`repro.analyze.suppress` (this head owns
the ``RD``/``RC`` families).  Module identity comes from
:func:`repro.analyze.lint.infer_module`, so mutation fixtures planted
under temporary ``repro/`` trees analyze as the real modules.

The resolver is deliberately *syntactic*: import aliases, module-level
defs, nested defs and straight-line local assignments are followed;
attribute lookups through ``self`` or arbitrary objects are not.  That
keeps the analysis fast and zero-false-positive on the shipped tree —
the contract is "everything flagged is real", with the dynamic
sanitizer (:mod:`repro.analyze.sanitize`) as the runtime backstop for
what the resolver cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analyze.diagnostics import AnalysisReport, Diagnostic
from repro.analyze.lint import _CLOCK_FUNCS, _RAND_FUNCS, _dotted, infer_module
from repro.analyze.rules import make
from repro.analyze.suppress import apply_suppressions
from repro.errors import AnalysisError

__all__ = ["analyze_flow", "FlowProgram", "FunctionSummary"]

#: Callables whose first positional argument is dispatched as parallel
#: work (the payload crosses a process/thread boundary).
PARALLEL_DISPATCH = frozenset({"run_parallel", "submit"})

#: Scheduling calls whose ``priority=`` argument orders task placement:
#: a nondeterministic priority is a nondeterministic schedule.
PRIORITY_SINKS = frozenset({
    "start_up_schedule", "cyclo_compact", "remap_nodes", "optimize",
    "best_of_restarts",
})

#: Entry points whose arguments must not carry clock/env taint (RD103a).
SCHEDULE_ENTRY_POINTS = PRIORITY_SINKS | frozenset({
    "resume_compaction", "contention_aware_schedule", "CycloConfig",
})

#: Explicit time *budgets* are user intent, not leaked nondeterminism:
#: the deadline changes how long the optimiser searches, which the
#: caller asked for.  Everything else an entry point consumes must be
#: clock-free.
BUDGET_KEYWORDS = frozenset({
    "deadline_seconds", "time_budget_seconds", "timeout",
})

#: Roots of the RD103(b) reachability closure: the core optimiser
#: entry points, anywhere under a ``repro`` tree.
CORE_ENTRY_POINTS = frozenset({
    "cyclo_compact", "start_up_schedule", "remap_nodes", "optimize",
    "resume_compaction",
})

#: Instrumentation may read the clock; the closure does not descend
#: into it (spans/counters are result-neutral by design).
CLOCK_EXEMPT_PACKAGES = ("repro.obs",)

#: Remap/compaction primitives consuming a frozen cache via ``comm=``.
REMAP_PRIMITIVES = frozenset({
    "remap_nodes", "cyclo_compact", "optimize", "resume_compaction",
})

#: Calls that mark a function as a worker-merge boundary (RD102).
MERGE_BOUNDARY_CALLS = frozenset({"merge_snapshot", "publish_stats"})

#: The one module allowed to branch on the kernel backend, and the
#: oracle package that deliberately compares both backends (RC204).
KERNEL_MODULE = "repro.core.kernels"
KERNEL_ALLOWED_PACKAGES = (KERNEL_MODULE, "repro.qa")
KERNEL_BACKEND_NAMES = frozenset({"BACKEND", "np_kernels", "py_kernels"})

#: Besides the lint's global-state draws, these are per-process entropy
#: sources for RD101's taint seeding.
_ENTROPY_CALLS = frozenset({"uuid4", "urandom", "token_bytes", "token_hex"})


def _in_pkg(module: str, packages: tuple[str, ...]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


# --------------------------------------------------------------------------
# summaries


@dataclass
class FunctionSummary:
    """Everything the propagation needs to know about one function.

    ``name`` is fully qualified (``repro.perf.restarts._run_stage``);
    the module-level statements of each file get a ``<module>``
    pseudo-function.
    """

    name: str
    module: str
    path: str
    lineno: int
    is_class: bool = False
    #: resolved call/reference edges to other known definitions
    targets: set[str] = field(default_factory=set)
    #: (line, what) unseeded-entropy draws in this body
    rng_sources: list[tuple[int, str]] = field(default_factory=list)
    #: (line, what) wall-clock / os.environ reads in this body
    clock_sites: list[tuple[int, str]] = field(default_factory=list)
    #: return value derived from a clock/env read
    returns_clock: bool = False
    #: return value carries set iteration order
    returns_set: bool = False
    #: lines iterating a set-ordered expression without sorting
    set_iterations: list[int] = field(default_factory=list)
    #: calls merge_snapshot / publish_stats (worker-merge boundary)
    merges: bool = False
    #: constructs a contended CommCostCache (a freeze helper)
    freezes: bool = False
    #: (line, call) completion-order consumption (RD104)
    completion_order: list[tuple[int, str]] = field(default_factory=list)
    #: (line, message) contended pricing without a snapshot (RC201)
    unfrozen_pricing: list[tuple[int, str]] = field(default_factory=list)
    #: (line, what) cache constructions inside a loop (RC203)
    hot_ctors: list[tuple[int, str]] = field(default_factory=list)
    #: (line, message) backend branching outside kernels (RC204)
    backend_refs: list[tuple[int, str]] = field(default_factory=list)
    #: (line, message) clock-tainted argument into an entry point (RD103a)
    clock_into_entry: list[tuple[int, str]] = field(default_factory=list)
    #: (line, kind, sink, candidate targets) payload/priority flows (RD101)
    dispatches: list[tuple[int, str, str, tuple[str, ...]]] = (
        field(default_factory=list)
    )
    #: (line, var) remap-primitive calls taking ``comm=var``  (RC202)
    remap_uses: list[tuple[int, str]] = field(default_factory=list)
    #: var -> [(line, is_freeze)] assignments feeding ``comm=`` vars
    comm_assigns: dict[str, list[tuple[int, bool]]] = (
        field(default_factory=dict)
    )
    #: (start, end) line extents of every for/while loop in this body
    loop_extents: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class _Knowledge:
    """Interprocedural facts re-fed into the scan until stable."""

    clock_returners: frozenset[str] = frozenset()
    set_returners: frozenset[str] = frozenset()
    freeze_returners: frozenset[str] = frozenset()

    def key(self) -> tuple:
        return (self.clock_returners, self.set_returners,
                self.freeze_returners)


class _SourceModule:
    """One parsed file plus its resolution tables."""

    def __init__(self, path: Path, source: str) -> None:
        self.path = str(path)
        self.source = source
        self.module = infer_module(path)
        try:
            self.tree = ast.parse(source, filename=self.path)
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {path}: {exc}") from exc
        self.is_package = Path(path).name == "__init__.py"
        self.imports: dict[str, str] = {}
        self.top_defs: dict[str, str] = {}
        self._collect_imports(self.tree)
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self.top_defs[stmt.name] = f"{self.module}.{stmt.name}"

    def _collect_imports(self, tree: ast.AST) -> None:
        # function-local imports resolve module-wide: an approximation,
        # but a safe one (it only ever *adds* resolvable names)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else name
                    self.imports[name] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.imports[name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _from_base(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        parts = self.module.split(".")
        if not self.is_package:
            parts = parts[:-1]
        if node.level > 1:
            parts = parts[: len(parts) - (node.level - 1)]
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base


# --------------------------------------------------------------------------
# the per-function scanner


class _Scope:
    """Mutable scan state of one function (or ``<module>``) body."""

    def __init__(self, summary: FunctionSummary,
                 local_defs: dict[str, str]) -> None:
        self.summary = summary
        self.local_defs = local_defs          # nested def name -> fullname
        self.clock_vars: set[str] = set()     # locals carrying clock taint
        self.set_vars: set[str] = set()       # locals carrying set order
        self.def_refs: dict[str, set[str]] = {}   # locals -> known defs
        self.loop_stack: list[tuple[int, int]] = []


class _Scanner:
    """Scans one module, producing a summary per function."""

    def __init__(self, mod: _SourceModule, know: _Knowledge,
                 all_defs: dict[str, bool]) -> None:
        self.mod = mod
        self.know = know
        self.all_defs = all_defs  # fullname -> is_class
        self.summaries: dict[str, FunctionSummary] = {}

    # -- resolution --------------------------------------------------------

    def _resolve(self, chain: list[str],
                 scope: _Scope | None) -> str | None:
        if not chain:
            return None
        head, rest = chain[0], chain[1:]
        base: str | None = None
        if scope is not None and head in scope.local_defs:
            base = scope.local_defs[head]
        elif head in self.mod.top_defs:
            base = self.mod.top_defs[head]
        elif head in self.mod.imports:
            base = self.mod.imports[head]
        if base is None:
            return None
        return ".".join([base, *rest]) if rest else base

    def _known(self, fullname: str | None) -> str | None:
        if fullname is not None and fullname in self.all_defs:
            return fullname
        return None

    def _candidates(self, expr: ast.expr, scope: _Scope) -> set[str]:
        """Known definitions an expression's value may denote: names,
        attribute chains, calls (the callee — covers ``Cls(args)``
        instances), and both arms of a conditional."""
        out: set[str] = set()
        if isinstance(expr, ast.IfExp):
            return (self._candidates(expr.body, scope)
                    | self._candidates(expr.orelse, scope))
        if isinstance(expr, ast.Call):
            return self._candidates(expr.func, scope)
        chain = _dotted(expr)
        if chain:
            hit = self._known(self._resolve(chain, scope))
            if hit:
                out.add(hit)
            elif len(chain) == 1 and chain[0] in scope.def_refs:
                out |= scope.def_refs[chain[0]]
        return out

    # -- expression classification ----------------------------------------

    def _is_clock_call(self, chain: list[str]) -> tuple[bool, str]:
        if len(chain) >= 2 and tuple(chain[-2:]) in _CLOCK_FUNCS:
            return True, f"{'.'.join(chain)}() reads the wall clock"
        if chain == ["getenv"] or chain[-2:] == ["os", "getenv"]:
            return True, "os.getenv() reads the environment"
        if len(chain) >= 2 and chain[-2:] == ["environ", "get"]:
            return True, "os.environ.get() reads the environment"
        return False, ""

    def _is_env_subscript(self, node: ast.expr) -> bool:
        return (isinstance(node, ast.Subscript)
                and _dotted(node.value)[-1:] == ["environ"])

    def _clock_tainted(self, expr: ast.expr, scope: _Scope) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                chain = _dotted(node.func)
                if self._is_clock_call(chain)[0]:
                    return True
                target = self._known(self._resolve(chain, scope))
                if target in self.know.clock_returners:
                    return True
            elif self._is_env_subscript(node):
                return True
            elif (isinstance(node, ast.Name)
                  and node.id in scope.clock_vars):
                return True
        return False

    def _set_ordered(self, expr: ast.expr, scope: _Scope) -> bool:
        """Does the expression's *iteration order* come from a hash
        table?  ``sorted(...)`` launders; ``list()``/``tuple()``
        preserve the underlying order."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.IfExp):
            return (self._set_ordered(expr.body, scope)
                    or self._set_ordered(expr.orelse, scope))
        if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._set_ordered(expr.left, scope)
                    or self._set_ordered(expr.right, scope))
        if isinstance(expr, ast.Name):
            return expr.id in scope.set_vars
        if isinstance(expr, ast.Call):
            chain = _dotted(expr.func)
            if chain in (["sorted"], ["min"], ["max"], ["sum"], ["len"]):
                return False
            if chain in (["set"], ["frozenset"]):
                return True
            if chain in (["list"], ["tuple"], ["iter"], ["reversed"],
                         ["enumerate"]):
                return bool(expr.args) and self._set_ordered(
                    expr.args[0], scope)
            target = self._known(self._resolve(chain, scope))
            return target in self.know.set_returners
        return False

    # -- call-site checks --------------------------------------------------

    def _check_call(self, node: ast.Call, scope: _Scope) -> None:
        s = scope.summary
        chain = _dotted(node.func)
        if not chain:
            return
        line = node.lineno
        name = chain[-1]
        dotted = ".".join(chain)
        resolved = self._resolve(chain, scope)

        # RD101 taint sources -------------------------------------------
        if name in _RAND_FUNCS and len(chain) >= 2 and "random" in chain[:-1]:
            s.rng_sources.append(
                (line, f"{dotted}() draws from global random state"))
        elif chain[-1:] == ["Random"] and not node.args and not node.keywords:
            s.rng_sources.append((line, "unseeded Random() constructed"))
        elif chain == ["hash"]:
            s.rng_sources.append(
                (line, "builtin hash() is salted per process"))
        elif name in _ENTROPY_CALLS:
            s.rng_sources.append((line, f"{dotted}() draws OS entropy"))

        # clock/env sources ---------------------------------------------
        is_clock, what = self._is_clock_call(chain)
        if is_clock:
            s.clock_sites.append((line, what))

        # merge boundaries ----------------------------------------------
        if name in MERGE_BOUNDARY_CALLS:
            s.merges = True

        # RD101 sinks: parallel dispatch & priority flows ----------------
        if name in PARALLEL_DISPATCH and node.args:
            cands = self._candidates(node.args[0], scope)
            if cands:
                s.dispatches.append(
                    (line, "payload", dotted, tuple(sorted(cands))))
        if name in PRIORITY_SINKS:
            for kw in node.keywords:
                if kw.arg == "priority":
                    cands = self._candidates(kw.value, scope)
                    if cands:
                        s.dispatches.append(
                            (line, "priority", name, tuple(sorted(cands))))

        # RD103(a): clock-tainted arguments into entry points ------------
        basename = (resolved or dotted).split(".")[-1]
        if basename in SCHEDULE_ENTRY_POINTS:
            for arg in node.args:
                if self._clock_tainted(arg, scope):
                    s.clock_into_entry.append((line, (
                        f"clock/env-derived value passed to {basename}()"
                    )))
                    break
            else:
                for kw in node.keywords:
                    if kw.arg in BUDGET_KEYWORDS:
                        continue
                    if self._clock_tainted(kw.value, scope):
                        s.clock_into_entry.append((line, (
                            f"clock/env-derived value passed to "
                            f"{basename}({kw.arg}=...)"
                        )))
                        break

        # RC201 / freeze detection --------------------------------------
        is_cache_ctor = (
            name == "CommCostCache"
            or (name == "for_graph" and "CommCostCache" in chain)
        )
        if is_cache_ctor:
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            contended = "contention" in kwargs and not (
                isinstance(kwargs["contention"], ast.Constant)
                and kwargs["contention"].value is None
            )
            if contended:
                s.freezes = True
                if not _in_pkg(self.mod.module, ("repro.arch",)):
                    occ = kwargs.get("occupancy")
                    if occ is None:
                        s.unfrozen_pricing.append((line, (
                            f"{dotted}(contention=...) without a frozen "
                            "occupancy= snapshot"
                        )))
                    elif (isinstance(occ, ast.Call)
                          and _dotted(occ.func)[-1:] == ["LinkOccupancy"]):
                        s.unfrozen_pricing.append((line, (
                            f"{dotted}(contention=...) priced against a "
                            "bare empty LinkOccupancy(), not a snapshot "
                            "frozen from an assignment"
                        )))

        # RC203: construction cost inside loops --------------------------
        is_hot_ctor = is_cache_ctor or (
            name == "from_assignment" and "LinkOccupancy" in chain
        )
        if is_hot_ctor and scope.loop_stack:
            s.hot_ctors.append(
                (line, f"{dotted}(...) constructed inside a loop"))

        # RC202: remap primitives consuming a frozen cache ----------------
        if basename in REMAP_PRIMITIVES:
            for kw in node.keywords:
                if kw.arg == "comm" and isinstance(kw.value, ast.Name):
                    s.remap_uses.append((line, kw.value.id))

        # RC204: REPRO_KERNELS env pin read outside kernels ---------------
        if not _in_pkg(self.mod.module, KERNEL_ALLOWED_PACKAGES):
            probe = None
            if name in ("get", "getenv") and node.args:
                probe = node.args[0]
            if (probe is not None and isinstance(probe, ast.Constant)
                    and probe.value == "REPRO_KERNELS"):
                s.backend_refs.append((line, (
                    "REPRO_KERNELS consulted outside the kernels module"
                )))

    # -- statement walk ----------------------------------------------------

    def _scan_expr(self, expr: ast.expr | None, scope: _Scope) -> None:
        """Depth-first over an expression: call-site checks, reference
        edges, comprehension iteration order, env subscripts."""
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._check_call(node, scope)
            elif self._is_env_subscript(node):
                chain = _dotted(node.value)
                scope.summary.clock_sites.append((
                    node.lineno,
                    f"{'.'.join(chain)}[...] reads the environment",
                ))
                if (isinstance(node.slice, ast.Constant)
                        and node.slice.value == "REPRO_KERNELS"
                        and not _in_pkg(self.mod.module,
                                        KERNEL_ALLOWED_PACKAGES)):
                    scope.summary.backend_refs.append((node.lineno, (
                        "REPRO_KERNELS consulted outside the kernels "
                        "module"
                    )))
            elif isinstance(node, (ast.Name, ast.Attribute)):
                chain = _dotted(node)
                if chain:
                    resolved = self._resolve(chain, scope)
                    target = self._known(resolved)
                    if target:
                        scope.summary.targets.add(target)
                    if resolved:
                        self._check_backend_ref(chain, resolved,
                                                node, scope)
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp)):
                for gen in node.generators:
                    self._check_iteration(gen.iter, node.lineno, scope)

    def _check_backend_ref(self, chain: list[str], target: str,
                           node: ast.AST, scope: _Scope) -> None:
        if _in_pkg(self.mod.module, KERNEL_ALLOWED_PACKAGES):
            return
        base, _, attr = target.rpartition(".")
        if attr in KERNEL_BACKEND_NAMES and base.endswith("core.kernels"):
            scope.summary.backend_refs.append((node.lineno, (
                f"{'.'.join(chain)} branches on the kernel backend "
                "outside the kernels module"
            )))

    def _check_iteration(self, iter_expr: ast.expr, line: int,
                         scope: _Scope) -> None:
        s = scope.summary
        if isinstance(iter_expr, ast.Call):
            chain = _dotted(iter_expr.func)
            if chain[-1:] == ["as_completed"] or (
                    chain[-1:] == ["imap_unordered"]):
                s.completion_order.append(
                    (line, f"{'.'.join(chain)}(...)"))
        if self._set_ordered(iter_expr, scope):
            s.set_iterations.append(line)

    def _assign_targets(self, stmt: ast.stmt) -> list[str]:
        names: list[str] = []
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for t in targets:
            if isinstance(t, ast.Name):
                names.append(t.id)
            elif isinstance(t, ast.Tuple):
                names.extend(e.id for e in t.elts
                             if isinstance(e, ast.Name))
        return names

    def _scan_assign(self, stmt: ast.stmt, value: ast.expr,
                     scope: _Scope) -> None:
        self._scan_expr(value, scope)
        names = self._assign_targets(stmt)
        if not names:
            return
        clock = self._clock_tainted(value, scope)
        setish = self._set_ordered(value, scope)
        cands = self._candidates(value, scope)
        freeze = self._is_freeze_expr(value, scope)
        ctorish = self._mentions_cache_ctor(value)
        for n in names:
            if clock:
                scope.clock_vars.add(n)
            if setish:
                scope.set_vars.add(n)
            if cands:
                scope.def_refs.setdefault(n, set()).update(cands)
            if freeze:
                scope.summary.comm_assigns.setdefault(n, []).append(
                    (stmt.lineno, True))
            elif ctorish or n in scope.summary.comm_assigns:
                scope.summary.comm_assigns.setdefault(n, []).append(
                    (stmt.lineno, False))

    def _mentions_cache_ctor(self, expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                chain = _dotted(node.func)
                if chain[-1:] == ["CommCostCache"] or (
                        chain[-1:] == ["for_graph"]
                        and "CommCostCache" in chain):
                    return True
        return False

    def _is_freeze_expr(self, expr: ast.expr, scope: _Scope) -> bool:
        """Is the RHS a *contended* cache — built here with a
        contention model, or returned by a freeze helper?"""
        if isinstance(expr, ast.IfExp):
            return (self._is_freeze_expr(expr.body, scope)
                    or self._is_freeze_expr(expr.orelse, scope))
        if not isinstance(expr, ast.Call):
            return False
        chain = _dotted(expr.func)
        if chain[-1:] == ["CommCostCache"] or (
                chain[-1:] == ["for_graph"] and "CommCostCache" in chain):
            for kw in expr.keywords:
                if kw.arg == "contention" and not (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is None):
                    return True
            return False
        target = self._known(self._resolve(chain, scope))
        return target in self.know.freeze_returners

    def _scan_stmts(self, stmts: list[ast.stmt], scope: _Scope) -> None:
        for stmt in stmts:
            self._scan_stmt(stmt, scope)

    def _scan_stmt(self, stmt: ast.stmt, scope: _Scope) -> None:
        s = scope.summary
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._scan_function(stmt, scope)
            return
        if isinstance(stmt, ast.ClassDef):
            self._scan_class(stmt, scope)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_assign(stmt, stmt.value, scope)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_assign(stmt, stmt.value, scope)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_assign(stmt, stmt.value, scope)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_expr(stmt.value, scope)
                if self._clock_tainted(stmt.value, scope):
                    s.returns_clock = True
                if self._set_ordered(stmt.value, scope):
                    s.returns_set = True
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, scope)
            self._check_iteration(stmt.iter, stmt.lineno, scope)
            extent = (stmt.lineno, stmt.end_lineno or stmt.lineno)
            s.loop_extents.append(extent)
            scope.loop_stack.append(extent)
            self._scan_stmts(stmt.body, scope)
            scope.loop_stack.pop()
            self._scan_stmts(stmt.orelse, scope)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, scope)
            extent = (stmt.lineno, stmt.end_lineno or stmt.lineno)
            s.loop_extents.append(extent)
            scope.loop_stack.append(extent)
            self._scan_stmts(stmt.body, scope)
            scope.loop_stack.pop()
            self._scan_stmts(stmt.orelse, scope)
            return
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, scope)
            self._scan_stmts(stmt.body, scope)
            self._scan_stmts(stmt.orelse, scope)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, scope)
            self._scan_stmts(stmt.body, scope)
            return
        if isinstance(stmt, ast.Try):
            self._check_guarded_numpy(stmt, scope)
            self._scan_stmts(stmt.body, scope)
            for handler in stmt.handlers:
                self._scan_stmts(handler.body, scope)
            self._scan_stmts(stmt.orelse, scope)
            self._scan_stmts(stmt.finalbody, scope)
            return
        # expression statements, asserts, raises, deletes, ...
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, scope)

    def _check_guarded_numpy(self, stmt: ast.Try, scope: _Scope) -> None:
        if _in_pkg(self.mod.module, KERNEL_ALLOWED_PACKAGES):
            return
        catches_import = any(
            any(n in ("ImportError", "ModuleNotFoundError")
                for n in _dotted(h.type)[-1:])
            for h in stmt.handlers if h.type is not None
        )
        if not catches_import:
            return
        for inner in stmt.body:
            mods: list[str] = []
            if isinstance(inner, ast.Import):
                mods = [a.name for a in inner.names]
            elif isinstance(inner, ast.ImportFrom):
                mods = [inner.module or ""]
            if any(m == "numpy" or m.startswith("numpy.") for m in mods):
                scope.summary.backend_refs.append((inner.lineno, (
                    "try/except-guarded numpy import outside the "
                    "kernels module duplicates the backend pin"
                )))

    # -- scope orchestration ----------------------------------------------

    def _nested_defs(self, body: list[ast.stmt],
                     prefix: str) -> dict[str, str]:
        return {
            stmt.name: f"{prefix}.{stmt.name}"
            for stmt in body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))
        }

    def _scan_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                       parent: _Scope) -> None:
        fullname = parent.local_defs.get(
            node.name, f"{parent.summary.name}.{node.name}")
        summary = FunctionSummary(
            name=fullname, module=self.mod.module,
            path=self.mod.path, lineno=node.lineno,
        )
        parent.summary.targets.add(fullname)
        scope = _Scope(summary, self._nested_defs(node.body, fullname))
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is not None:
                self._scan_expr(default, scope)
        for decorator in node.decorator_list:
            self._scan_expr(decorator, parent)
        self._scan_stmts(node.body, scope)
        self.summaries[fullname] = summary

    def _scan_class(self, node: ast.ClassDef, parent: _Scope) -> None:
        fullname = parent.local_defs.get(
            node.name, f"{parent.summary.name}.{node.name}")
        summary = FunctionSummary(
            name=fullname, module=self.mod.module,
            path=self.mod.path, lineno=node.lineno, is_class=True,
        )
        parent.summary.targets.add(fullname)
        scope = _Scope(summary, self._nested_defs(node.body, fullname))
        for decorator in node.decorator_list:
            self._scan_expr(decorator, parent)
        self._scan_stmts(node.body, scope)
        # an instance is as tainted as its construction + call paths
        for method in ("__init__", "__call__", "__post_init__"):
            name = f"{fullname}.{method}"
            if name in self.summaries:
                summary.targets.add(name)
        self.summaries[fullname] = summary

    def scan(self) -> dict[str, FunctionSummary]:
        summary = FunctionSummary(
            name=f"{self.mod.module}.<module>", module=self.mod.module,
            path=self.mod.path, lineno=1,
        )
        scope = _Scope(summary, dict(self.mod.top_defs))
        self._scan_stmts(self.mod.tree.body, scope)
        self.summaries[summary.name] = summary
        return self.summaries


# --------------------------------------------------------------------------
# the program-level fixpoint + rule emission


class FlowProgram:
    """The scanned tree: summaries, call graph, propagated taint."""

    def __init__(self, modules: list[_SourceModule]) -> None:
        self.modules = modules
        self.all_defs: dict[str, bool] = {}
        for mod in modules:
            self._register_defs(mod)
        self.summaries: dict[str, FunctionSummary] = {}
        self._fixpoint()
        self.rng_tainted = self._propagate_rng()
        self.payloads, self.dispatch_sites = self._collect_dispatches()
        self.reachable = self._core_reachable()

    # definitions must be known before the first scan so references
    # resolve; collect them with a lightweight pre-pass
    def _register_defs(self, mod: _SourceModule) -> None:
        def walk(body: list[ast.stmt], prefix: str) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    self.all_defs[f"{prefix}.{stmt.name}"] = False
                    walk(stmt.body, f"{prefix}.{stmt.name}")
                elif isinstance(stmt, ast.ClassDef):
                    self.all_defs[f"{prefix}.{stmt.name}"] = True
                    walk(stmt.body, f"{prefix}.{stmt.name}")
        walk(mod.tree.body, mod.module)

    def _fixpoint(self) -> None:
        know = _Knowledge()
        for _ in range(5):
            summaries: dict[str, FunctionSummary] = {}
            for mod in self.modules:
                summaries.update(
                    _Scanner(mod, know, self.all_defs).scan())
            nxt = _Knowledge(
                clock_returners=frozenset(
                    n for n, s in summaries.items() if s.returns_clock),
                set_returners=frozenset(
                    n for n, s in summaries.items() if s.returns_set),
                freeze_returners=frozenset(
                    n for n, s in summaries.items() if s.freezes),
            )
            self.summaries = summaries
            if nxt.key() == know.key():
                break
            know = nxt

    def _propagate_rng(self) -> set[str]:
        tainted = {n for n, s in self.summaries.items() if s.rng_sources}
        # reverse edges: caller picks up callee taint
        changed = True
        while changed:
            changed = False
            for name, s in self.summaries.items():
                if name in tainted:
                    continue
                if any(t in tainted for t in s.targets):
                    tainted.add(name)
                    changed = True
        return tainted

    def _collect_dispatches(self):
        payloads: set[str] = set()
        sites = []
        for s in self.summaries.values():
            for line, kind, sink, cands in s.dispatches:
                sites.append((s, line, kind, sink, cands))
                if kind == "payload":
                    payloads.update(cands)
        return payloads, sites

    def _core_reachable(self) -> set[str]:
        seeds = [
            n for n in self.summaries
            if n.split(".")[-1] in CORE_ENTRY_POINTS
        ]
        seen: set[str] = set()
        stack = list(seeds)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            s = self.summaries.get(name)
            if s is None:
                continue
            for t in s.targets:
                ts = self.summaries.get(t)
                if ts is not None and _in_pkg(ts.module,
                                              CLOCK_EXEMPT_PACKAGES):
                    continue
                if t not in seen:
                    stack.append(t)
        return seen

    # -- emission ----------------------------------------------------------

    def diagnostics(self) -> list[Diagnostic]:
        found: list[Diagnostic] = []

        def emit(code: str, s: FunctionSummary, line: int,
                 message: str) -> None:
            found.append(make(code, message, file=s.path, line=line, col=0))

        for s, line, kind, sink, cands in self.dispatch_sites:
            bad = sorted(c for c in cands if c in self.rng_tainted)
            if not bad:
                continue
            shown = bad[0].split(".", 1)[-1]
            src = self._taint_witness(bad[0])
            if kind == "payload":
                emit("RD101", s, line, (
                    f"parallel payload {shown!r} transitively draws "
                    f"unseeded randomness ({src})"
                ))
            else:
                emit("RD101", s, line, (
                    f"priority passed to {sink}() resolves to {shown!r}, "
                    f"which transitively draws unseeded randomness ({src})"
                ))

        for s in self.summaries.values():
            boundary = s.merges or s.name in self.payloads
            if boundary:
                role = ("worker-merge boundary" if s.merges
                        else "parallel payload")
                for line in sorted(set(s.set_iterations)):
                    emit("RD102", s, line, (
                        f"{s.name.split('.')[-1]}() is a {role} but "
                        "iterates a hash-ordered set here: order varies "
                        "with PYTHONHASHSEED"
                    ))
            for line, msg in s.clock_into_entry:
                emit("RD103", s, line, msg)
            if s.name in self.reachable and not _in_pkg(
                    s.module, CLOCK_EXEMPT_PACKAGES):
                for line, what in s.clock_sites:
                    emit("RD103", s, line, (
                        f"{what} inside {s.name.split('.')[-1]}(), which "
                        "is reachable from a core scheduling entry point"
                    ))
            for line, what in s.completion_order:
                emit("RD104", s, line, (
                    f"iterating {what} consumes results in worker "
                    "completion order"
                ))
            for line, msg in s.unfrozen_pricing:
                emit("RC201", s, line, msg)
            for line, msg in self._stale_freezes(s):
                emit("RC202", s, line, msg)
            for line, what in s.hot_ctors:
                emit("RC203", s, line, what)
            for line, msg in s.backend_refs:
                emit("RC204", s, line, msg)

        # one finding per (code, file, line)
        seen: set[tuple[str, str, int]] = set()
        unique: list[Diagnostic] = []
        for d in found:
            key = (d.code, d.file or "", d.line or 0)
            if key not in seen:
                seen.add(key)
                unique.append(d)
        return unique

    def _taint_witness(self, name: str) -> str:
        """A human-readable path to the entropy source behind a taint."""
        seen = {name}
        queue = [(name, [])]
        while queue:
            cur, trail = queue.pop(0)
            s = self.summaries.get(cur)
            if s is None:
                continue
            if s.rng_sources:
                line, what = s.rng_sources[0]
                via = " -> ".join(
                    t.split(".")[-1] for t in [*trail, cur])
                return f"{what} at line {line}, via {via}"
            for t in sorted(s.targets):
                if t in self.rng_tainted and t not in seen:
                    seen.add(t)
                    queue.append((t, [*trail, cur]))
        return "unseeded randomness"

    def _stale_freezes(self, s: FunctionSummary):
        out = []
        for line, var in s.remap_uses:
            assigns = s.comm_assigns.get(var, [])
            if not any(freeze for _, freeze in assigns):
                continue  # contention-free or unknown-origin cache
            prior = [a for a in assigns if a[0] < line]
            if not prior:
                continue
            last_line, last_freeze = max(prior)
            if not last_freeze:
                continue
            consumed = [
                l for l, v in s.remap_uses
                if v == var and last_line < l < line
            ]
            if consumed:
                out.append((line, (
                    f"{var!r} frozen at line {last_line} was already "
                    f"consumed by the remap at line {consumed[0]}: "
                    "re-freeze from the remapped assignment first"
                )))
                continue
            loops = [e for e in s.loop_extents if e[0] < line <= e[1]]
            if loops:
                start, _ = max(loops)  # innermost = latest start
                if last_line < start:
                    out.append((line, (
                        f"{var!r} frozen at line {last_line}, outside "
                        f"the loop starting at line {start}: the "
                        "snapshot goes stale after the first remap "
                        "iteration"
                    )))
        return out


# --------------------------------------------------------------------------
# entry points


def _collect_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append(p)
        else:
            raise AnalysisError(f"no such file or directory: {entry}")
    return files


def analyze_flow(paths: list[str | Path]) -> AnalysisReport:
    """Run the interprocedural analyzer over files/directories.

    Directories are walked recursively for ``*.py``.  Returns an
    :class:`AnalysisReport` whose diagnostics carry RD1xx/RC2xx codes
    (plus RL109 for stale flow suppressions); suppression comments use
    the shared ``# repro-lint: disable=`` grammar.
    """
    files = _collect_files(paths)
    modules = [_SourceModule(f, f.read_text()) for f in files]
    program = FlowProgram(modules)
    by_file: dict[str, list[Diagnostic]] = {}
    for diag in program.diagnostics():
        by_file.setdefault(diag.file or "", []).append(diag)
    report = AnalysisReport(subject=", ".join(str(p) for p in paths))
    for mod in modules:
        found, suppressed = apply_suppressions(
            by_file.get(mod.path, []), mod.source,
            path=mod.path, owned_prefixes=("RD", "RC"),
        )
        report.extend(found)
        report.suppressed += suppressed
    return report
