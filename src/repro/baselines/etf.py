"""ETF — Earliest Task First scheduling (Hwang et al., 1989) baseline.

A classic *communication-aware* DAG heuristic contemporary with the
paper: among all ready tasks, repeatedly schedule the (task, processor)
pair with the globally earliest feasible start time (data arrival via
the interconnect plus processor availability).  Unlike the paper's
start-up scheduler it has no mobility/volume priority — ties fall to
the earliest-start pair — and like all DAG schedulers it does no loop
pipelining, so cyclo-compaction should beat it on cyclic workloads
while ETF remains a strong one-iteration baseline.
"""

from __future__ import annotations

from repro.arch.topology import Architecture
from repro.core.psl import projected_schedule_length
from repro.errors import SchedulingError
from repro.graph.csdfg import CSDFG, Node
from repro.graph.validation import topological_order_zero_delay
from repro.schedule.table import ScheduleTable

__all__ = ["etf_schedule"]


def etf_schedule(
    graph: CSDFG,
    arch: Architecture,
    *,
    pad_for_delayed_edges: bool = True,
) -> ScheduleTable:
    """Earliest-task-first schedule of ``graph`` on ``arch``.

    Returns a legal :class:`~repro.schedule.table.ScheduleTable`
    (delayed-edge padding included unless disabled).
    """
    if graph.num_nodes == 0:
        raise SchedulingError("cannot schedule an empty graph")
    topological_order_zero_delay(graph)  # legality check

    schedule = ScheduleTable(arch.num_pes, name=f"{graph.name}@{arch.name}:etf")
    pending = {
        v: sum(1 for e in graph.in_edges(v) if e.delay == 0)
        for v in graph.nodes()
    }
    ready = {v for v, k in pending.items() if k == 0}

    while ready:
        best: tuple[int, int, int, str] | None = None  # (finish, start, pe, node)
        best_node: Node | None = None
        for node in ready:
            for pe in arch.processors:
                duration = arch.execution_time(pe, graph.time(node))
                arrival = 1
                for e in graph.in_edges(node):
                    if e.delay != 0:
                        continue
                    p = schedule.placement(e.src)
                    comm = arch.comm_cost(p.pe, pe, e.volume)
                    arrival = max(arrival, p.finish + comm + 1)
                start = schedule.earliest_slot(pe, arrival, duration)
                key = (start + duration - 1, start, pe, str(node))
                if best is None or key < best:
                    best = key
                    best_node = node
        assert best is not None and best_node is not None
        _, start, pe, _ = best
        schedule.place(
            best_node, pe, start, arch.execution_time(pe, graph.time(best_node))
        )
        ready.remove(best_node)
        for e in graph.out_edges(best_node):
            if e.delay == 0:
                pending[e.dst] -= 1
                if pending[e.dst] == 0:
                    ready.add(e.dst)

    schedule.trim()
    if pad_for_delayed_edges:
        schedule.set_length(projected_schedule_length(graph, arch, schedule))
    return schedule
