"""Shared result type for baseline schedulers.

Communication-oblivious baselines make placement decisions pretending
communication is free, so their output must be *re-evaluated* under the
true architecture: either the placements remain legal once delayed-edge
padding is added (``actual_length``), or some intra-iteration
dependence is outright violated (``actual_length is None`` — the
schedule is infeasible at any length, the failure mode the paper's §1
motivates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.topology import Architecture
from repro.graph.csdfg import CSDFG
from repro.schedule.table import ScheduleTable
from repro.schedule.validate import minimum_feasible_length

__all__ = ["BaselineResult", "evaluate_under"]


@dataclass
class BaselineResult:
    """A baseline schedule plus its evaluation under the true comm model.

    Attributes
    ----------
    schedule:
        The schedule as produced by the baseline (legal under the
        *decision* model, e.g. zero communication).
    claimed_length:
        The length the baseline believes it achieved.
    actual_length:
        The minimum legal length of the same placements under the true
        architecture, or ``None`` when they are infeasible outright.
    graph:
        The (possibly retimed) graph matching ``schedule``.
    """

    schedule: ScheduleTable
    claimed_length: int
    actual_length: int | None
    graph: CSDFG

    @property
    def feasible(self) -> bool:
        """True when the placements survive the true comm model."""
        return self.actual_length is not None

    @property
    def penalty(self) -> int | None:
        """Extra control steps the true comm model costs (None when
        infeasible)."""
        if self.actual_length is None:
            return None
        return self.actual_length - self.claimed_length


def evaluate_under(
    graph: CSDFG, true_arch: Architecture, schedule: ScheduleTable
) -> int | None:
    """Minimum legal length of ``schedule``'s placements under
    ``true_arch`` (``None`` if infeasible)."""
    return minimum_feasible_length(graph, true_arch, schedule)
