"""Single-processor schedule and analytic bounds.

The sequential schedule (all tasks on PE 0 in zero-delay topological
order) upper-bounds any sensible parallel schedule; the iteration bound
and the critical path lower-bound every schedule regardless of
processor count.  Both brackets are used by the tests and the
experiment reports to sanity-check scheduler outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.arch.topology import Architecture
from repro.core.psl import projected_schedule_length
from repro.graph.csdfg import CSDFG
from repro.graph.properties import critical_path_length, iteration_bound
from repro.graph.validation import topological_order_zero_delay
from repro.schedule.table import ScheduleTable

__all__ = ["sequential_schedule", "ScheduleBounds", "schedule_bounds"]


def sequential_schedule(graph: CSDFG, arch: Architecture) -> ScheduleTable:
    """All tasks on PE 0, back to back, in zero-delay topological order.

    Communication is free on a single PE; the delayed self-dependences
    are honoured by the projected-schedule-length padding (rarely
    binding, since the makespan is already the total work).
    """
    schedule = ScheduleTable(arch.num_pes, name=f"{graph.name}:sequential")
    cs = 1
    for node in topological_order_zero_delay(graph):
        duration = arch.execution_time(0, graph.time(node))
        schedule.place(node, 0, cs, duration)
        cs += duration
    schedule.set_length(projected_schedule_length(graph, arch, schedule))
    return schedule


@dataclass(frozen=True)
class ScheduleBounds:
    """Analytic brackets on the achievable schedule length.

    Attributes
    ----------
    iteration_bound:
        Max cycle ratio — no static schedule of any width beats it.
    critical_path:
        Longest zero-delay path — binds schedules that do not pipeline
        across iterations (the start-up schedule).
    work_bound:
        ``ceil(total work / num PEs)`` — resource lower bound.
    sequential:
        Single-PE schedule length — the upper bracket.
    """

    iteration_bound: Fraction
    critical_path: int
    work_bound: int
    sequential: int

    @property
    def lower(self) -> int:
        """The tightest applicable lower bound for pipelined schedules."""
        return max(math.ceil(self.iteration_bound), self.work_bound, 1)


def schedule_bounds(graph: CSDFG, arch: Architecture) -> ScheduleBounds:
    """Compute all brackets for ``graph`` on ``arch``."""
    return ScheduleBounds(
        iteration_bound=iteration_bound(graph),
        critical_path=critical_path_length(graph),
        work_bound=-(-graph.total_work() // arch.num_pes),
        sequential=sequential_schedule(graph, arch).length,
    )
