"""Exact (branch-and-bound) scheduling for tiny instances.

Exhaustively searches placements (processor and start step per task)
for the smallest schedule length at which the given graph — with its
*current* delay assignment, i.e. no retiming — admits a legal schedule.
Exponential by nature: intended as an optimality oracle for the tests
and the optimality-gap bench on instances of a handful of nodes.

Two uses:

* certify the placement quality of the heuristics for a *fixed* graph
  (start-up, ETF, or the remapping of the final retimed graph),
* measure the optimality gap of cyclo-compaction's placement phase.

The search runs nodes in zero-delay topological order, prunes on
processor occupancy and on the earliest feasible start implied by
already-placed producers, and checks delayed-edge constraints as soon
as both endpoints are placed.
"""

from __future__ import annotations

import math

from repro.arch.topology import Architecture
from repro.errors import SchedulingError
from repro.graph.csdfg import CSDFG, Node
from repro.graph.properties import iteration_bound
from repro.graph.validation import topological_order_zero_delay
from repro.schedule.table import ScheduleTable
from repro.schedule.validate import collect_violations

__all__ = ["exact_minimum_length", "find_schedule_of_length"]

_MAX_NODES = 12


def find_schedule_of_length(
    graph: CSDFG,
    arch: Architecture,
    length: int,
    *,
    node_budget: int = 2_000_000,
) -> ScheduleTable | None:
    """A legal schedule of exactly ``length`` control steps, or None.

    Raises :class:`SchedulingError` when the graph is too large for
    exhaustive search or the search budget is exhausted (so a budget
    blow-up is never silently reported as "infeasible").
    """
    if graph.num_nodes > _MAX_NODES:
        raise SchedulingError(
            f"exact search supports <= {_MAX_NODES} nodes, got {graph.num_nodes}"
        )
    order = topological_order_zero_delay(graph)
    schedule = ScheduleTable(arch.num_pes, name=f"{graph.name}:exact")
    schedule.set_length(0)
    budget = [node_budget]

    if _place(graph, arch, schedule, order, 0, length, budget):
        schedule.set_length(length)
        assert collect_violations(graph, arch, schedule) == []
        return schedule
    return None


def _place(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    order: list[Node],
    idx: int,
    length: int,
    budget: list[int],
) -> bool:
    if idx == len(order):
        return True
    budget[0] -= 1
    if budget[0] < 0:
        raise SchedulingError("exact search budget exhausted")
    node = order[idx]
    base_time = graph.time(node)

    for pe in arch.processors:
        duration = arch.execution_time(pe, base_time)
        if duration > length:
            continue
        floor = 1
        feasible_pe = True
        for e in graph.in_edges(node):
            if e.src == node or e.src not in schedule:
                continue
            p = schedule.placement(e.src)
            comm = arch.comm_cost(p.pe, pe, e.volume)
            need = p.finish + comm + 1 - e.delay * length
            if need > floor:
                floor = need
        if floor + duration - 1 > length:
            continue
        for cb in range(floor, length - duration + 2):
            if not schedule.is_free(pe, cb, duration):
                continue
            ce = cb + duration - 1
            # delayed/zero-delay edges toward already-placed consumers
            if not _consumers_ok(graph, arch, schedule, node, pe, cb, ce, length):
                continue
            if not _self_loops_ok(graph, node, duration, length):
                continue
            schedule.place(node, pe, cb, duration)
            if _place(graph, arch, schedule, order, idx + 1, length, budget):
                return True
            schedule.remove(node)
        _ = feasible_pe
    return False


def _consumers_ok(graph, arch, schedule, node, pe, cb, ce, length) -> bool:
    for e in graph.out_edges(node):
        if e.dst == node or e.dst not in schedule:
            continue
        p = schedule.placement(e.dst)
        comm = arch.comm_cost(pe, p.pe, e.volume)
        if p.start + e.delay * length < ce + comm + 1:
            return False
    return True


def _self_loops_ok(graph, node, duration, length) -> bool:
    for e in graph.in_edges(node):
        if e.src == node and duration > e.delay * length:
            return False
    return True


def exact_minimum_length(
    graph: CSDFG,
    arch: Architecture,
    *,
    max_length: int | None = None,
    node_budget: int = 2_000_000,
) -> tuple[int, ScheduleTable]:
    """The smallest legal schedule length for ``graph`` on ``arch``
    (no retiming), with a witness schedule.

    Starts at the analytic lower bound (iteration bound, per-PE work,
    largest task) and increases until a schedule exists;
    ``max_length`` defaults to the single-PE sequential length.
    """
    work = sum(
        min(arch.execution_time(p, graph.time(v)) for p in arch.processors)
        for v in graph.nodes()
    )
    upper = max_length if max_length is not None else max(
        1, sum(arch.execution_time(0, graph.time(v)) for v in graph.nodes())
    )
    lower = max(
        1,
        math.ceil(iteration_bound(graph)),
        -(-work // arch.num_pes),
        max(
            min(arch.execution_time(p, graph.time(v)) for p in arch.processors)
            for v in graph.nodes()
        ),
    )
    for length in range(lower, upper + 1):
        schedule = find_schedule_of_length(
            graph, arch, length, node_budget=node_budget
        )
        if schedule is not None:
            return length, schedule
    raise SchedulingError(
        f"no schedule of length <= {upper} exists (graph {graph.name!r})"
    )
