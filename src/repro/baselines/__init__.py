"""Baseline schedulers the paper compares against (or that motivate it)."""

from repro.baselines.comm_rotation_unit import comm_rotation_schedule
from repro.baselines.etf import etf_schedule
from repro.baselines.exact import exact_minimum_length, find_schedule_of_length
from repro.baselines.list_oblivious import oblivious_list_schedule
from repro.baselines.result import BaselineResult, evaluate_under
from repro.baselines.rotation_chao import rotation_schedule
from repro.baselines.sequential import (
    ScheduleBounds,
    schedule_bounds,
    sequential_schedule,
)

__all__ = [
    "BaselineResult",
    "ScheduleBounds",
    "comm_rotation_schedule",
    "etf_schedule",
    "evaluate_under",
    "exact_minimum_length",
    "find_schedule_of_length",
    "oblivious_list_schedule",
    "rotation_schedule",
    "schedule_bounds",
    "sequential_schedule",
]
