"""Communication-sensitive rotation scheduling (Tongsima et al.,
ICCD'94) — the authors' own earlier technique, as a baseline.

The predecessor method handled communication cost but only for
**completely connected** architectures (uniform one-hop distances).
Applied to any other topology it under-estimates multi-hop transfers.
We model it by optimising against a completely-connected *decision*
topology with the same PE count, then re-evaluating the result on the
true architecture.
"""

from __future__ import annotations

from repro.arch.complete import CompletelyConnected
from repro.arch.topology import Architecture
from repro.baselines.result import BaselineResult, evaluate_under
from repro.core.config import CycloConfig
from repro.core.cyclo import cyclo_compact
from repro.graph.csdfg import CSDFG

__all__ = ["comm_rotation_schedule"]


def comm_rotation_schedule(
    graph: CSDFG,
    arch: Architecture,
    *,
    config: CycloConfig | None = None,
) -> BaselineResult:
    """ICCD'94-style scheduling: communication-aware but topology-blind.

    Decisions assume every PE pair is one hop apart (the predecessor
    paper's completely-connected assumption), re-evaluated on the true
    ``arch``.  On an actual completely connected machine this coincides
    with full cyclo-compaction.
    """
    decision_arch = CompletelyConnected(
        arch.num_pes, comm_model=arch.comm_model
    )
    result = cyclo_compact(graph, decision_arch, config=config)
    actual = evaluate_under(result.graph, arch, result.schedule)
    return BaselineResult(
        schedule=result.schedule,
        claimed_length=result.schedule.length,
        actual_length=actual,
        graph=result.graph,
    )
