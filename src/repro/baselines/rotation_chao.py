"""Rotation scheduling (Chao, LaPaugh & Sha, DAC'93) — baseline.

The paper's direct predecessor: loop pipelining by rotation and
rescheduling, but with *no* notion of communication cost.  We model it
as cyclo-compaction running against a zero-cost communication model,
then re-evaluate the winning schedule under the true architecture —
exactly the comparison the paper's introduction argues motivates
communication sensitivity.
"""

from __future__ import annotations

from repro.arch.comm import ZeroCommModel
from repro.arch.topology import Architecture
from repro.baselines.result import BaselineResult, evaluate_under
from repro.core.config import CycloConfig
from repro.core.cyclo import cyclo_compact
from repro.graph.csdfg import CSDFG

__all__ = ["rotation_schedule"]


def rotation_schedule(
    graph: CSDFG,
    arch: Architecture,
    *,
    config: CycloConfig | None = None,
) -> BaselineResult:
    """Rotation scheduling ignoring communication.

    Optimises on ``arch`` under a zero-cost model; the result records
    the minimum legal length of the winning placements under the true
    model (``None`` when they are infeasible, e.g. chained zero-delay
    tasks split across distant processors).
    """
    decision_arch = arch.with_comm_model(ZeroCommModel())
    result = cyclo_compact(graph, decision_arch, config=config)
    actual = evaluate_under(result.graph, arch, result.schedule)
    return BaselineResult(
        schedule=result.schedule,
        claimed_length=result.schedule.length,
        actual_length=actual,
        graph=result.graph,
    )
