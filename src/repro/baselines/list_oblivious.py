"""Communication-oblivious list scheduling (baseline).

The classic list schedulers the paper's related work cites (§1) ignore
inter-processor communication: we reproduce that behaviour by running
the start-up scheduler with a zero-cost communication model, then
re-evaluating the result under the true architecture.  The ablation
benchmark shows the two failure modes: padded (longer) schedules, or
placements that violate an intra-iteration dependence outright.
"""

from __future__ import annotations

from repro.arch.comm import ZeroCommModel
from repro.arch.topology import Architecture
from repro.baselines.result import BaselineResult, evaluate_under
from repro.core.priority import PriorityFn, mobility_only_priority
from repro.core.startup import start_up_schedule
from repro.graph.csdfg import CSDFG

__all__ = ["oblivious_list_schedule"]


def oblivious_list_schedule(
    graph: CSDFG,
    arch: Architecture,
    *,
    priority: PriorityFn = mobility_only_priority,
) -> BaselineResult:
    """List-schedule ``graph`` pretending communication is free.

    Placement decisions (including the delayed-edge padding) are made
    on ``arch`` with a :class:`~repro.arch.comm.ZeroCommModel`; the
    returned :class:`~repro.baselines.result.BaselineResult` carries
    the re-evaluation under the true ``arch``.
    """
    decision_arch = arch.with_comm_model(ZeroCommModel())
    schedule = start_up_schedule(graph, decision_arch, priority=priority)
    actual = evaluate_under(graph, arch, schedule)
    return BaselineResult(
        schedule=schedule,
        claimed_length=schedule.length,
        actual_length=actual,
        graph=graph.copy(),
    )
