"""Schedule substrate: tables, validation, rendering, metrics."""

from repro.schedule.io import (
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
)
from repro.schedule.metrics import (
    ScheduleMetrics,
    compute_metrics,
    remote_edge_count,
    speedup,
    total_comm_cost,
    utilization,
)
from repro.schedule.render import render_gantt, render_summary, render_table
from repro.schedule.table import Placement, ScheduleTable
from repro.schedule.validate import (
    collect_violations,
    is_valid_schedule,
    minimum_feasible_length,
    validate_schedule,
)

__all__ = [
    "Placement",
    "ScheduleMetrics",
    "ScheduleTable",
    "collect_violations",
    "compute_metrics",
    "is_valid_schedule",
    "load_schedule",
    "minimum_feasible_length",
    "remote_edge_count",
    "render_gantt",
    "render_summary",
    "render_table",
    "save_schedule",
    "schedule_from_json",
    "schedule_to_json",
    "speedup",
    "total_comm_cost",
    "utilization",
    "validate_schedule",
]
