"""Static schedule tables (control step x processor grids).

A :class:`ScheduleTable` is the paper's "schedule table": rows are
control steps ``1..length`` and columns are processors.  A task ``v``
occupies processor ``PE(v)`` for the ``t(v)`` consecutive control steps
``CB(v) .. CE(v)`` (Definitions 3.1-3.3).  The table is executed
cyclically with initiation interval ``length``.

The table stores explicit :class:`Placement` records plus a **per-PE
occupancy interval index**: for every processor a list of
``(start, busy_until, node)`` spans kept sorted by start.  Because
spans on one processor never overlap, every occupancy question becomes
a binary search — :meth:`cell` and :meth:`is_free` are ``O(log k)``,
:meth:`earliest_slot` is a gap walk from the query point instead of a
cell-by-cell probe, and :meth:`busy_cells` is a counter read.  The
interval index replaces the earlier per-cell dict; the randomized
equivalence suite in ``tests/unit/test_table_index.py`` pins this
implementation cell-for-cell against the naive reference table
(:class:`repro.perf.reference.ReferenceScheduleTable`).

``length`` may exceed the last busy control step (the paper pads with
empty control steps when the projected schedule length demands it).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator

from repro.errors import PlacementConflictError, ScheduleError
from repro.graph.csdfg import Node

__all__ = ["Placement", "ScheduleTable"]


@dataclass(frozen=True, slots=True)
class Placement:
    """One task's slot: processor, start, latency and resource span.

    ``duration`` is the task's execution latency ``t(v)`` (the paper's
    ``CE - CB + 1``).  ``occupancy`` is how many control steps the task
    *blocks its processor* for: equal to ``duration`` on ordinary PEs,
    1 on pipelined PEs (the paper's §2 "pipeline design" processors,
    which may issue a new task before the previous one completes).
    """

    node: Node
    pe: int
    start: int
    duration: int
    occupancy: int | None = None

    def __post_init__(self) -> None:
        if self.start < 1:
            raise ScheduleError(
                f"{self.node!r}: control steps start at 1, got {self.start}"
            )
        if self.duration < 1:
            raise ScheduleError(
                f"{self.node!r}: duration must be >= 1, got {self.duration}"
            )
        if self.pe < 0:
            raise ScheduleError(f"{self.node!r}: negative PE {self.pe}")
        if self.occupancy is None:
            object.__setattr__(self, "occupancy", self.duration)
        elif not (1 <= self.occupancy <= self.duration):
            raise ScheduleError(
                f"{self.node!r}: occupancy must be in 1..duration, got "
                f"{self.occupancy}"
            )

    @property
    def finish(self) -> int:
        """Last execution control step (the paper's ``CE``)."""
        return self.start + self.duration - 1

    @property
    def busy_until(self) -> int:
        """Last control step the processor is blocked."""
        return self.start + self.occupancy - 1

    def shifted(self, delta: int) -> "Placement":
        """Copy with the start moved by ``delta`` control steps."""
        start = self.start + delta
        if start < 1:
            raise ScheduleError(
                f"{self.node!r}: control steps start at 1, got {start}"
            )
        # hot path (every placement, every rotation): clone without
        # re-running the dataclass field validation — only the start
        # changed and its sole constraint is checked above
        clone = object.__new__(Placement)
        set_field = object.__setattr__
        set_field(clone, "node", self.node)
        set_field(clone, "pe", self.pe)
        set_field(clone, "start", start)
        set_field(clone, "duration", self.duration)
        set_field(clone, "occupancy", self.occupancy)
        return clone


class ScheduleTable:
    """A static cyclic schedule over ``num_pes`` processors.

    Parameters
    ----------
    num_pes:
        Number of processor columns.
    length:
        Initial schedule length (grows automatically as tasks are
        placed beyond it; may be padded explicitly via
        :meth:`set_length`).
    """

    def __init__(self, num_pes: int, length: int = 0, name: str = "schedule"):
        if num_pes < 1:
            raise ScheduleError(f"need at least one PE, got {num_pes}")
        if length < 0:
            raise ScheduleError(f"length must be >= 0, got {length}")
        self.num_pes = num_pes
        self.name = name
        self._length = length
        self._placements: dict[Node, Placement] = {}
        # per-PE occupancy index: sorted (start, busy_until, node) spans
        # plus a parallel start list for bisect and a busy-cell counter
        self._intervals: list[list[tuple[int, int, Node]]] = [
            [] for _ in range(num_pes)
        ]
        self._starts: list[list[int]] = [[] for _ in range(num_pes)]
        self._busy: list[int] = [0] * num_pes
        self._makespan: int | None = 0  # lazy cache; None = recompute
        # plain-int instrumentation tallies: one increment per interval-
        # index probe / whole-table shift, published to the metrics
        # registry once per run by the engine (see :meth:`publish_stats`)
        self.probes = 0
        self.shifts = 0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Schedule length ``L`` (the initiation interval)."""
        return self._length

    @property
    def makespan(self) -> int:
        """Last busy control step (0 when empty); ``<= length``."""
        if self._makespan is None:
            self._makespan = max(
                (p.finish for p in self._placements.values()), default=0
            )
        return self._makespan

    @property
    def num_tasks(self) -> int:
        return len(self._placements)

    def __contains__(self, node: Node) -> bool:
        return node in self._placements

    def nodes(self) -> Iterator[Node]:
        return iter(self._placements)

    def placements(self) -> Iterator[Placement]:
        return iter(self._placements.values())

    def placement(self, node: Node) -> Placement:
        try:
            return self._placements[node]
        except KeyError:
            raise ScheduleError(f"node {node!r} is not scheduled") from None

    def start(self, node: Node) -> int:
        """The paper's ``CB(node)``."""
        return self.placement(node).start

    def finish(self, node: Node) -> int:
        """The paper's ``CE(node)``."""
        return self.placement(node).finish

    def processor(self, node: Node) -> int:
        """The paper's ``PE(node)``."""
        return self.placement(node).pe

    def processor_map(self) -> dict[Node, int]:
        """Mapping node -> PE id for all scheduled tasks."""
        return {n: p.pe for n, p in self._placements.items()}

    def cell(self, pe: int, cs: int) -> Node | None:
        """The task occupying ``(pe, cs)``, or ``None``."""
        if not (0 <= pe < self.num_pes):
            return None
        self.probes += 1
        idx = bisect_right(self._starts[pe], cs) - 1
        if idx >= 0:
            _s, busy_until, node = self._intervals[pe][idx]
            if busy_until >= cs:
                return node
        return None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_length(self, length: int) -> None:
        """Set the schedule length; must cover the last busy step."""
        if length < self.makespan:
            raise ScheduleError(
                f"length {length} would cut busy control steps (makespan "
                f"{self.makespan})"
            )
        self._length = length

    def place(
        self,
        node: Node,
        pe: int,
        start: int,
        duration: int,
        occupancy: int | None = None,
    ) -> Placement:
        """Assign ``node`` to ``pe`` starting at ``start``.

        The task executes for ``duration`` control steps and blocks the
        processor for ``occupancy`` of them (defaults to ``duration``;
        pass 1 for pipelined PEs).  Raises
        :class:`PlacementConflictError` on cell overlap and
        :class:`ScheduleError` when the node is already placed.  The
        schedule length grows to cover the placement if needed.
        """
        if node in self._placements:
            raise ScheduleError(f"node {node!r} is already scheduled")
        if not (0 <= pe < self.num_pes):
            raise ScheduleError(f"PE {pe} outside 0..{self.num_pes - 1}")
        # inline Placement construction (hot path: every remapping trial
        # placement lands here) with the dataclass' checks, in order
        if start < 1:
            raise ScheduleError(
                f"{node!r}: control steps start at 1, got {start}"
            )
        if duration < 1:
            raise ScheduleError(
                f"{node!r}: duration must be >= 1, got {duration}"
            )
        if occupancy is None:
            occupancy = duration
        elif not (1 <= occupancy <= duration):
            raise ScheduleError(
                f"{node!r}: occupancy must be in 1..duration, got "
                f"{occupancy}"
            )
        placement = Placement.__new__(Placement)
        set_field = object.__setattr__
        set_field(placement, "node", node)
        set_field(placement, "pe", pe)
        set_field(placement, "start", start)
        set_field(placement, "duration", duration)
        set_field(placement, "occupancy", occupancy)
        busy_until = start + occupancy - 1
        starts = self._starts[pe]
        intervals = self._intervals[pe]
        pos = bisect_left(starts, start)
        # spans never overlap, so only the neighbours can conflict; the
        # reported cell is the first occupied one in the requested span
        if pos > 0:
            _s, prev_until, occupant = intervals[pos - 1]
            if prev_until >= start:
                raise PlacementConflictError(
                    f"(pe{pe + 1}, cs{start}) already holds {occupant!r}; "
                    f"cannot place {node!r}"
                )
        if pos < len(intervals):
            next_start, _e, occupant = intervals[pos]
            if next_start <= busy_until:
                raise PlacementConflictError(
                    f"(pe{pe + 1}, cs{next_start}) already holds "
                    f"{occupant!r}; cannot place {node!r}"
                )
        starts.insert(pos, start)
        intervals.insert(pos, (start, busy_until, node))
        self._placements[node] = placement
        self._busy[pe] += occupancy
        finish = start + duration - 1
        if finish > self._length:
            self._length = finish
        if self._makespan is not None and finish > self._makespan:
            self._makespan = finish
        return placement

    def remove(self, node: Node) -> Placement:
        """Unschedule ``node`` and return its former placement.

        The schedule length is left unchanged (callers renumber/trim
        explicitly).
        """
        placement = self.placement(node)
        pe = placement.pe
        pos = bisect_left(self._starts[pe], placement.start)
        del self._starts[pe][pos]
        del self._intervals[pe][pos]
        del self._placements[node]
        self._busy[pe] -= placement.occupancy
        if self._makespan is not None and placement.finish >= self._makespan:
            self._makespan = None
        return placement

    def shift_all(self, delta: int) -> None:
        """Renumber every placement by ``delta`` control steps.

        Used by the rotation phase (the former row 2 becomes row 1).
        The length is adjusted by the same delta (floored at the new
        makespan).  The index is renumbered in place; an illegal shift
        (some start would drop below control step 1) raises before any
        mutation, leaving the table intact.
        """
        if not self._placements:
            if delta:
                self._length = max(0, self._length + delta)
            return
        if not delta:
            return
        self.shifts += 1
        # raises ScheduleError before any mutation if a start drops < 1;
        # clones are built inline (this runs for every placement on
        # every rotation) with the same check/message as Placement.shifted
        new_placement = Placement.__new__
        set_field = object.__setattr__
        moved: dict[Node, Placement] = {}
        for n, p in self._placements.items():
            start = p.start + delta
            if start < 1:
                raise ScheduleError(
                    f"{p.node!r}: control steps start at 1, got {start}"
                )
            clone = new_placement(Placement)
            set_field(clone, "node", p.node)
            set_field(clone, "pe", p.pe)
            set_field(clone, "start", start)
            set_field(clone, "duration", p.duration)
            set_field(clone, "occupancy", p.occupancy)
            moved[n] = clone
        self._placements = moved
        for pe in range(self.num_pes):
            self._starts[pe] = [s + delta for s in self._starts[pe]]
            self._intervals[pe] = [
                (s + delta, e + delta, n) for s, e, n in self._intervals[pe]
            ]
        if self._makespan is not None:
            self._makespan += delta
        self._length = max(0, self._length + delta)
        if self._length < self.makespan:
            self._length = self.makespan

    def trim(self) -> None:
        """Shrink the length to the last busy control step."""
        self._length = self.makespan

    # ------------------------------------------------------------------
    # queries used by the schedulers
    # ------------------------------------------------------------------
    def is_free(self, pe: int, start: int, duration: int) -> bool:
        """True when ``(pe, start..start+duration-1)`` has no occupant.

        Control steps beyond the current length count as free (placing
        there extends the table).
        """
        if start < 1:
            return False
        if not (0 <= pe < self.num_pes):
            return True
        self.probes += 1
        idx = bisect_right(self._starts[pe], start + duration - 1) - 1
        return idx < 0 or self._intervals[pe][idx][1] < start

    def earliest_slot(
        self, pe: int, not_before: int, duration: int, horizon: int | None = None
    ) -> int | None:
        """First control step ``>= not_before`` where ``duration``
        consecutive cells on ``pe`` are free and the task would end by
        ``horizon`` (inclusive).  ``None`` when no such slot exists.

        ``horizon=None`` means unbounded: a slot always exists at the
        first gap past the last occupied step.
        """
        cs = not_before if not_before > 1 else 1
        if horizon is not None:
            limit = horizon
        else:
            limit = (self._length if self._length > cs else cs) + duration
        if not (0 <= pe < self.num_pes):
            return cs if cs + duration - 1 <= limit else None
        self.probes += 1
        starts = self._starts[pe]
        intervals = self._intervals[pe]
        idx = bisect_right(starts, cs) - 1
        if idx >= 0 and intervals[idx][1] >= cs:
            cs = intervals[idx][1] + 1
        idx += 1
        count = len(intervals)
        while True:
            if cs + duration - 1 > limit:
                return None
            if idx >= count:
                return cs
            next_start, next_until, _node = intervals[idx]
            if cs + duration - 1 < next_start:
                return cs
            cs = next_until + 1
            idx += 1

    def free_slots(
        self, pe: int, not_before: int, duration: int, horizon: int
    ) -> Iterator[int]:
        """Yield every start ``cs >= not_before`` where ``duration``
        consecutive cells on ``pe`` are free and the span ends by
        ``horizon`` — ascending, exactly the sequence repeated
        :meth:`earliest_slot` queries (each resuming at the previous
        result + 1) would produce, but walking the interval index once.
        """
        cs = not_before if not_before > 1 else 1
        last = horizon - duration + 1  # latest admissible start
        if not (0 <= pe < self.num_pes):
            while cs <= last:
                yield cs
                cs += 1
            return
        self.probes += 1
        starts = self._starts[pe]
        intervals = self._intervals[pe]
        idx = bisect_right(starts, cs) - 1
        if idx >= 0 and intervals[idx][1] >= cs:
            cs = intervals[idx][1] + 1
        idx += 1
        count = len(intervals)
        while cs <= last:
            if idx >= count:
                yield cs
                cs += 1
                continue
            next_start, next_until, _node = intervals[idx]
            if cs + duration - 1 < next_start:
                yield cs
                cs += 1
                continue
            cs = next_until + 1
            idx += 1

    def free_gaps(
        self, pe: int, not_before: int, duration: int, horizon: int
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(first, last)`` start ranges of the maximal free gaps
        on ``pe``: every start in ``first..last`` fits ``duration``
        consecutive free cells ending by ``horizon``, and ``first - 1``
        does not (it is occupied, or before ``not_before``).

        This is the gap skip-list view of the interval index: the
        remapping slot search uses it to evaluate one candidate per gap
        instead of walking every start :meth:`free_slots` would yield —
        on tables with thousands of occupied intervals the scan cost
        drops from O(free cells) to O(gaps).  Concatenating the ranges
        reproduces :meth:`free_slots` exactly.
        """
        cs = not_before if not_before > 1 else 1
        last = horizon - duration + 1  # latest admissible start
        if not (0 <= pe < self.num_pes):
            if cs <= last:
                yield cs, last
            return
        self.probes += 1
        starts = self._starts[pe]
        intervals = self._intervals[pe]
        idx = bisect_right(starts, cs) - 1
        if idx >= 0 and intervals[idx][1] >= cs:
            cs = intervals[idx][1] + 1
        idx += 1
        count = len(intervals)
        while cs <= last:
            if idx >= count:
                yield cs, last
                return
            next_start, next_until, _node = intervals[idx]
            gap_last = next_start - duration  # last start fitting the gap
            if gap_last > last:
                gap_last = last
            if cs <= gap_last:
                yield cs, gap_last
            cs = next_until + 1
            idx += 1

    def first_row(self) -> list[Node]:
        """Tasks starting at control step 1, by PE order (the set the
        rotation phase deallocates)."""
        out: list[Node] = []
        for pe in range(self.num_pes):
            intervals = self._intervals[pe]
            if intervals and intervals[0][0] == 1:
                out.append(intervals[0][2])
        return out

    def row(self, cs: int) -> list[tuple[int, Node]]:
        """Occupied cells of control step ``cs`` as ``(pe, node)``."""
        out: list[tuple[int, Node]] = []
        for pe in range(self.num_pes):
            node = self.cell(pe, cs)
            if node is not None:
                out.append((pe, node))
        return out

    def pe_tasks(self, pe: int) -> list[Placement]:
        """All placements on ``pe`` in start order."""
        if not (0 <= pe < self.num_pes):
            return []
        placements = self._placements
        return [placements[node] for _s, _e, node in self._intervals[pe]]

    def busy_cells(self, pe: int) -> int:
        """Number of occupied control steps on ``pe``."""
        if not (0 <= pe < self.num_pes):
            return 0
        return self._busy[pe]

    def stats(self) -> dict:
        """Plain-data view of the instrumentation tallies."""
        return {"probes": self.probes, "shifts": self.shifts}

    def publish_stats(self) -> None:
        """Push the tallies into the metrics registry (no-op while
        observability is off).  Publish exactly once per run — counter
        deltas across repeated publishes double-count."""
        from repro.obs import metrics

        metrics.inc("schedule.table.probes", self.probes)
        metrics.inc("schedule.table.shifts", self.shifts)

    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "ScheduleTable":
        clone = ScheduleTable(
            self.num_pes, self._length, name if name is not None else self.name
        )
        clone._placements = dict(self._placements)
        clone._intervals = [list(spans) for spans in self._intervals]
        clone._starts = [list(starts) for starts in self._starts]
        clone._busy = list(self._busy)
        clone._makespan = self._makespan
        return clone

    def same_placements(self, other: "ScheduleTable") -> bool:
        """True when both tables place every task identically."""
        return (
            self.num_pes == other.num_pes
            and self._length == other._length
            and self._placements == other._placements
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScheduleTable(name={self.name!r}, num_pes={self.num_pes}, "
            f"length={self._length}, tasks={len(self._placements)})"
        )
