"""Static schedule tables (control step x processor grids).

A :class:`ScheduleTable` is the paper's "schedule table": rows are
control steps ``1..length`` and columns are processors.  A task ``v``
occupies processor ``PE(v)`` for the ``t(v)`` consecutive control steps
``CB(v) .. CE(v)`` (Definitions 3.1-3.3).  The table is executed
cyclically with initiation interval ``length``.

The table stores explicit :class:`Placement` records plus a cell index
for O(1) occupancy checks; ``length`` may exceed the last busy control
step (the paper pads with empty control steps when the projected
schedule length demands it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import PlacementConflictError, ScheduleError
from repro.graph.csdfg import Node

__all__ = ["Placement", "ScheduleTable"]


@dataclass(frozen=True)
class Placement:
    """One task's slot: processor, start, latency and resource span.

    ``duration`` is the task's execution latency ``t(v)`` (the paper's
    ``CE - CB + 1``).  ``occupancy`` is how many control steps the task
    *blocks its processor* for: equal to ``duration`` on ordinary PEs,
    1 on pipelined PEs (the paper's §2 "pipeline design" processors,
    which may issue a new task before the previous one completes).
    """

    node: Node
    pe: int
    start: int
    duration: int
    occupancy: int | None = None

    def __post_init__(self) -> None:
        if self.start < 1:
            raise ScheduleError(
                f"{self.node!r}: control steps start at 1, got {self.start}"
            )
        if self.duration < 1:
            raise ScheduleError(
                f"{self.node!r}: duration must be >= 1, got {self.duration}"
            )
        if self.pe < 0:
            raise ScheduleError(f"{self.node!r}: negative PE {self.pe}")
        if self.occupancy is None:
            object.__setattr__(self, "occupancy", self.duration)
        elif not (1 <= self.occupancy <= self.duration):
            raise ScheduleError(
                f"{self.node!r}: occupancy must be in 1..duration, got "
                f"{self.occupancy}"
            )

    @property
    def finish(self) -> int:
        """Last execution control step (the paper's ``CE``)."""
        return self.start + self.duration - 1

    @property
    def busy_until(self) -> int:
        """Last control step the processor is blocked."""
        return self.start + self.occupancy - 1

    def shifted(self, delta: int) -> "Placement":
        """Copy with the start moved by ``delta`` control steps."""
        return Placement(
            self.node, self.pe, self.start + delta, self.duration, self.occupancy
        )


class ScheduleTable:
    """A static cyclic schedule over ``num_pes`` processors.

    Parameters
    ----------
    num_pes:
        Number of processor columns.
    length:
        Initial schedule length (grows automatically as tasks are
        placed beyond it; may be padded explicitly via
        :meth:`set_length`).
    """

    def __init__(self, num_pes: int, length: int = 0, name: str = "schedule"):
        if num_pes < 1:
            raise ScheduleError(f"need at least one PE, got {num_pes}")
        if length < 0:
            raise ScheduleError(f"length must be >= 0, got {length}")
        self.num_pes = num_pes
        self.name = name
        self._length = length
        self._placements: dict[Node, Placement] = {}
        self._cells: dict[tuple[int, int], Node] = {}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Schedule length ``L`` (the initiation interval)."""
        return self._length

    @property
    def makespan(self) -> int:
        """Last busy control step (0 when empty); ``<= length``."""
        if not self._placements:
            return 0
        return max(p.finish for p in self._placements.values())

    @property
    def num_tasks(self) -> int:
        return len(self._placements)

    def __contains__(self, node: Node) -> bool:
        return node in self._placements

    def nodes(self) -> Iterator[Node]:
        return iter(self._placements)

    def placements(self) -> Iterator[Placement]:
        return iter(self._placements.values())

    def placement(self, node: Node) -> Placement:
        try:
            return self._placements[node]
        except KeyError:
            raise ScheduleError(f"node {node!r} is not scheduled") from None

    def start(self, node: Node) -> int:
        """The paper's ``CB(node)``."""
        return self.placement(node).start

    def finish(self, node: Node) -> int:
        """The paper's ``CE(node)``."""
        return self.placement(node).finish

    def processor(self, node: Node) -> int:
        """The paper's ``PE(node)``."""
        return self.placement(node).pe

    def processor_map(self) -> dict[Node, int]:
        """Mapping node -> PE id for all scheduled tasks."""
        return {n: p.pe for n, p in self._placements.items()}

    def cell(self, pe: int, cs: int) -> Node | None:
        """The task occupying ``(pe, cs)``, or ``None``."""
        return self._cells.get((pe, cs))

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_length(self, length: int) -> None:
        """Set the schedule length; must cover the last busy step."""
        if length < self.makespan:
            raise ScheduleError(
                f"length {length} would cut busy control steps (makespan "
                f"{self.makespan})"
            )
        self._length = length

    def place(
        self,
        node: Node,
        pe: int,
        start: int,
        duration: int,
        occupancy: int | None = None,
    ) -> Placement:
        """Assign ``node`` to ``pe`` starting at ``start``.

        The task executes for ``duration`` control steps and blocks the
        processor for ``occupancy`` of them (defaults to ``duration``;
        pass 1 for pipelined PEs).  Raises
        :class:`PlacementConflictError` on cell overlap and
        :class:`ScheduleError` when the node is already placed.  The
        schedule length grows to cover the placement if needed.
        """
        if node in self._placements:
            raise ScheduleError(f"node {node!r} is already scheduled")
        if not (0 <= pe < self.num_pes):
            raise ScheduleError(f"PE {pe} outside 0..{self.num_pes - 1}")
        placement = Placement(node, pe, start, duration, occupancy)
        for cs in range(start, placement.busy_until + 1):
            occupant = self._cells.get((pe, cs))
            if occupant is not None:
                raise PlacementConflictError(
                    f"(pe{pe + 1}, cs{cs}) already holds {occupant!r}; "
                    f"cannot place {node!r}"
                )
        for cs in range(start, placement.busy_until + 1):
            self._cells[(pe, cs)] = node
        self._placements[node] = placement
        if placement.finish > self._length:
            self._length = placement.finish
        return placement

    def remove(self, node: Node) -> Placement:
        """Unschedule ``node`` and return its former placement.

        The schedule length is left unchanged (callers renumber/trim
        explicitly).
        """
        placement = self.placement(node)
        for cs in range(placement.start, placement.busy_until + 1):
            del self._cells[(placement.pe, cs)]
        del self._placements[node]
        return placement

    def shift_all(self, delta: int) -> None:
        """Renumber every placement by ``delta`` control steps.

        Used by the rotation phase (the former row 2 becomes row 1).
        The length is adjusted by the same delta (floored at the new
        makespan).
        """
        if not self._placements and delta:
            self._length = max(0, self._length + delta)
            return
        moved = [p.shifted(delta) for p in self._placements.values()]
        self._placements = {}
        self._cells = {}
        self._length = max(0, self._length + delta)
        for p in moved:
            self.place(p.node, p.pe, p.start, p.duration, p.occupancy)

    def trim(self) -> None:
        """Shrink the length to the last busy control step."""
        self._length = self.makespan

    # ------------------------------------------------------------------
    # queries used by the schedulers
    # ------------------------------------------------------------------
    def is_free(self, pe: int, start: int, duration: int) -> bool:
        """True when ``(pe, start..start+duration-1)`` has no occupant.

        Control steps beyond the current length count as free (placing
        there extends the table).
        """
        if start < 1:
            return False
        return all(
            (pe, cs) not in self._cells for cs in range(start, start + duration)
        )

    def earliest_slot(
        self, pe: int, not_before: int, duration: int, horizon: int | None = None
    ) -> int | None:
        """First control step ``>= not_before`` where ``duration``
        consecutive cells on ``pe`` are free and the task would end by
        ``horizon`` (inclusive).  ``None`` when no such slot exists.

        ``horizon=None`` means unbounded: a slot always exists at the
        first gap past the last occupied step.
        """
        cs = max(1, not_before)
        limit = horizon if horizon is not None else max(self._length, cs) + duration
        while cs + duration - 1 <= limit:
            conflict = None
            for probe in range(cs, cs + duration):
                if (pe, probe) in self._cells:
                    conflict = probe
            if conflict is None:
                return cs
            cs = conflict + 1
        return None

    def first_row(self) -> list[Node]:
        """Tasks starting at control step 1, by PE order (the set the
        rotation phase deallocates)."""
        starters = [p for p in self._placements.values() if p.start == 1]
        starters.sort(key=lambda p: p.pe)
        return [p.node for p in starters]

    def row(self, cs: int) -> list[tuple[int, Node]]:
        """Occupied cells of control step ``cs`` as ``(pe, node)``."""
        return sorted(
            ((pe, node) for (pe, c), node in self._cells.items() if c == cs),
        )

    def pe_tasks(self, pe: int) -> list[Placement]:
        """All placements on ``pe`` in start order."""
        return sorted(
            (p for p in self._placements.values() if p.pe == pe),
            key=lambda p: p.start,
        )

    def busy_cells(self, pe: int) -> int:
        """Number of occupied control steps on ``pe``."""
        return sum(1 for (p, _cs) in self._cells if p == pe)

    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "ScheduleTable":
        clone = ScheduleTable(
            self.num_pes, self._length, name if name is not None else self.name
        )
        clone._placements = dict(self._placements)
        clone._cells = dict(self._cells)
        return clone

    def same_placements(self, other: "ScheduleTable") -> bool:
        """True when both tables place every task identically."""
        return (
            self.num_pes == other.num_pes
            and self._length == other._length
            and self._placements == other._placements
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScheduleTable(name={self.name!r}, num_pes={self.num_pes}, "
            f"length={self._length}, tasks={len(self._placements)})"
        )
