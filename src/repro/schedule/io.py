"""Schedule table serialization (JSON).

Lets toolchains persist a scheduling result — e.g. feed the table to a
code generator or compare runs — and reload it bit-exactly.  The
payload records the table shape plus every placement (including the
pipelined-PE occupancy).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ScheduleError
from repro.schedule.table import ScheduleTable

__all__ = [
    "schedule_to_json",
    "schedule_from_json",
    "save_schedule",
    "load_schedule",
]

_FORMAT_VERSION = 1


def schedule_to_json(schedule: ScheduleTable) -> dict[str, Any]:
    """Canonical JSON-serializable form of a schedule table."""
    return {
        "format": "repro-schedule",
        "version": _FORMAT_VERSION,
        "name": schedule.name,
        "num_pes": schedule.num_pes,
        "length": schedule.length,
        "placements": [
            {
                "node": str(p.node),
                "pe": p.pe,
                "start": p.start,
                "duration": p.duration,
                "occupancy": p.occupancy,
            }
            for p in sorted(
                schedule.placements(), key=lambda p: (p.pe, p.start)
            )
        ],
    }


def schedule_from_json(payload: dict[str, Any]) -> ScheduleTable:
    """Rebuild a :class:`ScheduleTable` from :func:`schedule_to_json`.

    Node ids are restored as strings (the interchange label type).
    """
    if payload.get("format") != "repro-schedule":
        raise ScheduleError("not a repro-schedule JSON payload")
    if payload.get("version") != _FORMAT_VERSION:
        raise ScheduleError(
            f"unsupported schedule format version {payload.get('version')!r}"
        )
    table = ScheduleTable(
        payload["num_pes"], name=payload.get("name", "schedule")
    )
    for entry in payload["placements"]:
        table.place(
            entry["node"],
            entry["pe"],
            entry["start"],
            entry["duration"],
            entry.get("occupancy"),
        )
    table.set_length(max(payload.get("length", 0), table.makespan))
    return table


def save_schedule(schedule: ScheduleTable, path: str | Path) -> None:
    """Write ``schedule`` to ``path`` as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(schedule_to_json(schedule), indent=2) + "\n"
    )


def load_schedule(path: str | Path) -> ScheduleTable:
    """Load a schedule written by :func:`save_schedule`."""
    return schedule_from_json(json.loads(Path(path).read_text()))
