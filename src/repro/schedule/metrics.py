"""Quantitative schedule metrics used by the evaluation harness.

All metrics are per steady-state iteration of the static cyclic
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.topology import Architecture
from repro.graph.csdfg import CSDFG
from repro.schedule.table import ScheduleTable

__all__ = [
    "ScheduleMetrics",
    "compute_metrics",
    "utilization",
    "speedup",
    "total_comm_cost",
    "remote_edge_count",
]


def utilization(schedule: ScheduleTable) -> float:
    """Fraction of (PE, control step) cells that are busy."""
    if schedule.length == 0 or schedule.num_pes == 0:
        return 0.0
    busy = sum(p.duration for p in schedule.placements())
    return busy / (schedule.length * schedule.num_pes)


def speedup(graph: CSDFG, schedule: ScheduleTable) -> float:
    """Sequential work divided by the schedule length.

    The sequential baseline is a single PE with no communication, i.e.
    ``sum t(v)``; an ideal ``p``-PE schedule approaches ``p``.
    """
    if schedule.length == 0:
        return 0.0
    return graph.total_work() / schedule.length


def total_comm_cost(
    graph: CSDFG, arch: Architecture, schedule: ScheduleTable
) -> int:
    """Sum of ``M(PE(u), PE(v); c(e))`` over all cross-PE edges."""
    total = 0
    for edge in graph.edges():
        pu = schedule.processor(edge.src)
        pv = schedule.processor(edge.dst)
        total += arch.comm_cost(pu, pv, edge.volume)
    return total


def remote_edge_count(graph: CSDFG, schedule: ScheduleTable) -> int:
    """How many dependence edges cross processors."""
    return sum(
        1
        for edge in graph.edges()
        if schedule.processor(edge.src) != schedule.processor(edge.dst)
    )


@dataclass(frozen=True)
class ScheduleMetrics:
    """A bundle of per-iteration schedule statistics."""

    length: int
    utilization: float
    speedup: float
    comm_cost: int
    remote_edges: int
    pes_used: int

    def as_row(self) -> dict[str, float | int]:
        """Flat dict form for tabular reports."""
        return {
            "length": self.length,
            "utilization": round(self.utilization, 4),
            "speedup": round(self.speedup, 4),
            "comm_cost": self.comm_cost,
            "remote_edges": self.remote_edges,
            "pes_used": self.pes_used,
        }


def compute_metrics(
    graph: CSDFG, arch: Architecture, schedule: ScheduleTable
) -> ScheduleMetrics:
    """Compute the full :class:`ScheduleMetrics` bundle."""
    pes_used = sum(
        1 for pe in range(schedule.num_pes) if schedule.pe_tasks(pe)
    )
    return ScheduleMetrics(
        length=schedule.length,
        utilization=utilization(schedule),
        speedup=speedup(graph, schedule),
        comm_cost=total_comm_cost(graph, arch, schedule),
        remote_edges=remote_edge_count(graph, schedule),
        pes_used=pes_used,
    )
