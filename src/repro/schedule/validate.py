"""The static cyclic schedule validator — the library's ground truth.

Every scheduler output is checked against a single legality criterion
derived from the paper's execution model (§2, §3):

* **Completeness** — every graph node is placed exactly once with the
  right duration.
* **Resource exclusivity** — a processor executes at most one task per
  control step (recomputed from placements, independent of the table's
  own cell index).
* **Precedence + communication** — for every edge ``u -> v`` with delay
  ``d`` in a schedule of length ``L``::

      CB(v) + d * L  >=  CE(u) + M(PE(u), PE(v); c(e)) + 1

  (node ``v`` of iteration ``j`` starts only after node ``u`` of
  iteration ``j - d`` has finished and its data has crossed the
  interconnect; ``M = 0`` on the same processor).

The same inequality, solved for ``L``, yields the **projected schedule
length** of the paper's Lemma 4.3 (see :mod:`repro.core.psl`), so the
optimiser and the validator can never disagree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.arch.topology import Architecture
from repro.errors import ScheduleValidationError
from repro.graph.csdfg import CSDFG
from repro.obs import metrics, span
from repro.schedule.table import ScheduleTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.cache import CommCostCache

__all__ = [
    "collect_violations",
    "validate_schedule",
    "is_valid_schedule",
    "minimum_feasible_length",
]


def collect_violations(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    *,
    pipelined_pes: bool = False,
    comm: "CommCostCache | None" = None,
) -> list[str]:
    """All legality violations of ``schedule`` (empty list == legal).

    With ``pipelined_pes=True`` a processor only needs to be free at a
    task's *issue* control step (the paper's §2 pipelined PEs); the
    precedence/communication rules are unchanged (latency is still
    ``t(v)``).  ``comm`` supplies precomputed communication costs: a
    plain cache defers any miss back to ``arch.comm_cost``, so verdicts
    are identical with or without it, while a *contended* cache (one
    built with a contention model and occupancy snapshot) certifies the
    schedule against the surcharged prices instead.
    """
    with span("validate", nodes=graph.num_nodes) as validate_span:
        violations = _collect_violations(
            graph, arch, schedule, pipelined_pes=pipelined_pes, comm=comm
        )
        metrics.inc("validate.calls")
        metrics.inc("validate.violations", len(violations))
        validate_span.add(violations=len(violations))
    return violations


def _collect_violations(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    *,
    pipelined_pes: bool = False,
    comm: "CommCostCache | None" = None,
) -> list[str]:
    cost = comm.cost if comm is not None else arch.comm_cost
    violations: list[str] = []

    # completeness ------------------------------------------------------
    scheduled = set(schedule.nodes())
    expected = set(graph.nodes())
    for missing in sorted(map(str, expected - scheduled)):
        violations.append(f"node {missing} is not scheduled")
    for extra in sorted(map(str, scheduled - expected)):
        violations.append(f"scheduled node {extra} is not in the graph")

    placed = expected & scheduled
    routable = set()  # placed on an in-range, alive PE: safe to price
    for node in placed:
        p = schedule.placement(node)
        if p.pe >= arch.num_pes:
            violations.append(
                f"node {node!r}: PE {p.pe} outside architecture "
                f"{arch.name!r} ({arch.num_pes} PEs)"
            )
            continue
        if not arch.is_alive(p.pe):
            violations.append(
                f"node {node!r}: placed on failed pe{p.pe + 1} of "
                f"{arch.name!r}"
            )
            continue
        routable.add(node)
        expected_duration = arch.execution_time(p.pe, graph.time(node))
        if p.duration != expected_duration:
            violations.append(
                f"node {node!r}: duration {p.duration} != "
                f"{expected_duration} (t = {graph.time(node)} on pe{p.pe + 1} "
                f"of {arch.name!r})"
            )
        if p.finish > schedule.length:
            violations.append(
                f"node {node!r}: finishes at cs {p.finish} on pe{p.pe + 1} "
                f"beyond length {schedule.length}"
            )

    # resource exclusivity (recomputed, not trusting the cell index) ----
    occupancy: dict[tuple[int, int], object] = {}
    for node in sorted(placed, key=str):
        p = schedule.placement(node)
        span_end = p.start if pipelined_pes else p.finish
        for cs in range(p.start, span_end + 1):
            other = occupancy.get((p.pe, cs))
            if other is not None:
                violations.append(
                    f"resource conflict on pe{p.pe + 1} cs{cs}: "
                    f"{other!r} vs {node!r}"
                )
            else:
                occupancy[(p.pe, cs)] = node

    # precedence + communication ----------------------------------------
    # edges touching a node on an out-of-range or failed PE are skipped:
    # that placement is already reported above and cannot be priced
    L = schedule.length
    for edge in graph.edges():
        if edge.src not in routable or edge.dst not in routable:
            continue
        pu = schedule.placement(edge.src)
        pv = schedule.placement(edge.dst)
        m = cost(pu.pe, pv.pe, edge.volume)
        lhs = pv.start + edge.delay * L
        rhs = pu.finish + m + 1
        if lhs < rhs:
            violations.append(
                f"dependence edge ({edge.src!r}, {edge.dst!r}) "
                f"(d={edge.delay}, c={edge.volume}) "
                f"pe{pu.pe + 1}->pe{pv.pe + 1}: "
                f"CB({edge.dst!r})={pv.start} + "
                f"{edge.delay}*{L} = {lhs} < CE({edge.src!r})={pu.finish} + "
                f"M={m} + 1 = {rhs}"
            )
    return violations


def validate_schedule(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    *,
    pipelined_pes: bool = False,
    comm: "CommCostCache | None" = None,
) -> None:
    """Raise :class:`ScheduleValidationError` when ``schedule`` is
    illegal for ``graph`` on ``arch``.

    ``comm`` prices the precedence rule; pass a contended cache to
    certify legality under contention-aware prices."""
    violations = collect_violations(
        graph, arch, schedule, pipelined_pes=pipelined_pes, comm=comm
    )
    if violations:
        raise ScheduleValidationError(violations)


def is_valid_schedule(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    *,
    pipelined_pes: bool = False,
    comm: "CommCostCache | None" = None,
) -> bool:
    """Boolean form of :func:`validate_schedule`."""
    return not collect_violations(
        graph, arch, schedule, pipelined_pes=pipelined_pes, comm=comm
    )


def minimum_feasible_length(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    *,
    pipelined_pes: bool = False,
    comm: "CommCostCache | None" = None,
) -> int | None:
    """Smallest length making these *placements* legal, or ``None``.

    Keeps every ``(CB, PE)`` fixed and solves the precedence inequality
    for ``L``: zero-delay edges constrain nothing through ``L`` (they
    are feasible or not as placed), while each delayed edge demands
    ``L >= ceil((CE(u) + M + 1 - CB(v)) / d)``.  Returns ``None`` when
    some zero-delay edge (or completeness/resource problem) makes the
    placements unsalvageable at any length.
    """
    # reuse the structural checks at the current length, masking only
    # the L-dependent precedence violations and the length-overrun check
    cost = comm.cost if comm is not None else arch.comm_cost
    probe = schedule.copy()
    probe.set_length(max(probe.length, probe.makespan))
    required = probe.makespan
    for edge in graph.edges():
        if edge.src not in probe or edge.dst not in probe:
            return None
        pu = probe.placement(edge.src)
        pv = probe.placement(edge.dst)
        for p in (pu, pv):
            if p.pe >= arch.num_pes or not arch.is_alive(p.pe):
                return None  # unroutable placement: no length can help
        slack_needed = pu.finish + cost(pu.pe, pv.pe, edge.volume) + 1 - pv.start
        if edge.delay == 0:
            if slack_needed > 0:
                return None
        else:
            need = -(-slack_needed // edge.delay)  # ceil division
            if need > required:
                required = need
    # the internal checker, not collect_violations: the probe check is
    # an implementation detail of PSL, not a "validate" phase of its
    # caller, so it must not emit a validate span inside remap spans
    probe.set_length(max(required, probe.makespan, 1))
    if _collect_violations(
        graph, arch, probe, pipelined_pes=pipelined_pes, comm=comm
    ):
        return None
    return probe.length
