"""ASCII renderings of schedule tables, matching the paper's layout.

The paper prints schedules as ``cs`` rows against ``pe1..peN`` columns,
repeating a multi-cycle task's name in each of its control steps (e.g.
``B B`` for a two-cycle task).  :func:`render_table` reproduces that
layout; :func:`render_gantt` gives the transposed per-processor view.
"""

from __future__ import annotations

from repro.schedule.table import ScheduleTable

__all__ = ["render_table", "render_gantt", "render_summary"]


def render_table(schedule: ScheduleTable, title: str | None = None) -> str:
    """Paper-style table: one row per control step, one column per PE."""
    width = max(
        [2]
        + [len(str(node)) for node in schedule.nodes()]
        + [len(f"pe{schedule.num_pes}")]
    )
    length = max(schedule.length, 1)
    cs_width = max(2, len(str(length)))

    def fmt(text: str) -> str:
        return text.ljust(width)

    lines: list[str] = []
    if title:
        lines.append(title)
    header = "cs".ljust(cs_width) + " | " + " ".join(
        fmt(f"pe{p + 1}") for p in range(schedule.num_pes)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cs in range(1, length + 1):
        cells = []
        for pe in range(schedule.num_pes):
            node = schedule.cell(pe, cs)
            cells.append(fmt(str(node) if node is not None else "."))
        lines.append(str(cs).ljust(cs_width) + " | " + " ".join(cells))
    return "\n".join(lines)


def render_gantt(schedule: ScheduleTable, title: str | None = None) -> str:
    """Transposed view: one row per PE, control steps left to right."""
    width = max(
        [2] + [len(str(node)) for node in schedule.nodes()]
    )
    length = max(schedule.length, 1)

    def fmt(text: str) -> str:
        return text.ljust(width)

    lines: list[str] = []
    if title:
        lines.append(title)
    header = "     " + " ".join(fmt(str(cs)) for cs in range(1, length + 1))
    lines.append(header)
    lines.append("-" * len(header))
    for pe in range(schedule.num_pes):
        cells = []
        for cs in range(1, length + 1):
            node = schedule.cell(pe, cs)
            cells.append(fmt(str(node) if node is not None else "."))
        lines.append(f"pe{pe + 1:<2} " + " ".join(cells))
    return "\n".join(lines)


def render_summary(schedule: ScheduleTable) -> str:
    """One-line summary: length, tasks, busy PEs."""
    busy = sum(1 for pe in range(schedule.num_pes) if schedule.pe_tasks(pe))
    return (
        f"{schedule.name}: length={schedule.length} tasks={schedule.num_tasks} "
        f"PEs used={busy}/{schedule.num_pes}"
    )
