"""Exception hierarchy shared across the :mod:`repro` packages.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the package
layout: graph construction/validation, architecture modelling, schedule
manipulation, and scheduling-algorithm failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphValidationError",
    "RetimingError",
    "IllegalRetimingError",
    "ArchitectureError",
    "UnknownProcessorError",
    "DeadProcessorError",
    "DisconnectedTopologyError",
    "ScheduleError",
    "PlacementConflictError",
    "ScheduleValidationError",
    "SchedulingError",
    "InfeasibleScheduleError",
    "StallDetectedError",
    "CheckpointError",
    "WorkloadError",
    "QAError",
    "AnalysisError",
    "WorkerCrashedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """Malformed CSDFG construction (duplicate edges, unknown nodes, ...)."""


class GraphValidationError(GraphError):
    """A CSDFG violates a structural invariant (e.g. a zero-delay cycle).

    Attributes
    ----------
    issues:
        Human-readable description of each violated invariant.
    """

    def __init__(self, issues: list[str]):
        self.issues = list(issues)
        super().__init__("; ".join(self.issues))


class RetimingError(ReproError):
    """Problems applying or solving for a retiming function."""


class IllegalRetimingError(RetimingError):
    """A retiming would drive some edge delay negative."""


class ArchitectureError(ReproError):
    """Malformed architecture description (disconnected topology, ...)."""


class UnknownProcessorError(ArchitectureError):
    """A processor id outside the architecture's processor set."""


class DeadProcessorError(ArchitectureError):
    """A failed processor (or a link endpoint) was addressed on a
    degraded topology."""


class DisconnectedTopologyError(ArchitectureError):
    """Removing failed PEs/links split the surviving network: no
    schedule spanning the remaining processors can route all traffic.

    Attributes
    ----------
    components:
        The surviving PE ids grouped by connected component.
    """

    def __init__(self, message: str, components: list[list[int]] | None = None):
        self.components = [list(c) for c in components] if components else []
        super().__init__(message)


class ScheduleError(ReproError):
    """Malformed schedule-table manipulation."""


class PlacementConflictError(ScheduleError):
    """Two tasks would occupy the same (processor, control step) cell."""


class ScheduleValidationError(ScheduleError):
    """A schedule violates precedence, communication or resource rules.

    Attributes
    ----------
    violations:
        One entry per violated constraint.
    """

    def __init__(self, violations: list[str]):
        self.violations = list(violations)
        super().__init__("; ".join(self.violations))


class SchedulingError(ReproError):
    """A scheduling algorithm could not produce a schedule."""


class InfeasibleScheduleError(SchedulingError):
    """No legal placement exists under the requested constraints."""


class StallDetectedError(SchedulingError):
    """The fault-injecting simulator's progress watchdog fired: no
    forward progress within the configured window."""


class CheckpointError(SchedulingError):
    """A compaction checkpoint does not match the run being resumed
    (wrong graph/architecture/config, or a corrupted trace)."""


class WorkloadError(ReproError):
    """A benchmark workload was requested with invalid parameters."""


class QAError(ReproError):
    """A fuzzing/shrinking driver was misused (unknown property name,
    malformed reproducer case, invalid sampling profile)."""


class WorkerCrashedError(ReproError):
    """A :func:`repro.perf.run_parallel` worker process died abruptly
    (killed, OOMed, or crashed the interpreter) instead of raising a
    python exception.

    Attributes
    ----------
    completed:
        The in-item-order prefix of results that finished before the
        crash — everything the run produced that is still trustworthy.
    """

    def __init__(self, message: str, completed: list | None = None):
        self.completed = list(completed) if completed is not None else []
        super().__init__(message)


class AnalysisError(ReproError):
    """A static-analysis driver was misused (unknown rule code, an
    unreadable input file, an unsupported output format).  Findings
    about the *analyzed inputs* are never raised — they are returned as
    :class:`repro.analyze.Diagnostic` values."""
