"""Benchmark workloads: the paper's examples, DSP filters, random
suites."""

from repro.workloads.dsp import (
    all_pole_iir,
    differential_equation_solver,
    fir_filter,
)
from repro.workloads.filters import (
    biquad_cascade,
    elliptic_wave_filter,
    lattice_filter,
)
from repro.workloads.kernels import correlator, fft_stage, volterra, wavefront
from repro.workloads.paper_examples import (
    FIGURE1_NODE_TIMES,
    FIGURE7_NODE_TIMES,
    figure1_csdfg,
    figure1_mesh,
    figure7_csdfg,
)
from repro.workloads.random_suite import SuiteSpec, layered_suite, random_suite
from repro.workloads.registry import WORKLOADS, make_workload, workload_names

__all__ = [
    "FIGURE1_NODE_TIMES",
    "FIGURE7_NODE_TIMES",
    "SuiteSpec",
    "WORKLOADS",
    "all_pole_iir",
    "biquad_cascade",
    "correlator",
    "differential_equation_solver",
    "elliptic_wave_filter",
    "figure1_csdfg",
    "figure1_mesh",
    "fft_stage",
    "figure7_csdfg",
    "fir_filter",
    "lattice_filter",
    "layered_suite",
    "make_workload",
    "random_suite",
    "volterra",
    "wavefront",
    "workload_names",
]
