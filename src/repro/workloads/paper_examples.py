"""The paper's two running examples.

* :func:`figure1_csdfg` — the 6-node CSDFG of Figure 1(b), transcribed
  *exactly* from the paper's §2 enumeration of ``V``, ``E``, ``d``,
  ``t`` and ``c``.  Scheduled on the 2x2 mesh of Figure 1(a), the
  start-up schedule is 7 control steps and cyclo-compaction reaches 5
  (Figures 2-4).
* :func:`figure7_csdfg` — the 19-node general-time CSDFG of Figure 7.
  The paper draws this graph but never enumerates its edges, delays or
  volumes, so this is a **reconstruction** (DESIGN.md §5): the layered
  structure follows the figure, execution times are the published ones
  (``t(C)=t(F)=t(J)=t(L)=t(P)=2``, rest 1), and the loop-carried edges
  are chosen so the iteration bound and the published schedule-length
  scale (start-up 12-15, compacted 5-7 on 8 PEs) are matched.
"""

from __future__ import annotations

from repro.arch.mesh import Mesh2D
from repro.graph.csdfg import CSDFG

__all__ = [
    "figure1_csdfg",
    "figure1_mesh",
    "figure7_csdfg",
    "FIGURE1_NODE_TIMES",
    "FIGURE7_NODE_TIMES",
]

#: Execution times of Figure 1(b): ``t(B) = t(E) = 2``, others 1.
FIGURE1_NODE_TIMES = {"A": 1, "B": 2, "C": 1, "D": 1, "E": 2, "F": 1}

#: Execution times of Figure 7: five two-cycle nodes, rest single-cycle.
FIGURE7_NODE_TIMES = {
    name: (2 if name in "CFJLP" else 1) for name in "ABCDEFGHIJKLMNOPQRS"
}


def figure1_csdfg() -> CSDFG:
    """The 6-node CSDFG of Figure 1(b) (exact transcription).

    ``E = {e1:(A,B), e2:(A,C), e3:(A,E), e4:(B,D), e5:(B,E), e6:(C,E),
    e7:(D,A), e8:(D,F), e9:(E,F), e10:(F,E)}`` with ``d(e7)=3``,
    ``d(e10)=1``, all other delays 0; ``c(e5)=c(e8)=2``, ``c(e7)=3``,
    all other volumes 1 (``c(e10)`` is not listed in the paper; we use
    1 like its sibling edges).
    """
    g = CSDFG("figure1")
    for name, time in FIGURE1_NODE_TIMES.items():
        g.add_node(name, time)
    g.add_edge("A", "B", 0, 1)  # e1
    g.add_edge("A", "C", 0, 1)  # e2
    g.add_edge("A", "E", 0, 1)  # e3
    g.add_edge("B", "D", 0, 1)  # e4
    g.add_edge("B", "E", 0, 2)  # e5
    g.add_edge("C", "E", 0, 1)  # e6
    g.add_edge("D", "A", 3, 3)  # e7
    g.add_edge("D", "F", 0, 2)  # e8
    g.add_edge("E", "F", 0, 1)  # e9
    g.add_edge("F", "E", 1, 1)  # e10 (volume not listed; assumed 1)
    return g


def figure1_mesh() -> Mesh2D:
    """The 2x2 mesh of Figure 1(a) (4 PEs).

    The paper numbers the PEs so that pe1/pe3 are diagonal; our
    row-major numbering is an automorphism of the same topology, which
    leaves every achievable schedule length unchanged.
    """
    return Mesh2D(2, 2)


def figure7_csdfg() -> CSDFG:
    """The 19-node general-time CSDFG of Figure 7 (reconstruction).

    Layered as drawn: A | B C | G D H I | F J L K | N O E Q | M R | P |
    S.  Forward edges follow the figure's layering; three loop-carried
    edges (``S -> A``, ``E -> C``, ``P -> G``) close the recursion.
    The feedback delays are chosen so the reconstruction reproduces the
    published schedule-length scale: start-up lengths of 13-14 on the
    five 8-PE architectures (paper: 12-15) compacting to 6-8 (paper:
    5-7), with the completely connected machine best and the linear
    array worst, as in Tables 1-10.
    """
    g = CSDFG("figure7")
    for name, time in FIGURE7_NODE_TIMES.items():
        g.add_node(name, time)

    # layer 0 -> 1
    g.add_edge("A", "B", 0, 1)
    g.add_edge("A", "C", 1, 1)
    # layer 1 -> 2
    g.add_edge("B", "G", 0, 2)
    g.add_edge("B", "D", 0, 1)
    g.add_edge("B", "H", 0, 2)
    g.add_edge("C", "H", 0, 1)
    g.add_edge("C", "I", 0, 1)
    g.add_edge("C", "D", 1, 2)
    # layer 2 -> 3
    g.add_edge("G", "F", 0, 1)
    g.add_edge("D", "J", 0, 1)
    g.add_edge("D", "K", 0, 2)
    g.add_edge("H", "L", 0, 1)
    g.add_edge("I", "K", 0, 1)
    g.add_edge("I", "L", 1, 1)
    # layer 3 -> 4
    g.add_edge("F", "N", 0, 2)
    g.add_edge("J", "O", 0, 1)
    g.add_edge("J", "E", 0, 1)
    g.add_edge("L", "E", 0, 1)
    g.add_edge("L", "Q", 0, 2)
    g.add_edge("K", "Q", 0, 1)
    # layer 4 -> 5
    g.add_edge("N", "M", 0, 1)
    g.add_edge("O", "M", 0, 2)
    g.add_edge("E", "R", 0, 1)
    g.add_edge("Q", "R", 0, 1)
    # layers 5 -> 6 -> 7
    g.add_edge("M", "P", 0, 1)
    g.add_edge("R", "P", 0, 2)
    g.add_edge("P", "S", 0, 1)
    # loop-carried feedback
    g.add_edge("S", "A", 3, 2)
    g.add_edge("E", "C", 2, 1)
    g.add_edge("P", "G", 3, 1)
    return g
