"""DSP filter benchmark graphs (paper Table 11 workloads).

The paper evaluates a 5th-order elliptic wave filter and a lattice
filter ("with a slow down factor of 3").  Neither graph is enumerated
in the paper; these are reconstructions of the classical benchmarks
from the high-level-synthesis / retiming literature (DESIGN.md §5):

* :func:`elliptic_wave_filter` — the 5th-order elliptic *wave digital*
  filter: five cascaded second-order wave-adaptor sections plus an
  input/output stage, 34 operations (26 additions, 8 multiplications),
  one delay element per section state.
* :func:`lattice_filter` — a normalised lattice filter with ``stages``
  sections; each section is two multiplications and two additions with
  a unit-delay state, matching the structure used in the rotation-
  scheduling papers.
* :func:`biquad_cascade` — direct-form-II IIR biquads in cascade.

Conventions follow the paper's general-time setting: additions take 1
control step, multiplications ``mul_time`` (default 2); data volumes
default to one word per signal sample.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.csdfg import CSDFG

__all__ = ["elliptic_wave_filter", "lattice_filter", "biquad_cascade"]


def elliptic_wave_filter(*, mul_time: int = 2, add_time: int = 1, volume: int = 1) -> CSDFG:
    """The 5th-order elliptic wave digital filter (reconstruction).

    Five cascaded sections; section ``k`` combines the running signal
    with its delayed state through an adaptor of four adders and one or
    two multipliers, then updates the state.  Totals: 26 additions and
    8 multiplications over 5 delay elements — the operation mix of the
    classical benchmark.
    """
    if mul_time < 1 or add_time < 1:
        raise WorkloadError("operation times must be >= 1")
    g = CSDFG("elliptic5")

    def add(name: str) -> str:
        return g.add_node(name, add_time)

    def mul(name: str) -> str:
        return g.add_node(name, mul_time)

    # input conditioning: two adders feeding the cascade
    add("a_in1")
    add("a_in2")
    g.add_edge("a_in1", "a_in2", 0, volume)

    prev_out = "a_in2"
    # sections 1..5: section k has adders ak1..ak4 and multiplier mk
    # (sections 2 and 4 carry a second multiplier, totalling 8 muls)
    for k in range(1, 6):
        a1, a2, a3, a4 = (f"a{k}_{i}" for i in range(1, 5))
        m1 = f"m{k}"
        for name in (a1, a2, a3, a4):
            add(name)
        mul(m1)
        # forward path: previous output + state feed the adaptor
        g.add_edge(prev_out, a1, 0, volume)
        g.add_edge(a1, m1, 0, volume)
        g.add_edge(m1, a2, 0, volume)
        g.add_edge(a2, a3, 0, volume)
        g.add_edge(a3, a4, 0, volume)
        # state: a4 of iteration i feeds a1 and a2 of iteration i+1
        g.add_edge(a4, a1, 1, volume)
        g.add_edge(a4, a2, 1, volume)
        if k in (2, 4):
            m2 = f"m{k}b"
            mul(m2)
            g.add_edge(a2, m2, 0, volume)
            g.add_edge(m2, a4, 0, volume)
        prev_out = a3

    # extra multiplier on the global feedback and output shaping,
    # completing the 8-multiplier budget
    mul("m_fb")
    g.add_edge(prev_out, "m_fb", 0, volume)
    g.add_edge("m_fb", "a_in1", 1, volume)

    # output stage: four adders summing section taps
    add("a_out1")
    add("a_out2")
    add("a_out3")
    add("a_out4")
    g.add_edge("a1_3", "a_out1", 0, volume)
    g.add_edge("a3_3", "a_out1", 0, volume)
    g.add_edge("a5_3", "a_out2", 0, volume)
    g.add_edge("a_out1", "a_out3", 0, volume)
    g.add_edge("a_out2", "a_out3", 0, volume)
    g.add_edge("a_out3", "a_out4", 0, volume)
    g.add_edge("a_out4", "a_in1", 2, volume)

    assert g.num_nodes == 34, f"expected 34 operations, built {g.num_nodes}"
    return g


def lattice_filter(
    stages: int = 4, *, mul_time: int = 2, add_time: int = 1, volume: int = 1
) -> CSDFG:
    """A normalised lattice filter with ``stages`` sections.

    Each section ``k``: the forward signal ``f_{k-1}`` and the delayed
    backward signal ``g_{k-1}`` combine through two multipliers
    (reflection coefficient) and two adders::

        f_k = f_{k-1} + K_k * z^{-1} g_{k-1}     (mul fm_k, add fa_k)
        g_k = z^{-1} g_{k-1} + K_k * f_{k-1}     (mul gm_k, add ga_k)

    The last backward signal feeds the input adder back (the filter's
    recursive part).
    """
    if stages < 1:
        raise WorkloadError(f"stages must be >= 1, got {stages}")
    g = CSDFG(f"lattice{stages}")
    g.add_node("in_add", add_time)
    f_prev = "in_add"
    g_prev = "in_add"
    for k in range(1, stages + 1):
        fm, fa = f"fm{k}", f"fa{k}"
        gm, ga = f"gm{k}", f"ga{k}"
        g.add_node(fm, mul_time)
        g.add_node(fa, add_time)
        g.add_node(gm, mul_time)
        g.add_node(ga, add_time)
        g.add_edge(g_prev, fm, 1, volume)  # z^{-1} g_{k-1} * K
        g.add_edge(f_prev, fa, 0, volume)
        g.add_edge(fm, fa, 0, volume)
        g.add_edge(f_prev, gm, 0, volume)
        g.add_edge(g_prev, ga, 1, volume)  # z^{-1} g_{k-1}
        g.add_edge(gm, ga, 0, volume)
        f_prev, g_prev = fa, ga
    g.add_node("out_add", add_time)
    g.add_edge(f_prev, "out_add", 0, volume)
    g.add_edge(g_prev, "out_add", 0, volume)
    g.add_edge("out_add", "in_add", 1, volume)
    return g


def biquad_cascade(
    sections: int = 2, *, mul_time: int = 2, add_time: int = 1, volume: int = 1
) -> CSDFG:
    """Direct-form-II IIR biquad sections in cascade.

    Section ``k``: ``w = x + a1*w[z^-1] + a2*w[z^-2]`` then
    ``y = w + b1*w[z^-1] + b2*w[z^-2]`` — four multipliers and four
    adders with one- and two-delay state edges.
    """
    if sections < 1:
        raise WorkloadError(f"sections must be >= 1, got {sections}")
    g = CSDFG(f"biquad{sections}")
    prev = None
    for k in range(1, sections + 1):
        w, y = f"w{k}", f"y{k}"
        ma1, ma2, mb1, mb2 = (f"{m}{k}" for m in ("ma1_", "ma2_", "mb1_", "mb2_"))
        sa, sb = f"sa{k}", f"sb{k}"
        g.add_node(w, add_time)
        g.add_node(y, add_time)
        g.add_node(sa, add_time)
        g.add_node(sb, add_time)
        for m in (ma1, ma2, mb1, mb2):
            g.add_node(m, mul_time)
        if prev is not None:
            g.add_edge(prev, w, 0, volume)
        # recursive part: w depends on its own delayed values
        g.add_edge(w, ma1, 1, volume)
        g.add_edge(w, ma2, 2, volume)
        g.add_edge(ma1, sa, 0, volume)
        g.add_edge(ma2, sa, 0, volume)
        g.add_edge(sa, w, 0, volume)
        # feed-forward part
        g.add_edge(w, mb1, 1, volume)
        g.add_edge(w, mb2, 2, volume)
        g.add_edge(mb1, sb, 0, volume)
        g.add_edge(mb2, sb, 0, volume)
        g.add_edge(w, y, 0, volume)
        g.add_edge(sb, y, 0, volume)
        prev = y
    return g
