"""Additional DSP / numerical kernels used by examples and ablations.

Classical benchmark graphs beyond the paper's two filters:

* :func:`differential_equation_solver` — the HAL second-order
  differential-equation benchmark (Paulin & Knight), one Euler step per
  iteration with the loop-carried state ``x, y, u``.
* :func:`fir_filter` — transposed-form FIR; acyclic except for the
  output accumulation chain's delayed taps.
* :func:`all_pole_iir` — direct-form all-pole IIR filter whose single
  accumulation cycle makes the iteration bound easy to reason about.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.csdfg import CSDFG

__all__ = ["differential_equation_solver", "fir_filter", "all_pole_iir"]


def differential_equation_solver(
    *, mul_time: int = 2, add_time: int = 1, volume: int = 1
) -> CSDFG:
    """The HAL benchmark: one Euler step of ``y'' + 3xy' + 3y = 0``.

    Per iteration: ``x1 = x + dx``; ``u1 = u - 3*x*u*dx - 3*y*dx``;
    ``y1 = y + u*dx`` — six multiplications, two additions, two
    subtractions (modelled as adds), with ``x, y, u`` carried between
    iterations.
    """
    g = CSDFG("diffeq")
    muls = ["m1", "m2", "m3", "m4", "m5", "m6"]
    for m in muls:
        g.add_node(m, mul_time)
    for a in ("a1", "s1", "s2", "a2"):
        g.add_node(a, add_time)

    # x1 = x + dx : a1 consumes the previous x1 (delay 1)
    g.add_edge("a1", "a1", 1, volume)
    # m1 = 3 * x,  m2 = u * dx,  m3 = 3 * y
    g.add_edge("a1", "m1", 1, volume)  # x from previous iteration
    g.add_edge("s1", "m2", 1, volume)  # u from previous iteration (s1 = u1)
    g.add_edge("a2", "m3", 1, volume)  # y from previous iteration (a2 = y1)
    # m4 = m1 * u,  m5 = m2 * ... chain of products
    g.add_edge("m1", "m4", 0, volume)
    g.add_edge("s1", "m4", 1, volume)
    g.add_edge("m4", "m5", 0, volume)
    g.add_edge("m3", "m6", 0, volume)
    # u1 = u - m5 - m6 : two subtractions
    g.add_edge("s1", "s1", 1, volume)
    g.add_edge("m5", "s1", 0, volume)
    g.add_edge("m6", "s2", 0, volume)
    g.add_edge("s2", "s1", 0, volume)
    # y1 = y + u*dx
    g.add_edge("m2", "a2", 0, volume)
    g.add_edge("a2", "a2", 1, volume)
    return g


def fir_filter(
    taps: int = 8, *, mul_time: int = 2, add_time: int = 1, volume: int = 1
) -> CSDFG:
    """Transposed-form FIR filter with ``taps`` coefficient taps.

    ``y = sum_k c_k * x[n-k]`` computed as a chain of adders where the
    partial sum between adders carries one delay — the textbook
    transposed structure, fully pipelineable.
    """
    if taps < 1:
        raise WorkloadError(f"taps must be >= 1, got {taps}")
    g = CSDFG(f"fir{taps}")
    prev_sum = None
    for k in range(taps):
        m = f"m{k}"
        g.add_node(m, mul_time)
        if k == 0:
            prev_sum = m
            continue
        a = f"a{k}"
        g.add_node(a, add_time)
        g.add_edge(prev_sum, a, 1, volume)  # delayed partial sum
        g.add_edge(m, a, 0, volume)
        prev_sum = a
    return g


def all_pole_iir(
    order: int = 4, *, mul_time: int = 2, add_time: int = 1, volume: int = 1
) -> CSDFG:
    """Direct-form all-pole IIR: ``y = x + sum_k a_k * y[n-k]``.

    ``order`` multipliers read the output ``acc`` at delays
    ``1..order``; their products accumulate through a chain of adders
    back into ``acc``.  The tap-1 cycle (one delay through the whole
    mul + adder chain) dominates the iteration bound.
    """
    if order < 1:
        raise WorkloadError(f"order must be >= 1, got {order}")
    g = CSDFG(f"iir{order}")
    g.add_node("acc", add_time)
    chain = None  # running accumulation of the products
    for k in range(1, order + 1):
        m = f"m{k}"
        g.add_node(m, mul_time)
        g.add_edge("acc", m, k, volume)  # y[n-k]
        if chain is None:
            chain = m
        else:
            a = f"a{k}"
            g.add_node(a, add_time)
            g.add_edge(chain, a, 0, volume)
            g.add_edge(m, a, 0, volume)
            chain = a
    g.add_edge(chain, "acc", 0, volume)
    return g
