"""Named workload registry.

Maps short names ("figure1", "elliptic5", ...) to builder callables so
experiment drivers and examples can resolve workloads by string.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.graph.csdfg import CSDFG
from repro.workloads.dsp import (
    all_pole_iir,
    differential_equation_solver,
    fir_filter,
)
from repro.workloads.filters import (
    biquad_cascade,
    elliptic_wave_filter,
    lattice_filter,
)
from repro.workloads.kernels import correlator, fft_stage, volterra, wavefront
from repro.workloads.paper_examples import figure1_csdfg, figure7_csdfg

__all__ = ["WORKLOADS", "make_workload", "workload_names"]

WORKLOADS: dict[str, Callable[[], CSDFG]] = {
    "figure1": figure1_csdfg,
    "figure7": figure7_csdfg,
    "elliptic5": elliptic_wave_filter,
    "lattice4": lattice_filter,
    "lattice8": lambda: lattice_filter(8),
    "biquad2": biquad_cascade,
    "biquad4": lambda: biquad_cascade(4),
    "diffeq": differential_equation_solver,
    "fir8": fir_filter,
    "iir4": all_pole_iir,
    "fft8": fft_stage,
    "wavefront6": wavefront,
    "correlator3": correlator,
    "volterra3": volterra,
}


def workload_names() -> list[str]:
    """All registered workload names, sorted."""
    return sorted(WORKLOADS)


def make_workload(name: str) -> CSDFG:
    """Build the named workload (fresh graph each call)."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {workload_names()}"
        ) from None
    return builder()
