"""Additional computational kernels as CSDFG workloads.

Beyond the DSP filters, these model the loop bodies the paper's
introduction motivates (iterative scientific/signal kernels):

* :func:`fft_stage` — one radix-2 FFT butterfly stage applied per
  iteration to a streaming block (acyclic butterflies + a block
  recurrence).
* :func:`wavefront` — a 1-D wavefront/stencil recurrence
  ``x[i] = f(x[i-1], x_prev[i], x_prev[i+1])``: each point depends on
  its left neighbour this iteration and its neighbourhood from the
  previous iteration — heavy nearest-neighbour communication.
* :func:`correlator` — the Leiserson–Saxe digital correlator (host,
  comparators, adders), the classic retiming showcase.
* :func:`volterra` — a second-order Volterra filter section: linear
  taps plus product (kernel) terms, multiplication heavy.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.csdfg import CSDFG

__all__ = ["fft_stage", "wavefront", "correlator", "volterra"]


def fft_stage(
    points: int = 8, *, mul_time: int = 2, add_time: int = 1, volume: int = 1
) -> CSDFG:
    """One radix-2 butterfly stage over a ``points``-sample block.

    ``points`` must be an even number >= 2.  Each butterfly is one
    twiddle multiplication and two adders; the block output feeds the
    next iteration's input with one delay (streaming block recurrence).
    """
    if points < 2 or points % 2:
        raise WorkloadError(f"points must be even and >= 2, got {points}")
    g = CSDFG(f"fft{points}")
    half = points // 2
    for b in range(half):
        g.add_node(f"tw{b}", mul_time)
        g.add_node(f"top{b}", add_time)
        g.add_node(f"bot{b}", add_time)
    for b in range(half):
        g.add_edge(f"tw{b}", f"top{b}", 0, volume)
        g.add_edge(f"tw{b}", f"bot{b}", 0, volume)
        # block recurrence: outputs of this stage become next block's
        # inputs (the twiddle of a neighbouring butterfly)
        g.add_edge(f"top{b}", f"tw{b}", 1, volume)
        g.add_edge(f"bot{b}", f"tw{(b + 1) % half}", 1, volume)
    return g


def wavefront(
    width: int = 6, *, time: int = 1, volume: int = 2
) -> CSDFG:
    """1-D wavefront recurrence over ``width`` grid points.

    Point ``i`` consumes point ``i-1`` of the same sweep (zero-delay)
    and points ``i-1, i, i+1`` of the previous sweep (one delay) —
    the dependence pattern of Gauss–Seidel-style smoothers.  Exercises
    nearest-neighbour mapping: good schedules place adjacent points on
    adjacent processors.
    """
    if width < 2:
        raise WorkloadError(f"width must be >= 2, got {width}")
    g = CSDFG(f"wavefront{width}")
    names = [f"x{i}" for i in range(width)]
    for name in names:
        g.add_node(name, time)
    for i in range(width):
        if i > 0:
            g.add_edge(names[i - 1], names[i], 0, volume)
        g.add_edge(names[i], names[i], 1, volume)
        if i + 1 < width:
            g.add_edge(names[i + 1], names[i], 1, volume)
    return g


def correlator(
    taps: int = 3, *, compare_time: int = 3, add_time: int = 7, volume: int = 1
) -> CSDFG:
    """The Leiserson–Saxe digital correlator with ``taps`` stages.

    A host node streams samples through a delay chain of comparators
    whose match bits fold back through an adder chain — the canonical
    example where retiming halves the clock period.
    """
    if taps < 1:
        raise WorkloadError(f"taps must be >= 1, got {taps}")
    g = CSDFG(f"correlator{taps}")
    g.add_node("host", 1)
    prev_d = "host"
    for k in range(1, taps + 1):
        d = f"d{k}"
        g.add_node(d, compare_time)
        g.add_edge(prev_d, d, 1, volume)
        prev_d = d
    prev_p = None
    for k in range(taps, 0, -1):
        p = f"p{k}"
        g.add_node(p, add_time)
        g.add_edge(f"d{k}", p, 0, volume)
        if prev_p is not None:
            g.add_edge(prev_p, p, 0, volume)
        prev_p = p
    g.add_edge(prev_p, "host", 0, volume)
    return g


def volterra(
    taps: int = 3, *, mul_time: int = 2, add_time: int = 1, volume: int = 1
) -> CSDFG:
    """Second-order Volterra filter section with ``taps`` linear taps.

    ``y = sum_i h_i x[n-i] + sum_{i<=j} h_ij x[n-i] x[n-j]`` feeding an
    output recurrence; the quadratic kernel makes it multiplication
    dominated — a stress test for general-time scheduling.
    """
    if taps < 2:
        raise WorkloadError(f"taps must be >= 2, got {taps}")
    g = CSDFG(f"volterra{taps}")
    g.add_node("acc", add_time)
    chain = None
    # linear taps
    for i in range(taps):
        m = f"lin{i}"
        g.add_node(m, mul_time)
        g.add_edge("acc", m, i + 1, volume)  # x[n-i] proxy via feedback
        chain = _accumulate(g, chain, m, add_time, volume)
    # quadratic kernel terms (i <= j), products of delayed samples
    for i in range(taps):
        for j in range(i, taps):
            q = f"quad{i}_{j}"
            g.add_node(q, mul_time)
            g.add_edge("acc", q, i + j + 1, volume)
            chain = _accumulate(g, chain, q, add_time, volume)
    g.add_edge(chain, "acc", 0, volume)
    return g


def _accumulate(g: CSDFG, chain, term, add_time: int, volume: int):
    """Fold ``term`` into the running adder chain; returns its head."""
    if chain is None:
        return term
    a = f"sum_{term}"
    g.add_node(a, add_time)
    g.add_edge(chain, a, 0, volume)
    g.add_edge(term, a, 0, volume)
    return a
