"""Reproducible random workload suites for scaling studies.

Wraps :mod:`repro.graph.generators` into named, seeded suites so the
benchmarks can iterate over a stable population of graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.graph.csdfg import CSDFG
from repro.graph.generators import layered_csdfg, random_csdfg

__all__ = ["SuiteSpec", "random_suite", "layered_suite"]


@dataclass(frozen=True)
class SuiteSpec:
    """Parameters of a generated workload population."""

    count: int
    num_nodes: int
    seed: int = 0
    edge_prob: float = 0.25
    back_edge_prob: float = 0.15
    max_time: int = 3
    max_delay: int = 3
    max_volume: int = 3

    def __post_init__(self) -> None:
        if self.count < 1:
            raise WorkloadError(f"count must be >= 1, got {self.count}")
        if self.num_nodes < 1:
            raise WorkloadError(f"num_nodes must be >= 1, got {self.num_nodes}")


def random_suite(spec: SuiteSpec) -> list[CSDFG]:
    """``spec.count`` random legal CSDFGs with consecutive seeds."""
    return [
        random_csdfg(
            spec.num_nodes,
            seed=spec.seed + i,
            edge_prob=spec.edge_prob,
            back_edge_prob=spec.back_edge_prob,
            max_time=spec.max_time,
            max_delay=spec.max_delay,
            max_volume=spec.max_volume,
        )
        for i in range(spec.count)
    ]


def layered_suite(
    count: int,
    layer_sizes: tuple[int, ...] = (2, 4, 4, 2),
    *,
    seed: int = 0,
) -> list[CSDFG]:
    """``count`` layered pipeline graphs with consecutive seeds."""
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    return [
        layered_csdfg(layer_sizes, seed=seed + i) for i in range(count)
    ]
