"""repro — cyclo-compaction scheduling (ICPP'95 reproduction).

Architecture-dependent loop scheduling via communication-sensitive
remapping: schedule cyclic, general-time data flow graphs onto
multiprocessor topologies, accounting for store-and-forward
communication delays, and compact the schedule by implicit retiming
(rotation) plus communication-sensitive remapping.

Quick start::

    from repro import cyclo_compact, figure1_csdfg, figure1_mesh

    result = cyclo_compact(figure1_csdfg(), figure1_mesh())
    print(result.initial_length, "->", result.final_length)   # 7 -> 5

Packages: :mod:`repro.graph` (CSDFG substrate), :mod:`repro.arch`
(topologies + communication models), :mod:`repro.schedule` (tables +
validator), :mod:`repro.retiming`, :mod:`repro.core` (the paper's
algorithms), :mod:`repro.baselines`, :mod:`repro.workloads`,
:mod:`repro.analysis`, :mod:`repro.obs` (tracing/metrics),
:mod:`repro.resilience` (fault injection, schedule repair,
checkpoint/resume, chaos harness).
"""

from repro.arch import (
    Architecture,
    CompletelyConnected,
    Hypercube,
    LinearArray,
    Mesh2D,
    Ring,
    make_architecture,
    paper_architectures,
)
from repro.codegen import generate_program
from repro.core import (
    CycloConfig,
    CycloResult,
    OptimizeResult,
    cyclo_compact,
    optimize,
    refine_schedule,
    start_up_schedule,
)
from repro.errors import ReproError
from repro.graph import CSDFG, iteration_bound, validate_csdfg
from repro.schedule import (
    ScheduleTable,
    compute_metrics,
    render_gantt,
    render_table,
    validate_schedule,
)
from repro.sim import buffer_requirements, simulate
from repro.workloads import (
    elliptic_wave_filter,
    figure1_csdfg,
    figure1_mesh,
    figure7_csdfg,
    lattice_filter,
    make_workload,
)

__version__ = "1.0.0"

__all__ = [
    "Architecture",
    "CSDFG",
    "CompletelyConnected",
    "CycloConfig",
    "CycloResult",
    "Hypercube",
    "LinearArray",
    "Mesh2D",
    "OptimizeResult",
    "ReproError",
    "Ring",
    "ScheduleTable",
    "__version__",
    "compute_metrics",
    "cyclo_compact",
    "elliptic_wave_filter",
    "figure1_csdfg",
    "figure1_mesh",
    "figure7_csdfg",
    "generate_program",
    "iteration_bound",
    "lattice_filter",
    "make_architecture",
    "make_workload",
    "optimize",
    "paper_architectures",
    "refine_schedule",
    "render_gantt",
    "render_table",
    "simulate",
    "buffer_requirements",
    "start_up_schedule",
    "validate_csdfg",
    "validate_schedule",
]
