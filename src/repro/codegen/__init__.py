"""Code generation: per-PE programs from scheduling results."""

from repro.codegen.program import (
    ComputeOp,
    LoopProgram,
    PEProgram,
    RecvOp,
    SendOp,
    generate_program,
)

__all__ = [
    "ComputeOp",
    "LoopProgram",
    "PEProgram",
    "RecvOp",
    "SendOp",
    "generate_program",
]
