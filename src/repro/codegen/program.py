"""Program extraction from static cyclic schedules.

Turns a scheduling result into the artifact a compiler backend or a
runtime would consume: one program per processor, listing for every
control step of the steady-state loop body what the PE computes, which
messages it injects after each task completes (``SEND``), and which
messages must have arrived before each task issues (``RECV``).  The
store-and-forward network carries messages without stealing PE cycles
(the paper's multiple-channel assumption), so sends/receives are
annotations on the compute timeline rather than occupying slots.

Combined with :mod:`repro.retiming.prologue` this yields the complete
prologue / steady-state / epilogue decomposition of a retimed loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.arch.topology import Architecture
from repro.errors import ScheduleValidationError
from repro.graph.csdfg import CSDFG, Node
from repro.schedule.table import ScheduleTable
from repro.schedule.validate import collect_violations

__all__ = ["ComputeOp", "SendOp", "RecvOp", "PEProgram", "LoopProgram", "generate_program"]


@dataclass(frozen=True)
class ComputeOp:
    """Issue ``node`` at control step ``cs`` (occupies ``duration``)."""

    cs: int
    node: Node
    duration: int


@dataclass(frozen=True)
class SendOp:
    """Inject ``volume`` words for edge ``src -> dst`` right after
    ``after_cs`` (the producer's CE); transit takes ``transit`` control
    steps to ``to_pe``.  ``delay`` is the edge's iteration distance."""

    after_cs: int
    src: Node
    dst: Node
    to_pe: int
    volume: int
    transit: int
    delay: int


@dataclass(frozen=True)
class RecvOp:
    """Data for edge ``src -> dst`` must be present before ``by_cs``
    (the consumer's CB); it comes from ``from_pe`` and was produced
    ``delay`` iterations earlier."""

    by_cs: int
    src: Node
    dst: Node
    from_pe: int
    volume: int
    delay: int


@dataclass
class PEProgram:
    """The steady-state loop body of one processor."""

    pe: int
    computes: list[ComputeOp] = field(default_factory=list)
    sends: list[SendOp] = field(default_factory=list)
    recvs: list[RecvOp] = field(default_factory=list)

    def render(self, length: int) -> str:
        """Human-readable listing of this PE's loop body."""
        by_cs: dict[int, list[str]] = {}
        for op in self.computes:
            span = (
                f"cs{op.cs}" if op.duration == 1 else f"cs{op.cs}-{op.cs + op.duration - 1}"
            )
            by_cs.setdefault(op.cs, []).append(f"compute {op.node} ({span})")
        for op in self.recvs:
            by_cs.setdefault(op.by_cs, []).insert(
                0,
                f"recv {op.src}->{op.dst} from pe{op.from_pe + 1} "
                f"[{op.volume}w, d={op.delay}]",
            )
        for op in self.sends:
            by_cs.setdefault(op.after_cs, []).append(
                f"send {op.src}->{op.dst} to pe{op.to_pe + 1} "
                f"[{op.volume}w, {op.transit}cs, d={op.delay}]"
            )
        lines = [f"pe{self.pe + 1}:"]
        for cs in range(1, length + 1):
            ops = by_cs.get(cs)
            if not ops:
                continue
            for k, text in enumerate(ops):
                prefix = f"  cs{cs:<3d} " if k == 0 else "        "
                lines.append(prefix + text)
        if len(lines) == 1:
            lines.append("  (idle)")
        return "\n".join(lines)


@dataclass
class LoopProgram:
    """Per-PE programs for the steady-state loop of length ``length``."""

    length: int
    pes: list[PEProgram]

    def pe(self, pe: int) -> PEProgram:
        return self.pes[pe]

    @property
    def total_sends(self) -> int:
        return sum(len(p.sends) for p in self.pes)

    @property
    def total_computes(self) -> int:
        return sum(len(p.computes) for p in self.pes)

    def render(self) -> str:
        """The whole program listing."""
        header = f"steady-state loop body, initiation interval {self.length}"
        return "\n\n".join([header] + [p.render(self.length) for p in self.pes])


def generate_program(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    *,
    pipelined_pes: bool = False,
) -> LoopProgram:
    """Extract per-PE programs from a legal schedule.

    Raises :class:`~repro.errors.ScheduleValidationError` when the
    schedule is illegal (code emitted from a broken schedule would
    deadlock).
    """
    violations = collect_violations(
        graph, arch, schedule, pipelined_pes=pipelined_pes
    )
    if violations:
        raise ScheduleValidationError(
            ["cannot generate code from an illegal schedule"] + violations
        )

    programs = [PEProgram(pe=pe) for pe in range(schedule.num_pes)]
    for node in graph.nodes():
        p = schedule.placement(node)
        programs[p.pe].computes.append(
            ComputeOp(cs=p.start, node=node, duration=p.duration)
        )
    for edge in graph.edges():
        src_p = schedule.placement(edge.src)
        dst_p = schedule.placement(edge.dst)
        if src_p.pe == dst_p.pe:
            continue
        transit = arch.comm_cost(src_p.pe, dst_p.pe, edge.volume)
        programs[src_p.pe].sends.append(
            SendOp(
                after_cs=src_p.finish,
                src=edge.src,
                dst=edge.dst,
                to_pe=dst_p.pe,
                volume=edge.volume,
                transit=transit,
                delay=edge.delay,
            )
        )
        programs[dst_p.pe].recvs.append(
            RecvOp(
                by_cs=dst_p.start,
                src=edge.src,
                dst=edge.dst,
                from_pe=src_p.pe,
                volume=edge.volume,
                delay=edge.delay,
            )
        )
    for program in programs:
        program.computes.sort(key=lambda op: op.cs)
        program.sends.sort(key=lambda op: (op.after_cs, str(op.src)))
        program.recvs.sort(key=lambda op: (op.by_cs, str(op.dst)))
    return LoopProgram(length=schedule.length, pes=programs)
