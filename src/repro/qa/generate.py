"""Seeded random sampling of (graph, architecture, config) triples.

The fuzzer explores the open space of inputs the paper defines, not just
the registered workloads: any CSDFG is fair game as long as every
directed cycle carries positive total delay, ``t(v) >= 1`` and
``c(e) >= 1``.  Everything here is deterministic given a
:class:`random.Random` (or an integer seed): the same seed always
produces the same triple, which is what makes a failing trial
replayable and shrinkable.

Graphs come from a small set of structural *families* (random order
graphs, layered pipelines, rings, chains, fork-joins) whose parameters
are drawn from a :class:`GraphProfile`; every sample is checked against
:func:`repro.graph.validation.is_legal` before it is handed out, so a
generator bug can never masquerade as a scheduler bug.

Architectures are sampled across **all eight registered topology
kinds** (:data:`repro.arch.registry.ARCHITECTURE_KINDS`), respecting
each kind's PE-count constraints (hypercubes need powers of two,
balanced trees need ``2**k - 1``).  An :class:`ArchSpec` is the
JSON-serializable recipe for the sampled instance — reproducer cases
store the spec, not the object.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.arch.degraded import DegradedTopology
from repro.arch.registry import ARCHITECTURE_KINDS, make_architecture
from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.errors import QAError
from repro.graph.csdfg import CSDFG
from repro.graph.generators import (
    chain_csdfg,
    fork_join_csdfg,
    layered_csdfg,
    random_csdfg,
    ring_csdfg,
)
from repro.graph.validation import is_legal

__all__ = [
    "GraphProfile",
    "ArchSpec",
    "sample_graph",
    "sample_sized_graph",
    "sample_arch_spec",
    "sample_config",
    "GRAPH_FAMILIES",
    "SIZED_FAMILIES",
]

#: Structural families the graph sampler draws from.
GRAPH_FAMILIES: tuple[str, ...] = (
    "random",
    "layered",
    "ring",
    "chain",
    "fork-join",
)

#: PE counts that satisfy each kind's constructor constraints (rings
#: need >= 3 PEs, tori >= 3 per dimension, hypercubes powers of two,
#: balanced trees ``2**k - 1``).
_VALID_PE_COUNTS: dict[str, tuple[int, ...]] = {
    "linear": (2, 3, 4, 5, 6, 8),
    "ring": (3, 4, 5, 6, 8),
    "complete": (2, 3, 4, 5, 6, 8),
    "mesh": (2, 4, 6, 8, 9),
    "torus": (9, 12, 16),
    "hypercube": (2, 4, 8),
    "star": (2, 3, 4, 5, 6, 8),
    "tree": (3, 7, 15),
    "circulant": (4, 5, 6, 8),
    "cayley-star": (2, 6, 24),
    "cayley-bubble": (2, 6, 24),
    "pancake": (2, 6, 24),
}


@dataclass(frozen=True)
class GraphProfile:
    """Tunable size/density/delay envelope for the graph sampler.

    The defaults keep graphs small enough that a trial (two optimiser
    engines plus the metamorphic re-runs) stays in the low tens of
    milliseconds, which is what lets a 200-trial campaign finish in
    seconds.
    """

    min_nodes: int = 2
    max_nodes: int = 10
    max_time: int = 3
    max_delay: int = 3
    max_volume: int = 3
    edge_probs: tuple[float, ...] = (0.15, 0.3, 0.5)
    back_edge_probs: tuple[float, ...] = (0.0, 0.1, 0.3)
    families: tuple[str, ...] = GRAPH_FAMILIES

    def __post_init__(self) -> None:
        if self.min_nodes < 1 or self.max_nodes < self.min_nodes:
            raise QAError(
                f"need 1 <= min_nodes <= max_nodes, got "
                f"{self.min_nodes}..{self.max_nodes}"
            )
        if min(self.max_time, self.max_delay + 1, self.max_volume) < 1:
            raise QAError("max_time/max_volume must be >= 1, max_delay >= 0")
        unknown = set(self.families) - set(GRAPH_FAMILIES)
        if unknown:
            raise QAError(
                f"unknown graph families {sorted(unknown)}; "
                f"known: {list(GRAPH_FAMILIES)}"
            )


@dataclass(frozen=True)
class ArchSpec:
    """JSON-serializable recipe for a sampled architecture.

    ``failed_pes``/``failed_links`` describe an optional degradation
    layered on the healthy instance (used by the cache cross-check
    suite; the default fuzz profile samples healthy machines).
    """

    kind: str
    num_pes: int
    failed_pes: tuple[int, ...] = ()
    failed_links: tuple[tuple[int, int], ...] = ()

    def build(self) -> Architecture:
        """Materialise the architecture this spec describes."""
        arch = make_architecture(self.kind, self.num_pes)
        if self.failed_pes or self.failed_links:
            arch = DegradedTopology(
                arch,
                failed_pes=self.failed_pes,
                failed_links=self.failed_links,
            )
        return arch

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "num_pes": self.num_pes,
            "failed_pes": list(self.failed_pes),
            "failed_links": [list(link) for link in self.failed_links],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArchSpec":
        try:
            return cls(
                kind=data["kind"],
                num_pes=int(data["num_pes"]),
                failed_pes=tuple(int(p) for p in data.get("failed_pes", ())),
                failed_links=tuple(
                    (int(a), int(b)) for a, b in data.get("failed_links", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise QAError(f"malformed architecture spec {data!r}") from exc


def _rng(seed_or_rng: int | random.Random) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def sample_graph(
    seed_or_rng: int | random.Random, profile: GraphProfile | None = None
) -> CSDFG:
    """Draw one paper-legal CSDFG from ``profile``.

    Every returned graph satisfies the paper's legality conditions by
    construction *and* by an explicit :func:`is_legal` check.
    """
    rng = _rng(seed_or_rng)
    prof = profile if profile is not None else GraphProfile()
    family = rng.choice(prof.families)
    n = rng.randint(prof.min_nodes, prof.max_nodes)
    sub_seed = rng.randrange(1 << 30)
    if family == "random":
        graph = random_csdfg(
            n,
            seed=sub_seed,
            edge_prob=rng.choice(prof.edge_probs),
            back_edge_prob=rng.choice(prof.back_edge_probs),
            max_time=prof.max_time,
            max_delay=prof.max_delay,
            max_volume=prof.max_volume,
        )
    elif family == "layered":
        sizes = []
        remaining = max(2, n)
        while remaining > 0:
            width = rng.randint(1, min(3, remaining))
            sizes.append(width)
            remaining -= width
        graph = layered_csdfg(
            sizes,
            seed=sub_seed,
            fanout=rng.randint(1, 2),
            feedback_edges=rng.randint(1, 2),
            feedback_delay=rng.randint(1, max(1, prof.max_delay)),
            max_time=prof.max_time,
            max_volume=prof.max_volume,
        )
    elif family == "ring":
        graph = ring_csdfg(
            max(2, n),
            delay_per_edge=rng.randint(1, max(1, prof.max_delay)),
            time=rng.randint(1, prof.max_time),
            volume=rng.randint(1, prof.max_volume),
        )
    elif family == "chain":
        graph = chain_csdfg(
            n,
            time=rng.randint(1, prof.max_time),
            volume=rng.randint(1, prof.max_volume),
            loop_delay=rng.randint(1, max(1, prof.max_delay)),
        )
    else:  # fork-join
        width = rng.randint(1, max(1, (n - 2) // 2)) if n > 3 else 1
        stages = rng.randint(1, 2)
        graph = fork_join_csdfg(
            width,
            stages=stages,
            time=rng.randint(1, prof.max_time),
            volume=rng.randint(1, prof.max_volume),
            loop_delay=rng.randint(1, max(1, prof.max_delay)),
        )
    if not is_legal(graph):  # pragma: no cover - generator invariant
        raise QAError(
            f"sampled graph {graph.name!r} is illegal (generator bug)"
        )
    return graph


#: Families :func:`sample_sized_graph` can build at an exact node
#: count.  "random" is deliberately absent: its edge sampler is
#: quadratic in the node count, which the thousand-node scale tier
#: cannot afford (and its density profile is not size-stable anyway).
SIZED_FAMILIES: tuple[str, ...] = ("layered", "ring", "chain", "fork-join")


def sample_sized_graph(
    family: str,
    size: int,
    *,
    seed: int = 0,
    max_time: int = 3,
    max_volume: int = 3,
) -> CSDFG:
    """Draw one paper-legal CSDFG with **exactly** ``size`` nodes.

    The scale benchmark tier (:mod:`repro.perf.scale`) needs instances
    whose node count is the independent variable, which
    :func:`sample_graph` cannot promise (its family parameters are
    sampled, so counts wobble).  Same determinism contract: one
    ``(family, size, seed)`` triple always builds the same graph,
    byte-stable across processes.
    """
    if family not in SIZED_FAMILIES:
        raise QAError(
            f"unknown sized family {family!r}; known: {list(SIZED_FAMILIES)}"
        )
    if size < 3:
        raise QAError(f"size must be >= 3, got {size}")
    rng = random.Random((seed, family, size).__repr__())
    name = f"{family.replace('-', '')}{size}-s{seed}"
    if family == "layered":
        widths: list[int] = []
        remaining = size
        while remaining > 0:
            width = min(remaining, rng.randint(2, 8))
            widths.append(width)
            remaining -= width
        graph = layered_csdfg(
            widths,
            seed=rng.randrange(1 << 30),
            fanout=2,
            feedback_edges=2,
            feedback_delay=2,
            max_time=max_time,
            max_volume=max_volume,
            name=name,
        )
    elif family == "ring":
        graph = ring_csdfg(
            size,
            delay_per_edge=1,
            time=rng.randint(1, max_time),
            volume=rng.randint(1, max_volume),
            name=name,
        )
    elif family == "chain":
        graph = chain_csdfg(
            size,
            time=rng.randint(1, max_time),
            volume=rng.randint(1, max_volume),
            loop_delay=2,
            name=name,
        )
    else:  # fork-join
        body = size - 2
        stages = 2 if body % 2 == 0 else 1
        graph = fork_join_csdfg(
            body // stages,
            stages=stages,
            time=rng.randint(1, max_time),
            volume=rng.randint(1, max_volume),
            loop_delay=2,
            name=name,
        )
    if graph.num_nodes != size:  # pragma: no cover - generator invariant
        raise QAError(
            f"sized generator built {graph.num_nodes} nodes for "
            f"requested {size} (generator bug)"
        )
    if not is_legal(graph):  # pragma: no cover - generator invariant
        raise QAError(
            f"sampled graph {graph.name!r} is illegal (generator bug)"
        )
    return graph


def sample_arch_spec(
    seed_or_rng: int | random.Random,
    *,
    max_pes: int = 8,
    degraded_prob: float = 0.0,
) -> ArchSpec:
    """Draw one architecture recipe across all registered kinds.

    ``degraded_prob`` layers a random single-PE failure (keeping the
    survivors connected) on top of the healthy instance with that
    probability.
    """
    rng = _rng(seed_or_rng)
    kind = rng.choice(sorted(ARCHITECTURE_KINDS))
    sizes = [n for n in _VALID_PE_COUNTS[kind] if n <= max_pes]
    if not sizes:
        # some kinds have a floor above max_pes (tori start at 3x3):
        # sample their smallest valid machine so every kind stays covered
        sizes = [min(_VALID_PE_COUNTS[kind])]
    num_pes = rng.choice(sizes)
    spec = ArchSpec(kind, num_pes)
    if num_pes > 2 and rng.random() < degraded_prob:
        # try a few candidate kills; keep the first that leaves the
        # survivors connected (DegradedTopology rejects the others)
        for _ in range(4):
            victim = rng.randrange(num_pes)
            try:
                candidate = replace(spec, failed_pes=(victim,))
                candidate.build()
                return candidate
            except Exception:
                continue
    return spec


def sample_config(
    seed_or_rng: int | random.Random, *, max_iterations: int = 6
) -> CycloConfig:
    """Draw optimiser options covering the modes the engines support.

    ``validate_each_step`` stays off — the property suite runs the
    validator itself (per-step validation would hide ordering bugs the
    differential oracle is meant to catch, and doubles the cost of
    every trial).
    """
    rng = _rng(seed_or_rng)
    return CycloConfig(
        relaxation=rng.random() < 0.7,
        max_iterations=rng.randint(1, max_iterations),
        pipelined_pes=rng.random() < 0.25,
        remap_strategy=rng.choice(["implied", "implied", "first-fit"]),
        validate_each_step=False,
    )
