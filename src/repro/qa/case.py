"""Replayable reproducer cases: one failing (graph, arch, config) triple.

A :class:`ReproCase` pins everything a property run needs — the graph
(canonical CSDFG JSON), the architecture recipe (:class:`ArchSpec`),
the optimiser config, the property name and the derived-randomness
seed — so a failure found by the fuzzer on one machine replays
byte-identically on another.  Shrunk cases are checked into
``tests/corpus/`` and re-run by tier-1 forever (fixed bugs stay fixed).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.config import CycloConfig
from repro.errors import QAError
from repro.graph import io as graph_io
from repro.graph.csdfg import CSDFG
from repro.qa.generate import ArchSpec
from repro.qa.properties import PROPERTIES, check_property

__all__ = ["ReproCase", "replay_case", "load_cases"]

_FORMAT = "repro-qa-case"
_VERSION = 1


@dataclass(frozen=True)
class ReproCase:
    """A serialized property failure (or any replayable triple)."""

    graph: CSDFG
    arch_spec: ArchSpec
    config: CycloConfig
    prop: str
    seed: int = 0
    note: str = ""

    def __post_init__(self) -> None:
        if self.prop not in PROPERTIES:
            raise QAError(
                f"unknown property {self.prop!r}; known: {list(PROPERTIES)}"
            )

    # ------------------------------------------------------------------
    def run(self) -> list[str]:
        """Re-run the pinned property; empty list == the invariant holds."""
        return check_property(
            self.prop,
            self.graph.copy(),
            self.arch_spec.build(),
            self.config,
            random.Random(self.seed),
        )

    def with_graph(self, graph: CSDFG) -> "ReproCase":
        return replace(self, graph=graph)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "property": self.prop,
            "seed": self.seed,
            "note": self.note,
            "graph": graph_io.to_json(self.graph),
            "arch": self.arch_spec.to_dict(),
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReproCase":
        if data.get("format") != _FORMAT:
            raise QAError("not a repro-qa-case payload")
        if data.get("version") != _VERSION:
            raise QAError(
                f"unsupported qa case version {data.get('version')!r}"
            )
        try:
            return cls(
                graph=graph_io.from_json(data["graph"]),
                arch_spec=ArchSpec.from_dict(data["arch"]),
                config=CycloConfig.from_dict(data["config"]),
                prop=data["property"],
                seed=int(data.get("seed", 0)),
                note=str(data.get("note", "")),
            )
        except (KeyError, TypeError) as exc:
            raise QAError(f"malformed qa case: {exc}") from exc

    def to_json(self, **dumps_kwargs) -> str:
        dumps_kwargs.setdefault("indent", 2)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ReproCase":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise QAError(f"qa case is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ReproCase":
        return cls.from_json(Path(path).read_text())

    def describe(self) -> str:
        spec = self.arch_spec
        degraded = (
            f" (failed pes {list(spec.failed_pes)}, "
            f"links {list(spec.failed_links)})"
            if spec.failed_pes or spec.failed_links
            else ""
        )
        return (
            f"[{self.prop}] {self.graph.name}: {self.graph.num_nodes} "
            f"node(s), {self.graph.num_edges} edge(s) on {spec.kind} "
            f"x{spec.num_pes}{degraded}, seed {self.seed}"
            + (f" — {self.note}" if self.note else "")
        )


def replay_case(case: ReproCase) -> list[str]:
    """Run ``case``, turning unexpected exceptions into violations.

    The shrinker and the corpus replay both need "the property raised"
    to count as a reproduced failure rather than aborting the search.
    """
    try:
        return case.run()
    except Exception as exc:  # noqa: BLE001 - any escape is a failure
        return [f"[{case.prop}] raised {type(exc).__name__}: {exc}"]


def load_cases(directory: str | Path) -> list[tuple[Path, ReproCase]]:
    """Every ``*.json`` qa case under ``directory``, sorted by name."""
    root = Path(directory)
    if not root.exists():
        return []
    out = []
    for path in sorted(root.glob("*.json")):
        out.append((path, ReproCase.load(path)))
    return out
