"""Delta-debugging shrinker for failing (graph, arch, config) triples.

Given a :class:`~repro.qa.case.ReproCase` whose property fails, the
shrinker searches for the smallest case that *still* fails, so a
30-node fuzz catch becomes a 3-node reproducer a human can read:

1. **Nodes** — ddmin-style chunked removal (halves, then quarters, …,
   then single nodes) of graph nodes with their incident edges.
2. **Edges** — greedy single-edge removal.
3. **Annotations** — push every execution time, delay and volume toward
   its minimum (``t=1``, ``d ∈ {0, 1}``, ``c=1``).
4. **Config** — fewer compaction passes, simpler optimiser modes.
5. **Architecture** — fewer PEs of the same kind, then the smallest
   machines of simpler kinds.

Every candidate must stay *paper-legal* (positive-delay cycles —
checked with :func:`repro.graph.validation.is_legal`) before it is
tried, so the shrinker can never convert a scheduler bug into a
generator bug.  Rounds repeat until a fixpoint; the check function is
total (exceptions count as failures) via
:func:`~repro.qa.case.replay_case`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from repro.core.config import CycloConfig
from repro.errors import QAError
from repro.graph.csdfg import CSDFG
from repro.graph.validation import is_legal
from repro.qa.case import ReproCase, replay_case
from repro.qa.generate import ArchSpec, _VALID_PE_COUNTS

__all__ = ["ShrinkResult", "shrink_case"]

CheckFn = Callable[[ReproCase], list[str]]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    case: ReproCase
    original: ReproCase
    violations: list[str]
    rounds: int
    attempts: int

    @property
    def nodes_removed(self) -> int:
        return self.original.graph.num_nodes - self.case.graph.num_nodes

    def describe(self) -> str:
        return (
            f"shrunk {self.original.graph.num_nodes} node(s) / "
            f"{self.original.graph.num_edges} edge(s) on "
            f"{self.original.arch_spec.kind} x{self.original.arch_spec.num_pes} "
            f"to {self.case.graph.num_nodes} node(s) / "
            f"{self.case.graph.num_edges} edge(s) on "
            f"{self.case.arch_spec.kind} x{self.case.arch_spec.num_pes} "
            f"({self.attempts} candidate(s) over {self.rounds} round(s))"
        )


def shrink_case(
    case: ReproCase,
    *,
    check: CheckFn = replay_case,
    max_attempts: int = 4000,
) -> ShrinkResult:
    """Minimise ``case`` while ``check`` keeps failing.

    ``check`` returns the violation list of a candidate (empty ==
    passes); it defaults to replaying the case's own property.  Raises
    :class:`QAError` when the input case does not fail at all — a
    shrink request for a passing case is always a caller bug.
    """
    violations = check(case)
    if not violations:
        raise QAError(
            "shrink_case needs a failing case; the given case passes "
            f"({case.describe()})"
        )
    budget = _Budget(max_attempts)
    current = case
    rounds = 0
    changed = True
    while changed and budget.left():
        changed = False
        rounds += 1
        for mutate in (
            _shrink_nodes,
            _shrink_edges,
            _shrink_annotations,
            _shrink_config,
            _shrink_arch,
        ):
            smaller = mutate(current, check, budget)
            if smaller is not None:
                current = smaller
                changed = True
    return ShrinkResult(
        case=current,
        original=case,
        violations=check(current),
        rounds=rounds,
        attempts=budget.spent,
    )


class _Budget:
    """Caps the number of candidate replays a shrink run may spend."""

    def __init__(self, max_attempts: int):
        self.max_attempts = max_attempts
        self.spent = 0

    def left(self) -> bool:
        return self.spent < self.max_attempts

    def charge(self) -> None:
        self.spent += 1


def _viable(candidate: ReproCase) -> bool:
    """A candidate must be a well-formed input before it may "fail":
    otherwise the shrinker walks into a *different* failure (e.g. an
    architecture whose constructor rejects the shrunk PE count) and
    reports a reproducer for the wrong bug.

    Viability is the static analyzer's verdict
    (:func:`repro.analyze.analyze_inputs` — empty graph, zero-delay
    cycles, out-of-domain annotations, unbuildable machines all come
    back as error diagnostics); warnings such as dead nodes never block
    a shrink step."""
    from repro.analyze import analyze_inputs

    if candidate.graph.num_nodes < 1:
        return False
    try:
        arch = candidate.arch_spec.build()
    except Exception:
        return False
    return analyze_inputs(candidate.graph, arch).ok


def _still_fails(
    candidate: ReproCase, check: CheckFn, budget: _Budget
) -> bool:
    if not budget.left() or not _viable(candidate):
        return False
    budget.charge()
    return bool(check(candidate))


def _without_nodes(graph: CSDFG, victims: list) -> CSDFG | None:
    if len(victims) >= graph.num_nodes:
        return None  # must keep at least one node
    out = graph.copy()
    for node in victims:
        out.remove_node(node)
    return out


def _shrink_nodes(
    case: ReproCase, check: CheckFn, budget: _Budget
) -> ReproCase | None:
    """ddmin over the node list: drop the largest chunk that still fails."""
    best: ReproCase | None = None
    current = case
    chunk = max(1, current.graph.num_nodes // 2)
    while chunk >= 1 and budget.left():
        removed_any = False
        nodes = list(current.graph.nodes())
        start = 0
        while start < len(nodes) and budget.left():
            victims = nodes[start : start + chunk]
            smaller = _without_nodes(current.graph, victims)
            if smaller is not None and smaller.num_nodes >= 1:
                candidate = current.with_graph(smaller)
                if _still_fails(candidate, check, budget):
                    current = candidate
                    best = candidate
                    nodes = list(current.graph.nodes())
                    removed_any = True
                    continue  # same start index: the list shifted left
            start += chunk
        if not removed_any:
            chunk //= 2
    return best


def _shrink_edges(
    case: ReproCase, check: CheckFn, budget: _Budget
) -> ReproCase | None:
    best: ReproCase | None = None
    current = case
    progress = True
    while progress and budget.left():
        progress = False
        for edge in list(current.graph.edges()):
            smaller = current.graph.copy()
            smaller.remove_edge(edge.src, edge.dst)
            candidate = current.with_graph(smaller)
            if _still_fails(candidate, check, budget):
                current = candidate
                best = candidate
                progress = True
                break
    return best


def _annotation_candidates(graph: CSDFG) -> Iterator[CSDFG]:
    for node in graph.nodes():
        if graph.time(node) > 1:
            out = graph.copy()
            out.add_node(node, 1)  # re-adding updates the time
            yield out
    for edge in graph.edges():
        if edge.volume > 1:
            out = graph.copy()
            out.remove_edge(edge.src, edge.dst)
            out.add_edge(edge.src, edge.dst, edge.delay, 1)
            yield out
        for delay in (0, 1):
            if edge.delay > delay:
                out = graph.copy()
                out.set_delay(edge.src, edge.dst, delay)
                if is_legal(out):  # delay cuts can zero out a cycle
                    yield out


def _shrink_annotations(
    case: ReproCase, check: CheckFn, budget: _Budget
) -> ReproCase | None:
    best: ReproCase | None = None
    current = case
    progress = True
    while progress and budget.left():
        progress = False
        for smaller in _annotation_candidates(current.graph):
            candidate = current.with_graph(smaller)
            if _still_fails(candidate, check, budget):
                current = candidate
                best = candidate
                progress = True
                break
    return best


def _config_candidates(cfg: CycloConfig) -> Iterator[CycloConfig]:
    iterations = cfg.iterations_for(1)
    if cfg.max_iterations is None or cfg.max_iterations > 1:
        yield replace(cfg, max_iterations=max(1, iterations // 2))
        yield replace(cfg, max_iterations=1)
    if cfg.pipelined_pes:
        yield replace(cfg, pipelined_pes=False)
    if cfg.remap_strategy != "implied":
        yield replace(cfg, remap_strategy="implied")
    if not cfg.relaxation:
        yield replace(cfg, relaxation=True)


def _shrink_config(
    case: ReproCase, check: CheckFn, budget: _Budget
) -> ReproCase | None:
    best: ReproCase | None = None
    current = case
    progress = True
    while progress and budget.left():
        progress = False
        for cfg in _config_candidates(current.config):
            candidate = replace(current, config=cfg)
            if _still_fails(candidate, check, budget):
                current = candidate
                best = candidate
                progress = True
                break
    return best


def _arch_candidates(spec: ArchSpec) -> Iterator[ArchSpec]:
    # same kind, fewer PEs (degradations do not survive a resize)
    for n in sorted(_VALID_PE_COUNTS[spec.kind]):
        if n < spec.num_pes:
            yield ArchSpec(spec.kind, n)
    # drop any degradation at the current size
    if spec.failed_pes or spec.failed_links:
        yield ArchSpec(spec.kind, spec.num_pes)
    # smallest machines of the structurally simplest kinds
    for kind in ("linear", "ring", "complete"):
        if kind != spec.kind:
            yield ArchSpec(kind, min(_VALID_PE_COUNTS[kind]))


def _shrink_arch(
    case: ReproCase, check: CheckFn, budget: _Budget
) -> ReproCase | None:
    best: ReproCase | None = None
    current = case
    progress = True
    while progress and budget.left():
        progress = False
        for spec in _arch_candidates(current.arch_spec):
            candidate = replace(current, arch_spec=spec)
            if _still_fails(candidate, check, budget):
                current = candidate
                best = candidate
                progress = True
                break
    return best
