"""repro.qa — property-based fuzzing, differential oracles, shrinking.

The correctness backstop of the scheduling pipeline (see
``docs/testing.md``): seeded random sampling of paper-legal CSDFGs and
architectures (:mod:`repro.qa.generate`), a property/metamorphic suite
run on every sample (:mod:`repro.qa.properties`), a delta-debugging
shrinker that turns failures into small JSON reproducers
(:mod:`repro.qa.shrink`, :mod:`repro.qa.case`) and the campaign driver
behind ``repro fuzz`` (:mod:`repro.qa.fuzz`).
"""

from repro.qa.case import ReproCase, load_cases, replay_case
from repro.qa.fuzz import FuzzReport, FuzzTrial, run_fuzz, trial_seed
from repro.qa.generate import (
    GRAPH_FAMILIES,
    SIZED_FAMILIES,
    ArchSpec,
    GraphProfile,
    sample_arch_spec,
    sample_config,
    sample_graph,
    sample_sized_graph,
)
from repro.qa.properties import (
    PROPERTIES,
    architecture_automorphism,
    check_all,
    check_property,
    design_criterion_violations,
)
from repro.qa.shrink import ShrinkResult, shrink_case

__all__ = [
    "ArchSpec",
    "FuzzReport",
    "FuzzTrial",
    "GRAPH_FAMILIES",
    "GraphProfile",
    "PROPERTIES",
    "ReproCase",
    "SIZED_FAMILIES",
    "ShrinkResult",
    "architecture_automorphism",
    "check_all",
    "check_property",
    "design_criterion_violations",
    "load_cases",
    "replay_case",
    "run_fuzz",
    "sample_arch_spec",
    "sample_config",
    "sample_graph",
    "sample_sized_graph",
    "shrink_case",
    "trial_seed",
]
