"""The property/metamorphic suite run on every fuzz sample.

Each property is a function ``(graph, arch, config, rng) -> list[str]``
returning human-readable violation strings (empty list == the property
holds).  Properties hold for *every* legal input, not just the curated
workloads:

``schedules-legal``
    Every schedule the pipeline produces — start-up, compacted (fast
    and reference engines), ETF, sequential — passes the ground-truth
    validator.
``design-criterion``
    The DESIGN correctness criterion re-checked *verbatim and
    independently* of the validator: for every edge,
    ``CB(v) + d·L >= CE(u) + M + 1`` with ``M`` recomputed from
    ``arch.hops`` and the cost model (oracle diversity: a bug in the
    validator's edge walk cannot hide here).
``engines-equivalent``
    The differential oracle: the fast-path engine and the verbatim
    reference engine must agree on lengths, placements, accept/reject
    traces, stop reasons and retimings.
``relabel-invariance``
    Renaming nodes through a string-order-preserving bijection must not
    change the optimiser's behaviour: same lengths, placements mapped
    exactly.  (Tie-breaks may depend on label *order*, never on label
    *content*.)
``pe-permutation``
    Pushing a schedule through a distance-preserving PE permutation (an
    automorphism of the topology that also preserves execution speeds)
    keeps it legal at the same length.
``retiming-legality``
    The optimiser's cumulative retiming is legal, reproduces its
    retimed graph exactly, and preserves every cycle invariant
    (iteration bound); a freshly scheduled retimed graph validates.
``bounds``
    Analytic brackets: every produced length is at least the iteration
    bound (and the work bound where it applies) and compaction never
    returns a best schedule longer than its start-up schedule; without
    relaxation, accepted pass lengths are monotone non-increasing
    (Theorem 4.4).  On tiny instances the exhaustive baseline
    (:func:`repro.baselines.exact.exact_minimum_length`) brackets the
    no-retiming schedulers from below.
``analyzer-agrees``
    The static analyzer (:mod:`repro.analyze`) agrees with the runtime:
    inputs it passes never yield a validator-illegal schedule (and its
    RA4xx certificate checker reaches the validator's verdict); inputs
    it rejects make the pipeline refuse with a typed error.
``kernels-agree``
    The two batched-kernel backends (:mod:`repro.core.kernels`) are
    exactly equal — comm-cost rows, PSL edge bounds and the per-PE
    anticipation folds, on data derived from the sampled graph and
    architecture (including degraded rows holding ``None``).  Vacuous
    when only one backend is importable.
``contention-legal``
    The two-phase contention pipeline
    (:func:`repro.core.pipeline.contention_aware_schedule`) with a
    sampled contention model: the winner validates under the contended
    cache it carries, the DESIGN criterion holds with ``M`` re-derived
    independently from hops x cost model x frozen occupancy, and the
    contended bill never exceeds the contention-blind baseline's.
``sanitizer-agrees``
    The in-process face of the dynamic determinism sanitizer
    (``repro sanitize``, :mod:`repro.analyze.sanitize`): running the
    pipeline twice on the same inputs yields byte-identical canonical
    schedule fingerprints, and (on small instances) the sharded
    restart driver agrees with itself across repeated runs — the
    cross-process ``PYTHONHASHSEED``/``--jobs`` perturbation of the
    same contract lives in the CI sanitize smoke.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from typing import Callable

from repro.arch.comm import (
    ContentionModel,
    ScaledContention,
    SerializedContention,
)
from repro.arch.contention import LinkOccupancy
from repro.arch.routing import route as _route
from repro.arch.topology import Architecture
from repro.baselines.etf import etf_schedule
from repro.baselines.exact import exact_minimum_length
from repro.baselines.sequential import sequential_schedule
from repro.core.config import CycloConfig
from repro.core.cyclo import CycloResult, cyclo_compact
from repro.core.pipeline import contention_aware_schedule
from repro.errors import QAError, SchedulingError
from repro.graph.csdfg import CSDFG
from repro.graph.properties import iteration_bound
from repro.perf.reference import reference_cyclo_compact
from repro.retiming.basic import apply_retiming, is_legal_retiming
from repro.schedule.table import ScheduleTable
from repro.schedule.validate import collect_violations

__all__ = [
    "PROPERTIES",
    "PropertyFn",
    "check_property",
    "check_all",
    "design_criterion_violations",
    "architecture_automorphism",
]

PropertyFn = Callable[
    [CSDFG, Architecture, CycloConfig, random.Random], list[str]
]


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _compact(
    graph: CSDFG, arch: Architecture, cfg: CycloConfig
) -> CycloResult:
    return cyclo_compact(graph, arch, config=cfg)


def design_criterion_violations(
    graph: CSDFG, arch: Architecture, schedule: ScheduleTable
) -> list[str]:
    """The DESIGN criterion, verbatim: ``CB(v) + d·L >= CE(u) + M + 1``.

    Deliberately *not* implemented via the validator: ``M`` comes
    straight from ``arch.hops`` and the cost model, ``CE`` from
    ``CB + t - 1``, so this is an independent oracle for the
    precedence/communication inequality.
    """
    problems: list[str] = []
    L = schedule.length
    for edge in graph.edges():
        if edge.src not in schedule or edge.dst not in schedule:
            problems.append(
                f"edge ({edge.src!r}, {edge.dst!r}): endpoint unscheduled"
            )
            continue
        pu = schedule.placement(edge.src)
        pv = schedule.placement(edge.dst)
        cb_v = pv.start
        ce_u = pu.start + pu.duration - 1
        m = arch.comm_model.cost(arch.hops(pu.pe, pv.pe), edge.volume)  # repro-lint: disable=RL103 (independent oracle)
        if cb_v + edge.delay * L < ce_u + m + 1:
            problems.append(
                f"design criterion: CB({edge.dst!r})={cb_v} + "
                f"{edge.delay}*{L} < CE({edge.src!r})={ce_u} + M={m} + 1"
            )
    return problems


def architecture_automorphism(
    arch: Architecture, rng: random.Random, *, attempts: int = 24
) -> list[int] | None:
    """A non-trivial distance- and speed-preserving PE permutation.

    Tries structured candidates (reversal, rotations) and random
    shuffles, returning the first permutation ``perm`` with
    ``hops(p, q) == hops(perm[p], perm[q])`` and equal time scales for
    every alive pair — or ``None`` when none is found (the identity is
    never returned: it would make the property vacuous).
    """
    n = arch.num_pes
    alive = [p for p in range(n) if arch.is_alive(p)]
    dist = arch.distance_matrix
    scales = arch.time_scales

    def valid(perm: list[int]) -> bool:
        for p in alive:
            if not arch.is_alive(perm[p]) or scales[p] != scales[perm[p]]:
                return False
        for p in alive:
            row = dist[p]
            prow = dist[perm[p]]
            for q in alive:
                if row[q] != prow[perm[q]]:
                    return False
        return True

    candidates: list[list[int]] = [list(reversed(range(n)))]
    for shift in (1, 2, n // 2):
        if 0 < shift < n:
            candidates.append([(p + shift) % n for p in range(n)])
    for _ in range(attempts):
        shuffled = list(range(n))
        rng.shuffle(shuffled)
        candidates.append(shuffled)
    identity = list(range(n))
    for perm in candidates:
        if perm != identity and valid(perm):
            return perm
    return None


def _permuted(schedule: ScheduleTable, perm: list[int]) -> ScheduleTable:
    out = ScheduleTable(
        schedule.num_pes, name=f"{schedule.name}:permuted"
    )
    for p in schedule.placements():
        out.place(p.node, perm[p.pe], p.start, p.duration, p.occupancy)
    out.set_length(max(schedule.length, out.makespan))
    return out


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
def prop_schedules_legal(
    graph: CSDFG, arch: Architecture, cfg: CycloConfig, rng: random.Random
) -> list[str]:
    problems: list[str] = []
    result = _compact(graph, arch, cfg)

    def check(label: str, g: CSDFG, schedule: ScheduleTable, *, pipelined):
        for v in collect_violations(g, arch, schedule, pipelined_pes=pipelined):
            problems.append(f"{label}: {v}")

    check("startup", graph, result.initial_schedule, pipelined=cfg.pipelined_pes)
    check("compacted", result.graph, result.schedule, pipelined=cfg.pipelined_pes)
    if result.final_schedule is not None and result.final_graph is not None:
        check(
            "final-working",
            result.final_graph,
            result.final_schedule,
            pipelined=cfg.pipelined_pes,
        )
    if not arch.is_heterogeneous and all(arch.is_alive(p) for p in range(arch.num_pes)):
        check("etf", graph, etf_schedule(graph, arch), pipelined=False)
    check("sequential", graph, sequential_schedule(graph, arch), pipelined=False)
    return problems


def prop_design_criterion(
    graph: CSDFG, arch: Architecture, cfg: CycloConfig, rng: random.Random
) -> list[str]:
    problems: list[str] = []
    result = _compact(graph, arch, cfg)
    for label, g, schedule in (
        ("startup", graph, result.initial_schedule),
        ("compacted", result.graph, result.schedule),
    ):
        for v in design_criterion_violations(g, arch, schedule):
            problems.append(f"{label}: {v}")
    return problems


def prop_engines_equivalent(
    graph: CSDFG, arch: Architecture, cfg: CycloConfig, rng: random.Random
) -> list[str]:
    fast = cyclo_compact(graph, arch, config=cfg)
    ref = reference_cyclo_compact(graph, arch, config=cfg)
    problems: list[str] = []
    if fast.initial_length != ref.initial_length:
        problems.append(
            f"initial length: fast {fast.initial_length} != "
            f"reference {ref.initial_length}"
        )
    if fast.final_length != ref.final_length:
        problems.append(
            f"final length: fast {fast.final_length} != "
            f"reference {ref.final_length}"
        )
    if not fast.initial_schedule.same_placements(ref.initial_schedule):
        problems.append("initial placements differ between engines")
    if not fast.schedule.same_placements(ref.schedule):
        problems.append("compacted placements differ between engines")
    if fast.trace != ref.trace:
        problems.append("accept/reject traces differ between engines")
    if fast.stop_reason != ref.stop_reason:
        problems.append(
            f"stop reason: fast {fast.stop_reason!r} != "
            f"reference {ref.stop_reason!r}"
        )
    if fast.retiming != ref.retiming:
        problems.append("cumulative retimings differ between engines")
    return problems


def prop_relabel_invariance(
    graph: CSDFG, arch: Architecture, cfg: CycloConfig, rng: random.Random
) -> list[str]:
    # a string-order-preserving bijection: sorted old labels map to
    # fresh labels that sort the same way, so every str(v) tie-break
    # compares identically and only label *content* changes
    ordered = sorted(graph.nodes(), key=str)
    mapping = {old: f"q{i:04d}" for i, old in enumerate(ordered)}
    relabelled = graph.relabel(mapping, name=graph.name)

    base = _compact(graph, arch, cfg)
    other = _compact(relabelled, arch, cfg)
    problems: list[str] = []
    if (base.initial_length, base.final_length) != (
        other.initial_length,
        other.final_length,
    ):
        problems.append(
            f"lengths changed under relabelling: "
            f"{base.initial_length}->{base.final_length} vs "
            f"{other.initial_length}->{other.final_length}"
        )
        return problems
    for node in graph.nodes():
        p = base.schedule.placement(node)
        q = other.schedule.placement(mapping[node])
        if (p.pe, p.start, p.duration) != (q.pe, q.start, q.duration):
            problems.append(
                f"placement of {node!r} moved under relabelling: "
                f"(pe{p.pe + 1}, cs{p.start}) vs (pe{q.pe + 1}, cs{q.start})"
            )
    return problems


def prop_pe_permutation(
    graph: CSDFG, arch: Architecture, cfg: CycloConfig, rng: random.Random
) -> list[str]:
    perm = architecture_automorphism(arch, rng)
    if perm is None:
        return []  # no non-trivial automorphism found: vacuously holds
    result = _compact(graph, arch, cfg)
    problems: list[str] = []
    for label, g, schedule in (
        ("startup", graph, result.initial_schedule),
        ("compacted", result.graph, result.schedule),
    ):
        permuted = _permuted(schedule, perm)
        if permuted.length != schedule.length:
            problems.append(
                f"{label}: permuted length {permuted.length} != "
                f"{schedule.length}"
            )
        for v in collect_violations(
            g, arch, permuted, pipelined_pes=cfg.pipelined_pes
        ):
            problems.append(f"{label} under PE permutation {perm}: {v}")
    return problems


def prop_retiming_legality(
    graph: CSDFG, arch: Architecture, cfg: CycloConfig, rng: random.Random
) -> list[str]:
    result = _compact(graph, arch, cfg)
    problems: list[str] = []
    if not is_legal_retiming(graph, result.retiming):
        problems.append("optimiser returned an illegal cumulative retiming")
        return problems
    retimed = apply_retiming(graph, result.retiming)
    if not retimed.structurally_equal(result.graph):
        problems.append(
            "result.graph != apply_retiming(input, result.retiming)"
        )
    if iteration_bound(retimed) != iteration_bound(graph):
        problems.append(
            f"retiming changed the iteration bound: "
            f"{iteration_bound(graph)} -> {iteration_bound(retimed)}"
        )
    # a legally retimed graph must still schedule to a legal table
    fresh = _compact(retimed, arch, cfg)
    for v in collect_violations(
        fresh.graph, arch, fresh.schedule, pipelined_pes=cfg.pipelined_pes
    ):
        problems.append(f"schedule of retimed graph: {v}")
    return problems


def prop_bounds(
    graph: CSDFG, arch: Architecture, cfg: CycloConfig, rng: random.Random
) -> list[str]:
    problems: list[str] = []
    result = _compact(graph, arch, cfg)
    bound = iteration_bound(graph)
    floor = max(1, math.ceil(bound)) if bound > 0 else 1
    if result.final_length < floor:
        problems.append(
            f"final length {result.final_length} beats the iteration "
            f"bound {bound}"
        )
    if result.final_length > result.initial_length:
        problems.append(
            f"best schedule ({result.final_length}) is longer than the "
            f"start-up schedule ({result.initial_length})"
        )
    alive = [p for p in range(arch.num_pes) if arch.is_alive(p)]
    if not cfg.pipelined_pes and not arch.is_heterogeneous:
        work_bound = -(-graph.total_work() // max(1, len(alive)))
        if result.final_length < work_bound:
            problems.append(
                f"final length {result.final_length} beats the work "
                f"bound {work_bound}"
            )
    if not cfg.relaxation:
        lengths = [
            r.length_after for r in result.trace.records if r.accepted
        ]
        previous = result.initial_length
        for length in lengths:
            if length > previous:
                problems.append(
                    "Theorem 4.4 violated: accepted pass grew the "
                    f"schedule {previous} -> {length} without relaxation"
                )
                break
            previous = length
    problems.extend(_exact_bracket(graph, arch, cfg, result))
    return problems


def _exact_bracket(
    graph: CSDFG,
    arch: Architecture,
    cfg: CycloConfig,
    result: CycloResult,
) -> list[str]:
    """Exhaustive-search bracket, only where it is tractable."""
    if (
        graph.num_nodes > 5
        or arch.num_pes > 4
        or cfg.pipelined_pes
        or arch.is_heterogeneous
        or graph.total_work() > 12
        or any(not arch.is_alive(p) for p in range(arch.num_pes))
    ):
        return []
    try:
        optimum, _ = exact_minimum_length(graph, arch, node_budget=200_000)
    except SchedulingError:
        return []  # search budget exhausted: no verdict
    problems = []
    if result.initial_length < optimum:
        problems.append(
            f"start-up length {result.initial_length} beats the exact "
            f"no-retiming minimum {optimum}"
        )
    etf_len = etf_schedule(graph, arch).length
    if etf_len < optimum:
        problems.append(
            f"ETF length {etf_len} beats the exact no-retiming "
            f"minimum {optimum}"
        )
    if Fraction(optimum) < iteration_bound(graph):
        problems.append(
            f"exact minimum {optimum} beats the iteration bound "
            f"{iteration_bound(graph)}"
        )
    return problems


def prop_analyzer_agrees(
    graph: CSDFG, arch: Architecture, cfg: CycloConfig, rng: random.Random
) -> list[str]:
    """The static analyzer and the runtime pipeline must agree.

    Analyzer-pass: the pipeline may refuse with a typed
    :class:`~repro.errors.ReproError`, but any schedule it *does*
    produce must be validator-legal, and the RA4xx certificate checker
    must reach the validator's verdict on it.  Analyzer-error: the
    pipeline must refuse, and with a typed error.
    """
    from repro.analyze import analyze_inputs, certify_schedule
    from repro.errors import ReproError

    report = analyze_inputs(graph, arch, config=cfg)
    if not report.ok:
        codes = ",".join(d.code for d in report.errors)
        try:
            _compact(graph, arch, cfg)
        except ReproError:
            return []
        except Exception as exc:
            return [
                f"analyzer rejected inputs ({codes}) but scheduling "
                f"raised untyped {type(exc).__name__}: {exc}"
            ]
        return [
            f"analyzer rejected inputs ({codes}) but scheduling succeeded"
        ]

    try:
        result = _compact(graph, arch, cfg)
    except ReproError:
        return []  # a typed refusal (budgets, recovery) is allowed
    except Exception as exc:
        return [
            f"analyzer passed inputs but scheduling raised untyped "
            f"{type(exc).__name__}: {exc}"
        ]
    problems: list[str] = []
    for label, g, schedule in (
        ("startup", graph, result.initial_schedule),
        ("compacted", result.graph, result.schedule),
    ):
        validator = collect_violations(
            g, arch, schedule, pipelined_pes=cfg.pipelined_pes
        )
        certificate = [
            d for d in certify_schedule(
                g, arch, schedule, pipelined_pes=cfg.pipelined_pes
            )
            if d.severity == "error"
        ]
        if validator:
            problems.append(
                f"{label}: analyzer passed inputs but the pipeline "
                f"produced a validator-illegal schedule: {validator[0]}"
            )
        if bool(validator) != bool(certificate):
            certs = ",".join(d.code for d in certificate) or "clean"
            problems.append(
                f"{label}: certificate checker ({certs}) and validator "
                f"({len(validator)} violation(s)) disagree"
            )
    return problems


def prop_kernels_agree(
    graph: CSDFG, arch: Architecture, cfg: CycloConfig, rng: random.Random
) -> list[str]:
    """Both kernel backends agree exactly on sample-derived inputs.

    Inputs come from the fuzz sample itself — the architecture's
    distance matrix and cost model, the graph's edge volumes and
    delays — so the comparison covers the value ranges the engine
    actually feeds the kernels, not synthetic ones.  Vacuously true
    when numpy is unavailable (or the python backend was forced).
    """
    from repro.core.kernels import np_kernels, py_kernels

    if np_kernels is None:
        return []
    problems: list[str] = []
    pes = list(arch.processors)
    n = arch.num_pes
    # the oracle needs the raw hop-cost model: comm_cost_row's cost_of
    # contract is per-hop-count, same as the cache's internal caller
    model_cost = arch.comm_model.cost  # repro-lint: disable=RL103
    dist = arch.distance_matrix
    volumes = sorted({e.volume for e in graph.edges()}) or [1]

    def check(kernel: str, a, b, detail: str) -> None:
        if a != b:
            problems.append(
                f"{kernel} backends disagree ({detail}): "
                f"python={a!r} numpy={b!r}"
            )

    for src in rng.sample(pes, min(3, len(pes))):
        hops_row = [int(dist[src][p]) for p in range(n)]
        for vol in volumes:
            def cost_of(hops: int, _vol: int = vol) -> int:
                return model_cost(hops, _vol)

            check(
                "comm_cost_row",
                py_kernels.comm_cost_row(hops_row, pes, cost_of, n),
                np_kernels.comm_cost_row(hops_row, pes, cost_of, n),
                f"src={src} volume={vol}",
            )

    edges = list(graph.edges())
    if edges:
        finishes = [rng.randint(0, 30) for _ in edges]
        comms = [
            model_cost(rng.randint(0, arch.diameter), e.volume)
            for e in edges
        ]
        starts = [rng.randint(0, 30) for _ in edges]
        delays = [e.delay for e in edges]
        check(
            "edge_bounds",
            py_kernels.edge_bounds(finishes, comms, starts, delays),
            np_kernels.edge_bounds(finishes, comms, starts, delays),
            f"{len(edges)} edges",
        )

    rows_consts = [
        (
            [
                model_cost(int(dist[rng.choice(pes)][p]), rng.choice(volumes))
                for p in range(n)
            ],
            rng.randint(0, 10),
        )
        for _ in range(3)
    ]
    base = rng.randint(0, 5)
    check(
        "fold_max",
        py_kernels.fold_max(rows_consts, pes, base),
        np_kernels.fold_max(rows_consts, pes, base),
        f"{len(rows_consts)} rows, base={base}",
    )
    check(
        "fold_min",
        py_kernels.fold_min(rows_consts, pes),
        np_kernels.fold_min(rows_consts, pes),
        f"{len(rows_consts)} rows",
    )
    if n > 1:
        # degraded topology: one dead PE's entries are None and the PE
        # is excluded from the gather — numpy must fall back, outputs
        # must still match exactly
        dead = rng.choice(pes)
        alive = [p for p in pes if p != dead]
        degraded = [
            ([None if p == dead else v for p, v in enumerate(row)], const)
            for row, const in rows_consts
        ]
        check(
            "fold_max",
            py_kernels.fold_max(degraded, alive, base),
            np_kernels.fold_max(degraded, alive, base),
            f"degraded pe={dead}",
        )
        check(
            "fold_min",
            py_kernels.fold_min(degraded, alive),
            np_kernels.fold_min(degraded, alive),
            f"degraded pe={dead}",
        )
    return problems


def contended_design_criterion_violations(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    model: ContentionModel,
    occupancy: LinkOccupancy | None,
) -> list[str]:
    """The DESIGN criterion under contended pricing, re-derived
    independently of the cache: ``M = price(base, load)`` with ``base``
    straight from ``arch.hops`` x the cost model and ``load`` read off
    the frozen occupancy's per-link ledger along the deterministic
    route.  ``occupancy=None`` degrades to the contention-free oracle.
    """
    if occupancy is None:
        return design_criterion_violations(graph, arch, schedule)
    loads = occupancy.loads
    problems: list[str] = []
    L = schedule.length
    for edge in graph.edges():
        if edge.src not in schedule or edge.dst not in schedule:
            problems.append(
                f"edge ({edge.src!r}, {edge.dst!r}): endpoint unscheduled"
            )
            continue
        pu = schedule.placement(edge.src)
        pv = schedule.placement(edge.dst)
        cb_v = pv.start
        ce_u = pu.start + pu.duration - 1
        base = arch.comm_model.cost(arch.hops(pu.pe, pv.pe), edge.volume)  # repro-lint: disable=RL103 (independent oracle)
        if base == 0:
            m = 0
        else:
            path = _route(arch, pu.pe, pv.pe)
            load = max(
                (
                    loads.get((min(a, b), max(a, b)), 0)
                    for a, b in zip(path, path[1:])
                ),
                default=0,
            )
            m = model.price(base, load)
        if cb_v + edge.delay * L < ce_u + m + 1:
            problems.append(
                f"contended design criterion: CB({edge.dst!r})={cb_v} + "
                f"{edge.delay}*{L} < CE({edge.src!r})={ce_u} + M={m} + 1"
            )
    return problems


def prop_contention_legal(
    graph: CSDFG,
    arch: Architecture,
    cfg: CycloConfig,
    rng: random.Random,
) -> list[str]:
    """Contention-aware scheduling stays legal and never loses to the
    contention-blind baseline on its own metric."""
    if rng.random() < 0.7:
        model = SerializedContention(weight=1 + rng.randrange(3))
    else:
        model = ScaledContention(weight=1 + rng.randrange(8))
    result = contention_aware_schedule(
        graph, arch, config=cfg, model=model, rounds=1
    )
    problems: list[str] = []

    # the winner must validate under exactly the pricing it carries
    for violation in collect_violations(
        result.graph,
        arch,
        result.schedule,
        pipelined_pes=cfg.pipelined_pes,
        comm=result.comm,
    ):
        problems.append(f"[{model.name}] contended validator: {violation}")

    # DESIGN criterion with M re-derived independently of the cache
    occupancy = result.comm.occupancy if result.comm is not None else None
    for violation in contended_design_criterion_violations(
        result.graph, arch, result.schedule, model, occupancy
    ):
        problems.append(f"[{model.name}] {violation}")

    # the baseline competes, so the winner can never bill higher
    if result.final_cost > result.blind_cost:
        problems.append(
            f"[{model.name}] contended bill regressed: aware winner costs "
            f"{result.final_cost}, blind baseline {result.blind_cost}"
        )
    return problems


def prop_sanitizer_agrees(
    graph: CSDFG,
    arch: Architecture,
    cfg: CycloConfig,
    rng: random.Random,
) -> list[str]:
    """Double-run determinism, in process: same inputs, byte-identical
    canonical fingerprints (the ``repro sanitize`` contract)."""
    from repro.analyze.sanitize import schedule_fingerprint

    problems: list[str] = []
    first = cyclo_compact(graph, arch, config=cfg)
    second = cyclo_compact(graph, arch, config=cfg)
    fp_a = schedule_fingerprint(first.schedule)
    fp_b = schedule_fingerprint(second.schedule)
    if fp_a != fp_b:
        problems.append(
            f"cyclo_compact is not deterministic: {fp_a!r} != {fp_b!r}"
        )
    # the sharded restart driver must agree with itself too; gate to
    # small instances so a fuzz trial stays cheap
    if graph.num_nodes <= 8:
        from repro.perf.restarts import best_of_restarts

        seed = rng.randrange(2**31)
        runs = [
            best_of_restarts(
                graph, arch, config=cfg, restarts=2, seed=seed, jobs=1
            )
            for _ in range(2)
        ]
        fps = [schedule_fingerprint(r.schedule) for r in runs]
        if fps[0] != fps[1]:
            problems.append(
                f"best_of_restarts(seed={seed}) is not deterministic: "
                f"{fps[0]!r} != {fps[1]!r}"
            )
        if runs[0].winner.index != runs[1].winner.index:
            problems.append(
                f"best_of_restarts(seed={seed}) winner drifted: "
                f"{runs[0].winner.index} != {runs[1].winner.index}"
            )
    return problems


#: Registry of every property, in the order the fuzzer runs them.
PROPERTIES: dict[str, PropertyFn] = {
    "schedules-legal": prop_schedules_legal,
    "design-criterion": prop_design_criterion,
    "engines-equivalent": prop_engines_equivalent,
    "relabel-invariance": prop_relabel_invariance,
    "pe-permutation": prop_pe_permutation,
    "retiming-legality": prop_retiming_legality,
    "bounds": prop_bounds,
    "analyzer-agrees": prop_analyzer_agrees,
    "kernels-agree": prop_kernels_agree,
    "contention-legal": prop_contention_legal,
    "sanitizer-agrees": prop_sanitizer_agrees,
}


def check_property(
    name: str,
    graph: CSDFG,
    arch: Architecture,
    cfg: CycloConfig,
    rng: random.Random | int = 0,
) -> list[str]:
    """Run one named property; violation strings are prefixed with it."""
    try:
        prop = PROPERTIES[name]
    except KeyError:
        raise QAError(
            f"unknown property {name!r}; known: {list(PROPERTIES)}"
        ) from None
    if not isinstance(rng, random.Random):
        rng = random.Random(rng)
    return [f"[{name}] {v}" for v in prop(graph, arch, cfg, rng)]


def check_all(
    graph: CSDFG,
    arch: Architecture,
    cfg: CycloConfig,
    rng: random.Random | int = 0,
    *,
    properties: tuple[str, ...] | None = None,
) -> list[str]:
    """Run every property (or ``properties``) on one sample."""
    if not isinstance(rng, random.Random):
        rng = random.Random(rng)
    names = properties if properties is not None else tuple(PROPERTIES)
    violations: list[str] = []
    for name in names:
        violations.extend(check_property(name, graph, arch, cfg, rng))
    return violations
