"""The fuzzing campaign driver behind ``repro fuzz``.

Each trial is fully determined by ``(campaign seed, trial index)``: the
trial seed derives a :class:`random.Random` that samples one
(graph, architecture, config) triple and drives every property's
auxiliary randomness.  Campaigns therefore replay exactly — across
re-runs *and* across worker processes: the trials fan out over
:func:`repro.perf.run_parallel`, which returns item-order results no
matter which worker finished first, so ``--jobs 8`` finds byte-for-byte
the same failures as a serial run.

A failing trial is immediately minimised by the delta-debugging
shrinker and serialized as a :class:`~repro.qa.case.ReproCase`; the
campaign report carries both the raw and the shrunk JSON so drivers
(CLI, CI) can persist them for replay.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs import metrics, span
from repro.perf.parallel import run_parallel
from repro.qa.case import ReproCase, replay_case
from repro.qa.generate import (
    GraphProfile,
    sample_arch_spec,
    sample_config,
    sample_graph,
)
from repro.qa.properties import PROPERTIES
from repro.qa.shrink import shrink_case

import random

__all__ = ["FuzzTrial", "FuzzReport", "run_fuzz", "trial_seed"]


def trial_seed(seed: int, index: int) -> int:
    """The derived seed of trial ``index`` (a splitmix-style mix, so
    neighbouring indices land far apart)."""
    x = (seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & (
        (1 << 64) - 1
    )
    x ^= x >> 31
    return x & 0x7FFFFFFF


@dataclass
class FuzzTrial:
    """One trial and what it found."""

    index: int
    seed: int
    graph_name: str
    num_nodes: int
    num_edges: int
    arch: str
    outcome: str  # "ok" | "failed"
    violations: list[str] = field(default_factory=list)
    case_json: str | None = None
    shrunk_json: str | None = None
    shrunk_nodes: int | None = None
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


@dataclass
class FuzzReport:
    """Aggregate of one fuzz campaign."""

    seed: int
    trials: list[FuzzTrial] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    properties: tuple[str, ...] = ()

    @property
    def failures(self) -> list[FuzzTrial]:
        return [t for t in self.trials if not t.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        verdict = (
            "ALL PROPERTIES HOLD"
            if self.ok
            else f"{len(self.failures)} FAILING TRIAL(S)"
        )
        lines = [
            f"fuzz campaign (seed {self.seed}): {len(self.trials)} "
            f"trial(s) in {self.elapsed_seconds:.1f}s — {verdict}",
            f"  properties: {', '.join(self.properties)}",
        ]
        if self.trials:
            nodes = [t.num_nodes for t in self.trials]
            lines.append(
                f"  graphs: {min(nodes)}-{max(nodes)} nodes, "
                f"architectures: "
                f"{len({t.arch for t in self.trials})} distinct"
            )
        for t in self.failures:
            lines.append(
                f"  trial {t.index} (seed {t.seed}, {t.graph_name} on "
                f"{t.arch}):"
            )
            for v in t.violations[:4]:
                lines.append(f"    {v}")
            if len(t.violations) > 4:
                lines.append(f"    ... {len(t.violations) - 4} more")
            if t.shrunk_nodes is not None:
                lines.append(
                    f"    shrunk to {t.shrunk_nodes} node(s); replay "
                    f"with `repro fuzz --replay <case.json>`"
                )
        return "\n".join(lines)


def _run_trial(params: tuple) -> FuzzTrial:
    """One seeded trial (module-level: picklable for ``jobs > 1``)."""
    seed, index, profile, properties, do_shrink, max_pes, degraded_prob = (
        params
    )
    tseed = trial_seed(seed, index)
    rng = random.Random(tseed)
    graph = sample_graph(rng, profile)
    spec = sample_arch_spec(
        rng, max_pes=max_pes, degraded_prob=degraded_prob
    )
    cfg = sample_config(rng)
    started = time.perf_counter()
    metrics.inc("qa.fuzz.trials")

    failed_prop: str | None = None
    violations: list[str] = []
    for name in properties:
        case = ReproCase(
            graph=graph,
            arch_spec=spec,
            config=cfg,
            prop=name,
            seed=tseed,
            note=f"fuzz seed={seed} trial={index}",
        )
        found = replay_case(case)
        if found:
            failed_prop = name
            violations = found
            break

    trial = FuzzTrial(
        index=index,
        seed=tseed,
        graph_name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        arch=f"{spec.kind}x{spec.num_pes}",
        outcome="ok" if failed_prop is None else "failed",
        violations=violations,
    )
    metrics.inc(f"qa.fuzz.outcome.{trial.outcome}")
    if failed_prop is not None:
        metrics.inc("qa.fuzz.failures")
        failing = ReproCase(
            graph=graph,
            arch_spec=spec,
            config=cfg,
            prop=failed_prop,
            seed=tseed,
            note=f"fuzz seed={seed} trial={index}",
        )
        trial.case_json = failing.to_json()
        if do_shrink:
            shrunk = shrink_case(failing)
            trial.shrunk_json = shrunk.case.to_json()
            trial.shrunk_nodes = shrunk.case.graph.num_nodes
            metrics.inc("qa.fuzz.shrink_attempts", shrunk.attempts)
    trial.elapsed_seconds = time.perf_counter() - started
    metrics.observe("qa.fuzz.trial_seconds", trial.elapsed_seconds)
    return trial


def run_fuzz(
    *,
    trials: int = 100,
    seed: int = 0,
    properties: tuple[str, ...] | None = None,
    profile: GraphProfile | None = None,
    max_pes: int = 8,
    degraded_prob: float = 0.0,
    shrink: bool = True,
    time_budget_seconds: float | None = None,
    jobs: int = 1,
) -> FuzzReport:
    """Run ``trials`` seeded property trials and aggregate the outcomes.

    ``time_budget_seconds`` stops launching new trials once the budget
    is spent (CI smoke mode); the trials that ran are a deterministic
    prefix of the full campaign.  ``jobs > 1`` fans trials out over a
    process pool with identical outcomes.
    """
    names = properties if properties is not None else tuple(PROPERTIES)
    prof = profile if profile is not None else GraphProfile()
    started = time.monotonic()
    with span("fuzz_campaign", seed=seed, trials=trials, jobs=jobs) as sp:
        params = [
            (seed, index, prof, names, shrink, max_pes, degraded_prob)
            for index in range(trials)
        ]
        results = run_parallel(
            _run_trial,
            params,
            jobs=jobs,
            time_budget_seconds=time_budget_seconds,
        )
        report = FuzzReport(
            seed=seed,
            trials=results,
            elapsed_seconds=time.monotonic() - started,
            properties=names,
        )
        sp.add(trials=len(report.trials), failures=len(report.failures))
    return report
