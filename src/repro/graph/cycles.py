"""Cycle structure analysis: SCC decomposition and Karp's algorithm.

Complements :mod:`repro.graph.properties` with the classical machinery
for recursive data flow graphs:

* :func:`strongly_connected_components` — Tarjan's algorithm (iterative),
  separating the *recursive core* (non-trivial SCCs, whose cycles bound
  the throughput) from the feed-forward part (which retiming can
  pipeline arbitrarily),
* :func:`scc_condensation` — the DAG of SCCs,
* :func:`karp_maximum_cycle_ratio` — Karp-style maximum cycle ratio
  (time over delay) per SCC, a third independent implementation of the
  iteration bound used to cross-check
  :func:`repro.graph.properties.iteration_bound` in the tests.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import GraphError
from repro.graph.csdfg import CSDFG, Node

__all__ = [
    "strongly_connected_components",
    "scc_condensation",
    "recursive_core",
    "karp_maximum_cycle_ratio",
]


def strongly_connected_components(graph: CSDFG) -> list[list[Node]]:
    """Tarjan's SCC algorithm, iterative (safe for deep graphs).

    Returns components in reverse topological order of the
    condensation (Tarjan's natural emission order); node order inside
    a component follows the stack.
    """
    index_of: dict[Node, int] = {}
    low: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        work: list[tuple[Node, list[Node], int]] = [
            (root, list(graph.successors(root)), 0)
        ]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs, pos = work.pop()
            advanced = False
            while pos < len(succs):
                nxt = succs[pos]
                pos += 1
                if nxt not in index_of:
                    work.append((node, succs, pos))
                    index_of[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, list(graph.successors(nxt)), 0))
                    advanced = True
                    break
                if nxt in on_stack and index_of[nxt] < low[node]:
                    low[node] = index_of[nxt]
            if advanced:
                continue
            if low[node] == index_of[node]:
                component: list[Node] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
    return components


def scc_condensation(graph: CSDFG) -> tuple[list[list[Node]], list[tuple[int, int]]]:
    """The condensation DAG: (components, inter-component edges).

    Edge ``(i, j)`` means some dependence runs from component ``i`` to
    component ``j``; duplicates are removed.
    """
    components = strongly_connected_components(graph)
    index: dict[Node, int] = {}
    for k, comp in enumerate(components):
        for v in comp:
            index[v] = k
    edges = {
        (index[e.src], index[e.dst])
        for e in graph.edges()
        if index[e.src] != index[e.dst]
    }
    return components, sorted(edges)


def recursive_core(graph: CSDFG) -> list[list[Node]]:
    """Non-trivial SCCs (size > 1 or a self-loop): the recursion that
    bounds the achievable initiation interval."""
    return [
        comp
        for comp in strongly_connected_components(graph)
        if len(comp) > 1 or graph.has_edge(comp[0], comp[0])
    ]


def karp_maximum_cycle_ratio(graph: CSDFG) -> Fraction:
    """Maximum cycle ratio ``max_C (sum t / sum d)`` via a Karp-style
    parametric formulation per SCC.

    For each non-trivial SCC, runs the classical Karp recurrence on the
    edge weights ``(time, delay)``: ``D_k(v)`` is the maximum of
    ``time - lambda * delay`` over k-edge walks for the critical
    ``lambda``; here we use the exact two-dimensional variant that
    tracks (total time, total delay) pairs of best k-edge walks and
    takes the max over cycles closed at level n.  Exponentially safer
    than cycle enumeration and fully exact with Fractions.

    Raises :class:`GraphError` on a zero-delay cycle (illegal CSDFG).
    """
    best = Fraction(0)
    for comp in recursive_core(graph):
        ratio = _karp_scc(graph, comp)
        if ratio > best:
            best = ratio
    return best


def _karp_scc(graph: CSDFG, comp: list[Node]) -> Fraction:
    """Binary-search the critical ratio of one SCC using Bellman–Ford
    positivity tests with exact rational arithmetic."""
    members = set(comp)
    edges = [
        (e.src, e.dst, graph.time(e.src), e.delay)
        for e in graph.edges()
        if e.src in members and e.dst in members
    ]
    total_time = sum(graph.time(v) for v in comp)
    total_delay = sum(d for _, _, _, d in edges)
    if total_delay == 0:
        raise GraphError("zero-delay cycle in SCC: illegal CSDFG")

    def has_positive_cycle(lam: Fraction) -> bool:
        """Is there a cycle with sum(t) - lam*sum(d) > 0?

        True exactly when ``lam`` lies strictly below the SCC's
        maximum cycle ratio (Bellman–Ford longest-path divergence).
        """
        dist = {v: Fraction(0) for v in comp}
        for _ in range(len(comp)):
            changed = False
            for u, v, t, d in edges:
                cand = dist[u] + t - lam * d
                if cand > dist[v]:
                    dist[v] = cand
                    changed = True
            if not changed:
                return False
        return True

    # the ratio is a fraction p/q with q <= total_delay; bisect until
    # the bracket (lo, hi] isolates a single such fraction, then snap
    lo, hi = Fraction(0), Fraction(total_time) + 1
    eps = Fraction(1, total_delay * total_delay + 1)
    while hi - lo >= Fraction(1, 2 * total_delay * total_delay):
        mid = (lo + hi) / 2
        if has_positive_cycle(mid):
            lo = mid
        else:
            hi = mid
    candidate = _snap(lo, hi, total_delay)
    if (
        candidate is not None
        and not has_positive_cycle(candidate)
        and has_positive_cycle(candidate - eps)
    ):
        return candidate
    # defensive fallback: scan nearby fractions
    for den in range(1, total_delay + 1):
        num = round(lo * den)
        for delta in (-1, 0, 1):
            f = Fraction(num + delta, den)
            if f > 0 and not has_positive_cycle(f) and has_positive_cycle(
                f - eps
            ):
                return f
    raise GraphError("could not isolate the maximum cycle ratio")


def _snap(lo: Fraction, hi: Fraction, max_den: int) -> Fraction | None:
    """The unique fraction with denominator <= max_den inside (lo, hi]
    when the interval is narrow enough."""
    mid = (lo + hi) / 2
    return mid.limit_denominator(max_den)
