"""Structural validation of CSDFGs.

A CSDFG is *legal* (paper, §2) when the total delay along every directed
cycle is strictly positive — equivalently, when the zero-delay subgraph is
acyclic.  :func:`validate_csdfg` checks this plus the attribute domains
(``t >= 1``, ``d >= 0``, ``c >= 1``, which the constructors already
enforce) and optional structural expectations such as connectivity.
"""

from __future__ import annotations

from repro.errors import GraphValidationError
from repro.graph.csdfg import CSDFG, Node

__all__ = [
    "find_zero_delay_cycle",
    "topological_order_zero_delay",
    "collect_issues",
    "validate_csdfg",
    "is_legal",
]


def topological_order_zero_delay(graph: CSDFG) -> list[Node]:
    """Topological order of the zero-delay subgraph (Kahn's algorithm).

    Raises :class:`GraphValidationError` when a zero-delay cycle exists,
    naming one offending cycle.
    """
    # hot path (called once per remapping pass): walk the adjacency
    # dicts directly instead of paying a generator frame per edge
    succ = graph._succ
    indeg: dict[Node, int] = dict.fromkeys(graph._time, 0)
    for adj in succ.values():
        for edge in adj.values():
            if edge.delay == 0:
                indeg[edge.dst] += 1
    frontier = [v for v, k in indeg.items() if k == 0]
    order: list[Node] = []
    append = order.append
    while frontier:
        node = frontier.pop()
        append(node)
        for edge in succ[node].values():
            if edge.delay == 0:
                dst = edge.dst
                remaining = indeg[dst] - 1
                indeg[dst] = remaining
                if remaining == 0:
                    frontier.append(dst)
    if len(order) != graph.num_nodes:
        cycle = find_zero_delay_cycle(graph)
        raise GraphValidationError(
            [f"zero-delay cycle detected: {' -> '.join(map(str, cycle))}"]
        )
    return order


def find_zero_delay_cycle(graph: CSDFG) -> list[Node]:
    """Return the node sequence of one zero-delay cycle, or ``[]``.

    Iterative DFS with colouring; the returned list repeats the first
    node at the end (``[a, b, c, a]``).
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour: dict[Node, int] = {v: WHITE for v in graph.nodes()}
    parent: dict[Node, Node] = {}

    for start in graph.nodes():
        if colour[start] != WHITE:
            continue
        stack = [(start, _zero_succ(graph, start))]
        colour[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if colour[nxt] == WHITE:
                    colour[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, _zero_succ(graph, nxt)))
                    advanced = True
                    break
                if colour[nxt] == GREY:
                    # reconstruct the cycle nxt ... node -> nxt
                    cycle = [nxt]
                    cur = node
                    while cur != nxt:
                        cycle.append(cur)
                        cur = parent[cur]
                    cycle.append(nxt)
                    cycle.reverse()
                    return cycle
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return []


def _zero_succ(graph: CSDFG, node: Node):
    return iter([e.dst for e in graph.out_edges(node) if e.delay == 0])


def collect_issues(
    graph: CSDFG,
    *,
    require_nonempty: bool = True,
    require_weakly_connected: bool = False,
) -> list[str]:
    """Gather every structural problem without raising.

    Parameters
    ----------
    require_nonempty:
        Flag an empty node set.
    require_weakly_connected:
        Flag a graph whose underlying undirected graph is disconnected
        (benchmark graphs are expected to be connected).
    """
    issues: list[str] = []
    if require_nonempty and graph.num_nodes == 0:
        issues.append("graph has no nodes")

    cycle = find_zero_delay_cycle(graph)
    if cycle:
        issues.append(
            "zero-delay cycle (illegal CSDFG): " + " -> ".join(map(str, cycle))
        )

    if require_weakly_connected and graph.num_nodes > 1:
        seen: set[Node] = set()
        start = next(graph.nodes())
        frontier = [start]
        seen.add(start)
        while frontier:
            node = frontier.pop()
            for nxt in list(graph.successors(node)) + list(graph.predecessors(node)):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        if len(seen) != graph.num_nodes:
            missing = sorted(str(v) for v in graph.nodes() if v not in seen)
            issues.append("graph is not weakly connected; unreached: " + ", ".join(missing))
    return issues


def validate_csdfg(
    graph: CSDFG,
    *,
    require_nonempty: bool = True,
    require_weakly_connected: bool = False,
) -> None:
    """Raise :class:`GraphValidationError` when the graph is malformed."""
    issues = collect_issues(
        graph,
        require_nonempty=require_nonempty,
        require_weakly_connected=require_weakly_connected,
    )
    if issues:
        raise GraphValidationError(issues)


def is_legal(graph: CSDFG) -> bool:
    """True when every cycle carries strictly positive total delay."""
    return not find_zero_delay_cycle(graph)
