"""Random and parametric CSDFG generators.

Used by the property-based test suite (hypothesis draws parameters and
seeds, these builders guarantee CSDFG legality by construction) and by
the scaling benchmarks.  All generators are deterministic given their
``seed``.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import GraphError
from repro.graph.csdfg import CSDFG

__all__ = [
    "random_csdfg",
    "random_dag",
    "layered_csdfg",
    "chain_csdfg",
    "ring_csdfg",
    "fork_join_csdfg",
]


def random_csdfg(
    num_nodes: int,
    *,
    seed: int = 0,
    edge_prob: float = 0.25,
    back_edge_prob: float = 0.15,
    max_time: int = 3,
    max_delay: int = 3,
    max_volume: int = 3,
    name: str | None = None,
) -> CSDFG:
    """Random legal cyclic CSDFG.

    Nodes are placed on a random total order; forward edges (w.r.t. the
    order) may carry zero delay, while backward edges always carry at
    least one delay — so the zero-delay subgraph is a sub-DAG of the
    order and the graph is legal by construction.
    """
    if num_nodes < 1:
        raise GraphError("num_nodes must be >= 1")
    rng = random.Random(seed)
    graph = CSDFG(name if name is not None else f"rand{num_nodes}-s{seed}")
    labels = [f"n{i}" for i in range(num_nodes)]
    for label in labels:
        graph.add_node(label, rng.randint(1, max_time))
    order = labels[:]
    rng.shuffle(order)
    index = {v: i for i, v in enumerate(order)}
    for u in labels:
        for v in labels:
            if u == v or graph.has_edge(u, v):
                continue
            if index[u] < index[v]:
                if rng.random() < edge_prob:
                    delay = rng.randint(0, max_delay)
                    graph.add_edge(u, v, delay, rng.randint(1, max_volume))
            else:
                if rng.random() < back_edge_prob:
                    delay = rng.randint(1, max(1, max_delay))
                    graph.add_edge(u, v, delay, rng.randint(1, max_volume))
    return graph


def random_dag(
    num_nodes: int,
    *,
    seed: int = 0,
    edge_prob: float = 0.3,
    max_time: int = 3,
    max_volume: int = 3,
    name: str | None = None,
) -> CSDFG:
    """Random acyclic CSDFG (all delays zero)."""
    return random_csdfg(
        num_nodes,
        seed=seed,
        edge_prob=edge_prob,
        back_edge_prob=0.0,
        max_time=max_time,
        max_delay=0,
        max_volume=max_volume,
        name=name if name is not None else f"dag{num_nodes}-s{seed}",
    )


def layered_csdfg(
    layer_sizes: Sequence[int],
    *,
    seed: int = 0,
    fanout: int = 2,
    feedback_edges: int = 1,
    feedback_delay: int = 2,
    max_time: int = 2,
    max_volume: int = 2,
    name: str | None = None,
) -> CSDFG:
    """Layered task graph (pipeline stages) with optional feedback loops.

    Each node in layer ``k`` feeds up to ``fanout`` random nodes of
    layer ``k+1`` with zero-delay edges; ``feedback_edges`` delayed
    edges run from the last layer back to the first, modelling the
    loop-carried state of an iterative kernel.
    """
    if not layer_sizes or any(s < 1 for s in layer_sizes):
        raise GraphError("layer_sizes must be non-empty positive integers")
    rng = random.Random(seed)
    graph = CSDFG(name if name is not None else f"layers{'x'.join(map(str, layer_sizes))}")
    layers: list[list[str]] = []
    for k, size in enumerate(layer_sizes):
        layer = [f"L{k}_{i}" for i in range(size)]
        for label in layer:
            graph.add_node(label, rng.randint(1, max_time))
        layers.append(layer)
    for k in range(len(layers) - 1):
        for u in layers[k]:
            targets = rng.sample(
                layers[k + 1], k=min(fanout, len(layers[k + 1]))
            )
            for v in targets:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v, 0, rng.randint(1, max_volume))
        # ensure every node of layer k+1 has a parent (connectivity)
        for v in layers[k + 1]:
            if graph.in_degree(v) == 0:
                u = rng.choice(layers[k])
                graph.add_edge(u, v, 0, rng.randint(1, max_volume))
    for _ in range(feedback_edges):
        u = rng.choice(layers[-1])
        v = rng.choice(layers[0])
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, feedback_delay, rng.randint(1, max_volume))
    return graph


def chain_csdfg(
    length: int,
    *,
    time: int = 1,
    volume: int = 1,
    loop_delay: int = 1,
    name: str | None = None,
) -> CSDFG:
    """A single dependence chain closed into a loop.

    ``n0 -> n1 -> ... -> n_{L-1} -> n0`` where only the closing edge
    carries ``loop_delay`` delays.  Its iteration bound is
    ``L * time / loop_delay``.
    """
    if length < 1:
        raise GraphError("length must be >= 1")
    graph = CSDFG(name if name is not None else f"chain{length}")
    labels = [f"n{i}" for i in range(length)]
    for label in labels:
        graph.add_node(label, time)
    for i in range(length - 1):
        graph.add_edge(labels[i], labels[i + 1], 0, volume)
    if length == 1:
        graph.add_edge(labels[0], labels[0], max(1, loop_delay), volume)
    else:
        graph.add_edge(labels[-1], labels[0], max(1, loop_delay), volume)
    return graph


def ring_csdfg(
    length: int,
    *,
    delay_per_edge: int = 1,
    time: int = 1,
    volume: int = 1,
    name: str | None = None,
) -> CSDFG:
    """A cycle where *every* edge carries ``delay_per_edge`` delays.

    Fully pipelineable: its iteration bound is
    ``length * time / (length * delay_per_edge)``.
    """
    if length < 2:
        raise GraphError("length must be >= 2")
    if delay_per_edge < 1:
        raise GraphError("delay_per_edge must be >= 1 for legality")
    graph = CSDFG(name if name is not None else f"ring{length}")
    labels = [f"n{i}" for i in range(length)]
    for label in labels:
        graph.add_node(label, time)
    for i in range(length):
        graph.add_edge(labels[i], labels[(i + 1) % length], delay_per_edge, volume)
    return graph


def fork_join_csdfg(
    width: int,
    *,
    stages: int = 1,
    time: int = 1,
    volume: int = 1,
    loop_delay: int = 1,
    name: str | None = None,
) -> CSDFG:
    """Fork–join kernels: source fans out to ``width`` parallel chains
    of ``stages`` nodes which join into a sink; the sink feeds the
    source back with ``loop_delay`` delays.

    Stresses the communication model: the fan-out/fan-in edges all
    cross processors in any width-exploiting schedule.
    """
    if width < 1 or stages < 1:
        raise GraphError("width and stages must be >= 1")
    graph = CSDFG(name if name is not None else f"forkjoin{width}x{stages}")
    graph.add_node("src", time)
    graph.add_node("sink", time)
    for w in range(width):
        prev = "src"
        for s in range(stages):
            node = f"b{w}_{s}"
            graph.add_node(node, time)
            graph.add_edge(prev, node, 0, volume)
            prev = node
        graph.add_edge(prev, "sink", 0, volume)
    graph.add_edge("sink", "src", max(1, loop_delay), volume)
    return graph
