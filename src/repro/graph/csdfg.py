"""Communication-sensitive data flow graphs (CSDFG).

The CSDFG is the input model of the ICPP'95 paper: a directed graph
``G = (V, E, d, t, c)`` where

* each node ``v`` is a computational task with execution time ``t(v) >= 1``
  control steps,
* each edge ``u -> v`` carries ``d(e) >= 0`` *delays* (the inter-iteration
  dependence distance: ``v`` at iteration ``j`` consumes the value produced
  by ``u`` at iteration ``j - d(e)``) and a *data volume* ``c(e) >= 1``
  (the number of units shipped when the endpoints execute on different
  processors).

A CSDFG is *legal* when every directed cycle carries a strictly positive
total delay; :mod:`repro.graph.validation` checks this.

The class is a thin, explicit adjacency structure rather than a networkx
wrapper: the scheduling inner loops touch predecessor/successor lists and
edge attributes millions of times, and attribute-dict indirection dominates
profiles.  :meth:`CSDFG.to_networkx` converts when graph-library algorithms
are wanted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from repro.errors import GraphError

__all__ = ["Edge", "CSDFG", "Node"]

#: Type alias for node identifiers.  Any hashable works; the bundled
#: workloads use short strings (``"A"``, ``"mul3"``).
Node = Hashable


@dataclass(frozen=True, slots=True)
class Edge:
    """A dependence edge ``src -> dst`` with its delay and data volume.

    Instances are immutable; mutating a delay (retiming) produces a new
    :class:`Edge` inside the owning graph.
    """

    src: Node
    dst: Node
    delay: int
    volume: int

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise GraphError(
                f"edge {self.src!r}->{self.dst!r}: delay must be >= 0, got {self.delay}"
            )
        if self.volume < 1:
            raise GraphError(
                f"edge {self.src!r}->{self.dst!r}: volume must be >= 1, got {self.volume}"
            )

    @property
    def key(self) -> tuple[Node, Node]:
        """The ``(src, dst)`` pair identifying this edge in its graph."""
        return (self.src, self.dst)

    def with_delay(self, delay: int) -> "Edge":
        """Return a copy of this edge carrying ``delay`` delays."""
        if delay < 0:
            raise GraphError(
                f"edge {self.src!r}->{self.dst!r}: delay must be >= 0, got {delay}"
            )
        # hot path for retiming: clone without re-entering the dataclass
        # machinery (volume was validated when this edge was built)
        clone = object.__new__(Edge)
        object.__setattr__(clone, "src", self.src)
        object.__setattr__(clone, "dst", self.dst)
        object.__setattr__(clone, "delay", delay)
        object.__setattr__(clone, "volume", self.volume)
        return clone


class CSDFG:
    """A mutable communication-sensitive data flow graph.

    Parameters
    ----------
    name:
        Free-form label used in reports and renderings.

    Notes
    -----
    At most one edge may connect an ordered node pair.  Parallel
    dependences collapse to a single edge in this model because only the
    tightest precedence constraint matters for scheduling; use
    :func:`repro.graph.transform.merge_parallel_edges` when building
    graphs from sources that may contain duplicates.
    """

    def __init__(self, name: str = "csdfg"):
        self.name = name
        self._time: dict[Node, int] = {}
        self._succ: dict[Node, dict[Node, Edge]] = {}
        self._pred: dict[Node, dict[Node, Edge]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, time: int = 1) -> Node:
        """Add a task ``node`` with execution ``time`` control steps.

        Re-adding an existing node updates its execution time.
        """
        if time < 1:
            raise GraphError(f"node {node!r}: execution time must be >= 1, got {time}")
        if node not in self._time:
            self._succ[node] = {}
            self._pred[node] = {}
        self._time[node] = int(time)
        return node

    def add_nodes(self, nodes: Iterable[Node], time: int = 1) -> None:
        """Add several nodes sharing the same execution time."""
        for node in nodes:
            self.add_node(node, time)

    def add_edge(self, src: Node, dst: Node, delay: int = 0, volume: int = 1) -> Edge:
        """Add the dependence edge ``src -> dst``.

        Endpoints must already exist (this catches typos in hand-built
        benchmark graphs early).  Adding a second edge over the same
        ordered pair is an error.
        """
        for endpoint in (src, dst):
            if endpoint not in self._time:
                raise GraphError(f"edge {src!r}->{dst!r}: unknown node {endpoint!r}")
        if dst in self._succ[src]:
            raise GraphError(f"duplicate edge {src!r}->{dst!r}")
        edge = Edge(src, dst, int(delay), int(volume))
        self._succ[src][dst] = edge
        self._pred[dst][src] = edge
        return edge

    def remove_edge(self, src: Node, dst: Node) -> Edge:
        """Remove and return the edge ``src -> dst``."""
        try:
            edge = self._succ[src].pop(dst)
        except KeyError:
            raise GraphError(f"no edge {src!r}->{dst!r}") from None
        del self._pred[dst][src]
        return edge

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge."""
        if node not in self._time:
            raise GraphError(f"unknown node {node!r}")
        for other in list(self._succ[node]):
            self.remove_edge(node, other)
        for other in list(self._pred[node]):
            self.remove_edge(other, node)
        del self._time[node]
        del self._succ[node]
        del self._pred[node]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._time)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def __len__(self) -> int:
        return len(self._time)

    def __contains__(self, node: Node) -> bool:
        return node in self._time

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._time)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges (grouped by source, insertion order)."""
        for succ in self._succ.values():
            yield from succ.values()

    def time(self, node: Node) -> int:
        """Execution time ``t(node)`` in control steps."""
        try:
            return self._time[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def times(self) -> Mapping[Node, int]:
        """Read-only view of the execution-time map."""
        return dict(self._time)

    def has_edge(self, src: Node, dst: Node) -> bool:
        return src in self._succ and dst in self._succ[src]

    def edge(self, src: Node, dst: Node) -> Edge:
        """The edge ``src -> dst`` (raises :class:`GraphError` if absent)."""
        try:
            return self._succ[src][dst]
        except KeyError:
            raise GraphError(f"no edge {src!r}->{dst!r}") from None

    def delay(self, src: Node, dst: Node) -> int:
        """Delay count ``d(src -> dst)``."""
        return self.edge(src, dst).delay

    def volume(self, src: Node, dst: Node) -> int:
        """Data volume ``c(src -> dst)``."""
        return self.edge(src, dst).volume

    def successors(self, node: Node) -> Iterator[Node]:
        if node not in self._time:
            raise GraphError(f"unknown node {node!r}")
        return iter(self._succ[node])

    def predecessors(self, node: Node) -> Iterator[Node]:
        if node not in self._time:
            raise GraphError(f"unknown node {node!r}")
        return iter(self._pred[node])

    def out_edges(self, node: Node) -> Iterator[Edge]:
        if node not in self._time:
            raise GraphError(f"unknown node {node!r}")
        return iter(self._succ[node].values())

    def in_edges(self, node: Node) -> Iterator[Edge]:
        if node not in self._time:
            raise GraphError(f"unknown node {node!r}")
        return iter(self._pred[node].values())

    def in_degree(self, node: Node) -> int:
        return len(self._pred[node])

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def roots(self) -> list[Node]:
        """Nodes with no *zero-delay* incoming edge (DAG sources).

        Delayed incoming edges reference previous iterations, so they do
        not prevent a node from starting an iteration.
        """
        return [
            v
            for v in self._time
            if all(e.delay > 0 for e in self._pred[v].values())
        ]

    def total_work(self) -> int:
        """Sum of all execution times — the single-processor bound."""
        return sum(self._time.values())

    # ------------------------------------------------------------------
    # retiming support (delay rewrites)
    # ------------------------------------------------------------------
    def set_delay(self, src: Node, dst: Node, delay: int) -> None:
        """Overwrite the delay on ``src -> dst`` (must stay >= 0)."""
        edge = self.edge(src, dst).with_delay(delay)
        self._succ[src][dst] = edge
        self._pred[dst][src] = edge

    # ------------------------------------------------------------------
    # copies and conversions
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "CSDFG":
        """Deep copy (nodes, times, edges)."""
        clone = CSDFG(name if name is not None else self.name)
        for node, time in self._time.items():
            clone.add_node(node, time)
        for edge in self.edges():
            clone.add_edge(edge.src, edge.dst, edge.delay, edge.volume)
        return clone

    def relabel(self, mapping: Mapping[Node, Node], name: str | None = None) -> "CSDFG":
        """Return a copy with nodes renamed through ``mapping``.

        Nodes absent from ``mapping`` keep their label.  The mapping must
        stay injective over the node set.
        """
        new_labels = [mapping.get(v, v) for v in self._time]
        if len(set(new_labels)) != len(new_labels):
            raise GraphError("relabel mapping is not injective on this graph")
        clone = CSDFG(name if name is not None else self.name)
        for node, time in self._time.items():
            clone.add_node(mapping.get(node, node), time)
        for edge in self.edges():
            clone.add_edge(
                mapping.get(edge.src, edge.src),
                mapping.get(edge.dst, edge.dst),
                edge.delay,
                edge.volume,
            )
        return clone

    def zero_delay_subgraph(self) -> "CSDFG":
        """The sub-DAG of intra-iteration (zero-delay) dependences."""
        sub = CSDFG(f"{self.name}:zero-delay")
        for node, time in self._time.items():
            sub.add_node(node, time)
        for edge in self.edges():
            if edge.delay == 0:
                sub.add_edge(edge.src, edge.dst, 0, edge.volume)
        return sub

    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph`.

        Node attribute ``time`` and edge attributes ``delay``/``volume``
        carry the CSDFG annotations.
        """
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for node, time in self._time.items():
            g.add_node(node, time=time)
        for edge in self.edges():
            g.add_edge(edge.src, edge.dst, delay=edge.delay, volume=edge.volume)
        return g

    @classmethod
    def from_networkx(cls, g, name: str | None = None) -> "CSDFG":
        """Build a CSDFG from a networkx digraph.

        Missing attributes default to ``time=1``, ``delay=0``,
        ``volume=1``.
        """
        graph = cls(name if name is not None else (g.name or "csdfg"))
        for node, data in g.nodes(data=True):
            graph.add_node(node, data.get("time", 1))
        for src, dst, data in g.edges(data=True):
            graph.add_edge(src, dst, data.get("delay", 0), data.get("volume", 1))
        return graph

    # ------------------------------------------------------------------
    # equality / repr
    # ------------------------------------------------------------------
    def structurally_equal(self, other: "CSDFG") -> bool:
        """True when node times and edge annotations all coincide."""
        if not isinstance(other, CSDFG):
            return NotImplemented
        if self._time != other._time:
            return False
        mine = {e.key: (e.delay, e.volume) for e in self.edges()}
        theirs = {e.key: (e.delay, e.volume) for e in other.edges()}
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSDFG(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
