"""Analytical properties of CSDFGs.

Implements the quantities the scheduler and the evaluation harness rely
on:

* **ASAP / ALAP** start times and the **critical path** over the
  zero-delay sub-DAG (resource-unconstrained); the paper's mobility
  ``MB(v)`` (Definition 3.4) is ``ALAP(v) - <current control step>``
  and is provided by :func:`repro.core.mobility.mobility_map`.
* The **iteration bound** — the maximum cycle ratio
  ``max over cycles C of (sum of t) / (sum of d)`` — which lower-bounds
  the initiation interval of *any* static schedule regardless of
  processor count.  Two independent implementations are provided
  (Lawler's parametric binary search and a brute-force cycle
  enumeration) and cross-checked in the tests.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable

from repro.errors import GraphError
from repro.graph.csdfg import CSDFG, Node
from repro.graph.validation import topological_order_zero_delay

__all__ = [
    "asap_times",
    "alap_times",
    "critical_path_length",
    "critical_path_nodes",
    "iteration_bound",
    "iteration_bound_exact",
    "parallelism_profile",
]


def asap_times(graph: CSDFG) -> dict[Node, int]:
    """As-soon-as-possible start control step of every node.

    Computed over the zero-delay sub-DAG with unlimited processors and
    zero communication cost; control steps start at 1 (paper
    convention).
    """
    order = topological_order_zero_delay(graph)
    start: dict[Node, int] = {v: 1 for v in order}
    for node in order:
        finish = start[node] + graph.time(node) - 1
        for edge in graph.out_edges(node):
            if edge.delay == 0 and start[edge.dst] < finish + 1:
                start[edge.dst] = finish + 1
    return start


def critical_path_length(graph: CSDFG) -> int:
    """Length (in control steps) of the longest zero-delay path.

    Equals the minimum possible schedule length with unlimited
    processors and free communication.
    """
    if graph.num_nodes == 0:
        return 0
    starts = asap_times(graph)
    return max(starts[v] + graph.time(v) - 1 for v in graph.nodes())


def alap_times(graph: CSDFG, horizon: int | None = None) -> dict[Node, int]:
    """As-late-as-possible start control steps w.r.t. ``horizon``.

    ``horizon`` defaults to the critical path length, so nodes on the
    critical path satisfy ``ASAP == ALAP``.
    """
    if horizon is None:
        horizon = critical_path_length(graph)
    order = topological_order_zero_delay(graph)
    start: dict[Node, int] = {
        v: horizon - graph.time(v) + 1 for v in order
    }
    for node in reversed(order):
        for edge in graph.out_edges(node):
            if edge.delay == 0:
                latest = start[edge.dst] - graph.time(node)
                if start[node] > latest:
                    start[node] = latest
    return start


def critical_path_nodes(graph: CSDFG) -> list[Node]:
    """Nodes with zero slack (``ASAP == ALAP``), in topological order."""
    asap = asap_times(graph)
    alap = alap_times(graph)
    return [v for v in topological_order_zero_delay(graph) if asap[v] == alap[v]]


def parallelism_profile(graph: CSDFG) -> list[int]:
    """Number of nodes executing at each ASAP control step.

    Index 0 corresponds to control step 1.  Useful for sizing the
    processor count of an experiment.
    """
    starts = asap_times(graph)
    length = critical_path_length(graph)
    profile = [0] * length
    for node in graph.nodes():
        begin = starts[node]
        for cs in range(begin, begin + graph.time(node)):
            profile[cs - 1] += 1
    return profile


# ----------------------------------------------------------------------
# iteration bound (maximum cycle ratio)
# ----------------------------------------------------------------------
def iteration_bound(graph: CSDFG) -> Fraction:
    """Maximum cycle ratio ``max_C (sum t) / (sum d)`` as a Fraction.

    Returns ``Fraction(0)`` for acyclic graphs.  Uses Lawler's
    parametric shortest-path scheme: ratio ``r`` is feasible
    (``r >= bound``) iff the edge weights ``t(u) - r * d(e)`` admit no
    positive cycle; binary search over ``r`` on the Stern–Brocot-free
    grid of candidate fractions is replaced by a numeric bisection
    followed by an exact rational snap (denominators are bounded by the
    total delay in the graph).
    """
    total_delay = sum(e.delay for e in graph.edges())
    if total_delay == 0 or graph.num_nodes == 0:
        return Fraction(0)
    if not _has_cycle(graph):
        return Fraction(0)

    total_time = graph.total_work()
    lo, hi = 0.0, float(total_time)  # bound <= sum of all times (cycle delay >= 1)
    # Bisect until the interval isolates a single candidate fraction
    # p / q with q <= total_delay; then verify exactly.
    for _ in range(64):
        mid = (lo + hi) / 2.0
        if _has_positive_cycle(graph, mid):
            lo = mid
        else:
            hi = mid
        if hi - lo < 1.0 / (2.0 * total_delay * total_delay):
            break
    candidate = _closest_fraction((lo + hi) / 2.0, total_delay)
    # exact verification and (if needed) one-step correction
    for probe in _fraction_neighbourhood(candidate, total_delay):
        if not _has_positive_cycle_exact(graph, probe) and _has_zero_cycle_exact(
            graph, probe
        ):
            return probe
    # fall back to exact enumeration (small graphs only)
    return iteration_bound_exact(graph)


def iteration_bound_exact(graph: CSDFG, max_cycles: int = 2_000_000) -> Fraction:
    """Iteration bound by enumerating simple cycles (Johnson's algorithm).

    Exponential in the worst case; intended for tests and small
    benchmark graphs.  ``max_cycles`` guards runaway enumeration.
    """
    import networkx as nx

    g = graph.to_networkx()
    best = Fraction(0)
    count = 0
    for cycle in nx.simple_cycles(g):
        count += 1
        if count > max_cycles:
            raise GraphError("cycle enumeration exceeded max_cycles")
        time = sum(graph.time(v) for v in cycle)
        delay = 0
        for i, u in enumerate(cycle):
            v = cycle[(i + 1) % len(cycle)]
            delay += graph.delay(u, v)
        if delay <= 0:
            raise GraphError("illegal CSDFG: nonpositive-delay cycle")
        ratio = Fraction(time, delay)
        if ratio > best:
            best = ratio
    return best


# -- helpers -----------------------------------------------------------
def _has_cycle(graph: CSDFG) -> bool:
    import networkx as nx

    return not nx.is_directed_acyclic_graph(graph.to_networkx())


def _iter_weighted_edges(graph: CSDFG) -> Iterable[tuple[Node, Node, int, int]]:
    for e in graph.edges():
        yield e.src, e.dst, graph.time(e.src), e.delay


def _has_positive_cycle(graph: CSDFG, ratio: float) -> bool:
    """Bellman–Ford longest-path: is there a cycle with w(e)=t-r*d > 0?"""
    nodes = list(graph.nodes())
    dist = {v: 0.0 for v in nodes}
    edges = [(u, v, t - ratio * d) for u, v, t, d in _iter_weighted_edges(graph)]
    for _ in range(len(nodes)):
        changed = False
        for u, v, w in edges:
            cand = dist[u] + w
            if cand > dist[v] + 1e-12:
                dist[v] = cand
                changed = True
        if not changed:
            return False
    return True


def _has_positive_cycle_exact(graph: CSDFG, ratio: Fraction) -> bool:
    nodes = list(graph.nodes())
    dist = {v: Fraction(0) for v in nodes}
    edges = [
        (u, v, Fraction(t) - ratio * d) for u, v, t, d in _iter_weighted_edges(graph)
    ]
    for _ in range(len(nodes)):
        changed = False
        for u, v, w in edges:
            cand = dist[u] + w
            if cand > dist[v]:
                dist[v] = cand
                changed = True
        if not changed:
            return False
    return True


def _has_zero_cycle_exact(graph: CSDFG, ratio: Fraction) -> bool:
    """With weights t - r*d, is some cycle exactly critical (weight 0)?

    True iff ``ratio`` equals the maximum cycle ratio, given that no
    positive cycle exists at ``ratio``.
    """
    # run longest path to fixpoint, then look for a tight edge cycle
    nodes = list(graph.nodes())
    dist = {v: Fraction(0) for v in nodes}
    edges = [
        (u, v, Fraction(t) - ratio * d) for u, v, t, d in _iter_weighted_edges(graph)
    ]
    for _ in range(len(nodes) + 1):
        changed = False
        for u, v, w in edges:
            cand = dist[u] + w
            if cand > dist[v]:
                dist[v] = cand
                changed = True
        if not changed:
            break
    # tight subgraph: edges with dist[v] == dist[u] + w
    tight: dict[Node, list[Node]] = {v: [] for v in nodes}
    for u, v, w in edges:
        if dist[v] == dist[u] + w:
            tight[u].append(v)
    # cycle detection in the tight subgraph
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {v: WHITE for v in nodes}
    for start in nodes:
        if colour[start] != WHITE:
            continue
        stack = [(start, iter(tight[start]))]
        colour[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if colour[nxt] == GREY:
                    return True
                if colour[nxt] == WHITE:
                    colour[nxt] = GREY
                    stack.append((nxt, iter(tight[nxt])))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return False


def _closest_fraction(x: float, max_den: int) -> Fraction:
    return Fraction(x).limit_denominator(max_den)


def _fraction_neighbourhood(f: Fraction, max_den: int) -> list[Fraction]:
    """Candidate fractions near ``f`` with denominator <= max_den."""
    candidates = {f}
    for den in range(1, max_den + 1):
        num = round(float(f) * den)
        for delta in (-1, 0, 1):
            p = num + delta
            if p >= 0:
                candidates.add(Fraction(p, den))
    eps = Fraction(1, max(1, max_den * max_den))
    return sorted(c for c in candidates if abs(c - f) <= max(eps * 4, Fraction(1, max_den)))
