"""CSDFG substrate: graph structure, validation, properties, transforms.

Public surface re-exported here; see the submodules for details:

* :mod:`repro.graph.csdfg` — the :class:`CSDFG` structure itself,
* :mod:`repro.graph.validation` — legality checks,
* :mod:`repro.graph.properties` — ASAP/ALAP, critical path, iteration
  bound,
* :mod:`repro.graph.transform` — slowdown / unfolding / rescaling,
* :mod:`repro.graph.io` — JSON / DOT / edge-list serialization,
* :mod:`repro.graph.generators` — random and parametric builders.
"""

from repro.graph.csdfg import CSDFG, Edge, Node
from repro.graph.cycles import (
    karp_maximum_cycle_ratio,
    recursive_core,
    scc_condensation,
    strongly_connected_components,
)
from repro.graph.generators import (
    chain_csdfg,
    fork_join_csdfg,
    layered_csdfg,
    random_csdfg,
    random_dag,
    ring_csdfg,
)
from repro.graph.io import (
    from_edge_list,
    from_json,
    load_json,
    save_json,
    to_dot,
    to_edge_list,
    to_json,
)
from repro.graph.properties import (
    alap_times,
    asap_times,
    critical_path_length,
    critical_path_nodes,
    iteration_bound,
    iteration_bound_exact,
    parallelism_profile,
)
from repro.graph.transform import (
    merge_parallel_edges,
    reverse,
    scale_times,
    scale_volumes,
    slowdown,
    unfold,
)
from repro.graph.validation import (
    collect_issues,
    find_zero_delay_cycle,
    is_legal,
    topological_order_zero_delay,
    validate_csdfg,
)

__all__ = [
    "CSDFG",
    "Edge",
    "Node",
    "alap_times",
    "asap_times",
    "chain_csdfg",
    "collect_issues",
    "critical_path_length",
    "critical_path_nodes",
    "find_zero_delay_cycle",
    "fork_join_csdfg",
    "from_edge_list",
    "from_json",
    "is_legal",
    "iteration_bound",
    "iteration_bound_exact",
    "karp_maximum_cycle_ratio",
    "layered_csdfg",
    "load_json",
    "merge_parallel_edges",
    "parallelism_profile",
    "random_csdfg",
    "random_dag",
    "recursive_core",
    "reverse",
    "ring_csdfg",
    "save_json",
    "scale_times",
    "scc_condensation",
    "strongly_connected_components",
    "scale_volumes",
    "slowdown",
    "to_dot",
    "to_edge_list",
    "to_json",
    "topological_order_zero_delay",
    "unfold",
    "validate_csdfg",
]
