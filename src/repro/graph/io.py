"""Serialization of CSDFGs: JSON, DOT, and a compact edge-list text form.

The JSON form is the canonical interchange format (round-trips every
annotation); DOT output is for visual inspection with graphviz; the
edge-list form is convenient for hand-written workload files::

    # node lines:  node NAME TIME
    # edge lines:  SRC -> DST [delay=K] [volume=M]
    node A 1
    node B 2
    A -> B delay=0 volume=1
    B -> A delay=3 volume=2
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

from repro.errors import GraphError
from repro.graph.csdfg import CSDFG

__all__ = [
    "to_json",
    "from_json",
    "save_json",
    "load_json",
    "to_dot",
    "to_edge_list",
    "from_edge_list",
]

_FORMAT_VERSION = 1


def to_json(graph: CSDFG) -> dict[str, Any]:
    """Canonical JSON-serializable representation of ``graph``."""
    return {
        "format": "repro-csdfg",
        "version": _FORMAT_VERSION,
        "name": graph.name,
        "nodes": [{"id": str(v), "time": graph.time(v)} for v in graph.nodes()],
        "edges": [
            {
                "src": str(e.src),
                "dst": str(e.dst),
                "delay": e.delay,
                "volume": e.volume,
            }
            for e in graph.edges()
        ],
    }


def from_json(payload: dict[str, Any]) -> CSDFG:
    """Rebuild a CSDFG from :func:`to_json` output.

    Node ids are restored as strings (the canonical label type of the
    interchange format).
    """
    if payload.get("format") != "repro-csdfg":
        raise GraphError("not a repro-csdfg JSON payload")
    if payload.get("version") != _FORMAT_VERSION:
        raise GraphError(f"unsupported csdfg format version {payload.get('version')!r}")
    graph = CSDFG(payload.get("name", "csdfg"))
    for node in payload["nodes"]:
        graph.add_node(node["id"], node.get("time", 1))
    for edge in payload["edges"]:
        graph.add_edge(
            edge["src"], edge["dst"], edge.get("delay", 0), edge.get("volume", 1)
        )
    return graph


def save_json(graph: CSDFG, path: str | Path) -> None:
    """Write ``graph`` to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(to_json(graph), indent=2) + "\n")


def load_json(path: str | Path) -> CSDFG:
    """Load a CSDFG written by :func:`save_json`."""
    return from_json(json.loads(Path(path).read_text()))


def to_dot(graph: CSDFG) -> str:
    """Graphviz DOT rendering.

    Nodes show ``name (t)``; edges are labelled ``d/c`` and delayed
    edges are drawn dashed (the paper draws delays as bars).
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    for node in graph.nodes():
        lines.append(f'  "{node}" [label="{node} ({graph.time(node)})"];')
    for e in graph.edges():
        style = ' style=dashed' if e.delay > 0 else ""
        lines.append(
            f'  "{e.src}" -> "{e.dst}" [label="d={e.delay} c={e.volume}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_edge_list(graph: CSDFG) -> str:
    """Compact textual form (see module docstring for the grammar)."""
    lines = [f"# csdfg {graph.name}"]
    for node in graph.nodes():
        lines.append(f"node {node} {graph.time(node)}")
    for e in graph.edges():
        lines.append(f"{e.src} -> {e.dst} delay={e.delay} volume={e.volume}")
    return "\n".join(lines) + "\n"


_NODE_RE = re.compile(r"^node\s+(\S+)\s+(\d+)\s*$")
_EDGE_RE = re.compile(
    r"^(\S+)\s*->\s*(\S+)((?:\s+(?:delay|volume)=\d+)*)\s*$"
)
_ATTR_RE = re.compile(r"(delay|volume)=(\d+)")


def from_edge_list(text: str, name: str = "csdfg") -> CSDFG:
    """Parse the edge-list text format.

    Unknown nodes referenced by edges are implicitly created with
    ``time=1`` so quick experiments need only edge lines.
    """
    graph = CSDFG(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _NODE_RE.match(line)
        if m:
            graph.add_node(m.group(1), int(m.group(2)))
            continue
        m = _EDGE_RE.match(line)
        if m:
            src, dst, attrs = m.group(1), m.group(2), m.group(3) or ""
            delay, volume = 0, 1
            for key, value in _ATTR_RE.findall(attrs):
                if key == "delay":
                    delay = int(value)
                else:
                    volume = int(value)
            for endpoint in (src, dst):
                if endpoint not in graph:
                    graph.add_node(endpoint, 1)
            graph.add_edge(src, dst, delay, volume)
            continue
        raise GraphError(f"line {lineno}: cannot parse {raw!r}")
    return graph
