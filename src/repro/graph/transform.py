"""Graph transformations: slowdown, unfolding, edge merging, reversal.

The paper's Table 11 evaluates the filters "with a slow down factor of 3";
*slowdown* multiplies every delay count by a constant, a classical
transformation (Parhi) that enlarges the retiming space so loop
pipelining can expose more parallelism.  *Unfolding* by ``f`` replicates
the loop body ``f`` times, which trades schedule-table size for a lower
per-iteration initiation interval.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.errors import GraphError
from repro.graph.csdfg import CSDFG, Node

__all__ = [
    "slowdown",
    "unfold",
    "merge_parallel_edges",
    "reverse",
    "scale_times",
    "scale_volumes",
]


def slowdown(graph: CSDFG, factor: int, name: str | None = None) -> CSDFG:
    """Multiply every edge delay by ``factor`` (the paper's Table 11 setup).

    The transformed graph computes the same recurrence executed once
    every ``factor`` iterations of the schedule; legality is preserved
    because cycle delays scale by the same positive factor.
    """
    if factor < 1:
        raise GraphError(f"slowdown factor must be >= 1, got {factor}")
    out = graph.copy(name if name is not None else f"{graph.name}:slow{factor}")
    for edge in list(out.edges()):
        out.set_delay(edge.src, edge.dst, edge.delay * factor)
    return out


def unfold(
    graph: CSDFG,
    factor: int,
    name: str | None = None,
    label: Callable[[Node, int], Hashable] | None = None,
) -> CSDFG:
    """Unfold the loop body ``factor`` times (standard DFG unfolding).

    Each node ``v`` becomes copies ``v_0 .. v_{f-1}``; an edge
    ``u -> v`` with delay ``d`` becomes, for every copy index ``i``,
    the edge ``u_i -> v_{(i + d) mod f}`` with delay ``(i + d) // f``.
    Data volumes are preserved on every copy.

    Parameters
    ----------
    label:
        Naming function ``(node, copy_index) -> new label``; defaults to
        ``f"{node}#{i}"``.
    """
    if factor < 1:
        raise GraphError(f"unfolding factor must be >= 1, got {factor}")
    if label is None:
        label = lambda v, i: f"{v}#{i}"  # noqa: E731
    out = CSDFG(name if name is not None else f"{graph.name}:unfold{factor}")
    for node in graph.nodes():
        for i in range(factor):
            out.add_node(label(node, i), graph.time(node))
    for edge in graph.edges():
        for i in range(factor):
            j = (i + edge.delay) % factor
            d = (i + edge.delay) // factor
            src, dst = label(edge.src, i), label(edge.dst, j)
            if out.has_edge(src, dst):
                # duplicate arises only for degenerate self-parallel
                # dependences; keep the tightest constraint
                existing = out.edge(src, dst)
                out.set_delay(src, dst, min(existing.delay, d))
            else:
                out.add_edge(src, dst, d, edge.volume)
    return out


def merge_parallel_edges(
    edges: list[tuple[Node, Node, int, int]],
) -> list[tuple[Node, Node, int, int]]:
    """Collapse duplicate ``(src, dst)`` entries to one edge each.

    Input tuples are ``(src, dst, delay, volume)``.  The merged edge
    keeps the minimum delay (tightest precedence constraint) and the
    maximum volume (largest communication, conservative for cost).
    Helper for importers whose sources may contain parallel edges.
    """
    merged: dict[tuple[Node, Node], tuple[int, int]] = {}
    order: list[tuple[Node, Node]] = []
    for src, dst, delay, volume in edges:
        key = (src, dst)
        if key in merged:
            d0, v0 = merged[key]
            merged[key] = (min(d0, delay), max(v0, volume))
        else:
            merged[key] = (delay, volume)
            order.append(key)
    return [(s, t, merged[(s, t)][0], merged[(s, t)][1]) for s, t in order]


def reverse(graph: CSDFG, name: str | None = None) -> CSDFG:
    """Reverse every edge (delays/volumes preserved).

    The reverse graph is used by ALAP-style backward passes and by the
    Leiserson–Saxe feasibility formulation.
    """
    out = CSDFG(name if name is not None else f"{graph.name}:rev")
    for node in graph.nodes():
        out.add_node(node, graph.time(node))
    for edge in graph.edges():
        out.add_edge(edge.dst, edge.src, edge.delay, edge.volume)
    return out


def scale_times(graph: CSDFG, factor: int, name: str | None = None) -> CSDFG:
    """Multiply every execution time by ``factor`` (clock rescaling)."""
    if factor < 1:
        raise GraphError(f"time scale factor must be >= 1, got {factor}")
    out = graph.copy(name if name is not None else f"{graph.name}:t*{factor}")
    for node in list(out.nodes()):
        out.add_node(node, graph.time(node) * factor)
    return out


def scale_volumes(graph: CSDFG, factor: int, name: str | None = None) -> CSDFG:
    """Multiply every communication volume by ``factor``.

    Models wider data words or finer-grained packets; used by the
    communication-sensitivity ablation.
    """
    if factor < 1:
        raise GraphError(f"volume scale factor must be >= 1, got {factor}")
    out = CSDFG(name if name is not None else f"{graph.name}:c*{factor}")
    for node in graph.nodes():
        out.add_node(node, graph.time(node))
    for edge in graph.edges():
        out.add_edge(edge.src, edge.dst, edge.delay, edge.volume * factor)
    return out
