"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Registered workloads and architecture kinds.
``info``
    Structural statistics and bounds of one workload.
``schedule``
    Run start-up scheduling + cyclo-compaction on a (workload,
    architecture) pair and render the schedules.
``simulate``
    Execute a compacted schedule for N loop iterations and report the
    dynamic statistics.
``codegen``
    Emit the per-PE steady-state programs of a compacted schedule.
``report``
    Write the full markdown reproduction report (all paper
    experiments, paper-vs-measured).
``experiment``
    Regenerate one of the paper's experiments (``figure1``,
    ``tables19``, ``table11``) on stdout.
``sweep``
    Sweep one parameter (PE count, data-volume scale, or slowdown
    factor) over a workload; ``--jobs N`` fans the points out over a
    process pool with identical results.
``profile``
    Run the optimiser N times on a (workload, architecture) pair and
    print the per-phase time/percentage breakdown.
``fuzz``
    Property-based fuzzing of the scheduling pipeline
    (``docs/testing.md``): seeded random (graph, architecture, config)
    triples, the full property/metamorphic suite per trial, failing
    trials delta-debugged into small JSON reproducers.  ``--replay``
    re-runs checked-in reproducers (``tests/corpus/``) instead of
    fuzzing.
``faults inject|repair|campaign``
    Resilience drivers (``docs/resilience.md``): execute a schedule
    under a seeded fault campaign, repair a schedule after explicit
    PE/link failures, or run the randomized chaos harness.
``analyze``
    Static analysis of scheduler inputs (``docs/analysis.md``): graph
    liveness/annotations, topology diagnostics, target-length
    feasibility proofs, schedule certificates — text/JSON/SARIF,
    non-zero exit on errors.  ``--paper-suite`` analyzes every
    registered workload on every paper topology; ``--flow`` runs the
    interprocedural determinism & contract analyzer (rules
    RD1xx/RC2xx) over the source tree; ``--list-rules`` prints the
    catalogue.
``lint``
    Static analysis of this repository's own source tree: seeded
    randomness, no wall clock in core, one communication pricing
    authority, typed exceptions, obs-routed output (rules RL1xx in
    ``docs/analysis.md``).
``sanitize``
    Dynamic determinism sanitizer (``docs/analysis.md``): run one
    repro subcommand twice under perturbed ``PYTHONHASHSEED`` and
    ``--jobs``, canonicalize both outputs (scrubbing durations, rates
    and paths) and diff them — any surviving byte difference is a
    determinism bug; non-zero exit on a diff.
``obs report|top|diff|regressions|matrix``
    The observatory (``docs/observability.md``): aggregate traces and
    run history into hotspot tables and latency percentiles, rank
    spans by self time (with flamegraph-collapsed stacks), compare two
    runs or history windows phase-by-phase, detect perf regressions
    against a baseline fitted from history (non-zero exit — the CI
    perf gate), and replay the pinned gate workload matrix into the
    history store.

Unknown workload or architecture names exit with a one-line error
listing the registered names (they are resolved by the registries, not
by argparse choices).

Observability
-------------
``schedule``, ``simulate`` and ``report`` accept ``--trace FILE``
(write a Chrome trace-event JSON viewable in ``chrome://tracing`` /
https://ui.perfetto.dev) and ``--profile`` (print the per-phase time
breakdown and collected metrics after the run).  ``schedule``,
``sweep``, ``fuzz`` and ``faults campaign`` additionally accept
``--history-dir DIR`` to append a provenance-stamped run record to the
run-history store that ``repro obs`` aggregates; see
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Sequence

from repro.analysis import format_cells, format_table11, run_cell, run_grid
from repro.arch import (
    ARCHITECTURE_KINDS,
    CONTENTION_MODELS,
    make_architecture,
    paper_architectures,
)
from repro.baselines import schedule_bounds
from repro.codegen import generate_program
from repro.core import CycloConfig, cyclo_compact, optimize
from repro.errors import ReproError
from repro.graph import critical_path_length, iteration_bound, slowdown
from repro.obs import (
    InMemorySink,
    format_breakdown,
    install_sink,
    metrics,
    metrics_report,
    phase_breakdown,
    remove_sink,
    write_chrome_trace,
)
from repro.schedule import compute_metrics, render_gantt, render_table
from repro.sim import buffer_requirements, simulate
from repro.workloads import make_workload, workload_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cyclo-compaction scheduling (ICPP'95 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and architecture kinds")

    p_info = sub.add_parser("info", help="describe one workload")
    p_info.add_argument("workload", help="workload name (see `repro list`)")

    p_sched = sub.add_parser("schedule", help="schedule a workload")
    _add_pair_args(p_sched)
    _add_obs_args(p_sched)
    p_sched.add_argument(
        "--no-relax",
        action="store_true",
        help="remapping without relaxation (Theorem 4.4 monotone mode)",
    )
    p_sched.add_argument(
        "--pipelined",
        action="store_true",
        help="pipelined processing elements (paper §2)",
    )
    p_sched.add_argument(
        "--iterations", type=int, default=None, help="compaction passes (z)"
    )
    p_sched.add_argument(
        "--render",
        choices=["table", "gantt", "none"],
        default="table",
        help="schedule rendering style",
    )
    p_sched.add_argument(
        "--refine",
        action="store_true",
        help="alternate compaction with local-search refinement",
    )
    p_sched.add_argument(
        "--restarts", type=int, default=1, metavar="N",
        help="best-of-N jittered restarts (deterministic per seed; "
             "N=1 is a plain single run)",
    )
    p_sched.add_argument(
        "--jobs", type=int, default=1, metavar="M",
        help="worker processes for sharded restarts (wall-clock only; "
             "never changes the winner)",
    )
    p_sched.add_argument(
        "--restart-seed", type=int, default=0, metavar="SEED",
        help="seed for the per-restart priority jitter",
    )
    p_sched.add_argument(
        "--contention",
        choices=sorted(CONTENTION_MODELS),
        default=None,
        help="contention model for the two-phase contention-aware "
             "pipeline (default: contention-free pricing, the paper's "
             "multiple-channel assumption)",
    )
    p_sched.add_argument(
        "--contention-weight", type=int, default=1, metavar="W",
        help="per-unit-load surcharge weight of the contention model",
    )
    p_sched.add_argument(
        "--contention-rounds", type=int, default=2, metavar="R",
        help="reprice-and-reschedule rounds of the contention pipeline",
    )

    p_code = sub.add_parser(
        "codegen", help="emit per-PE programs for a compacted schedule"
    )
    _add_pair_args(p_code)

    p_sim = sub.add_parser("simulate", help="simulate a compacted schedule")
    _add_pair_args(p_sim)
    _add_obs_args(p_sim)
    p_sim.add_argument(
        "--loops", type=int, default=6, help="loop iterations to execute"
    )

    p_rep = sub.add_parser(
        "report", help="write the full markdown reproduction report"
    )
    p_rep.add_argument(
        "--out", default=None, help="output file (default: stdout)"
    )
    p_rep.add_argument(
        "--iterations", type=int, default=80, help="compaction passes per cell"
    )
    p_rep.add_argument(
        "--skip-table11", action="store_true", help="omit the filter study"
    )
    _add_obs_args(p_rep)

    p_prof = sub.add_parser(
        "profile",
        help="profile the optimiser per phase on a (workload, arch) pair",
    )
    _add_pair_args(p_prof)
    p_prof.add_argument(
        "--runs", type=int, default=3, help="optimiser runs to aggregate"
    )
    p_prof.add_argument(
        "--iterations", type=int, default=None, help="compaction passes (z)"
    )
    p_prof.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also write a Chrome trace-event JSON of the profiled runs",
    )

    p_exp = sub.add_parser("experiment", help="regenerate a paper experiment")
    p_exp.add_argument("name", choices=["figure1", "tables19", "table11"])
    p_exp.add_argument(
        "--iterations", type=int, default=80, help="compaction passes per cell"
    )

    p_sweep = sub.add_parser(
        "sweep", help="sweep one parameter (PE count, volume, slowdown)"
    )
    p_sweep.add_argument("workload", help="workload name (see `repro list`)")
    p_sweep.add_argument(
        "--arch",
        default="mesh",
        help="architecture kind (see `repro list`)",
    )
    p_sweep.add_argument(
        "--param",
        choices=["pes", "volume", "slowdown"],
        default="pes",
        help="parameter to sweep",
    )
    p_sweep.add_argument(
        "--values",
        default=None,
        metavar="CSV",
        help="comma-separated sweep values (e.g. 2,4,8,16)",
    )
    p_sweep.add_argument(
        "--pes", type=int, default=8,
        help="processor count (volume/slowdown sweeps)",
    )
    p_sweep.add_argument(
        "--iterations", type=int, default=40,
        help="compaction passes per point",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial; results are identical)",
    )
    _add_history_arg(p_sweep)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="property-based fuzzing of the scheduling pipeline",
    )
    p_fuzz.add_argument(
        "--trials", type=int, default=100, help="seeded trials to run"
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed"
    )
    p_fuzz.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop launching trials after this long (CI smoke mode)",
    )
    p_fuzz.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial; trial outcomes are identical)",
    )
    p_fuzz.add_argument(
        "--max-nodes", type=int, default=10,
        help="largest sampled graph size",
    )
    p_fuzz.add_argument(
        "--max-pes", type=int, default=8,
        help="largest sampled machine (kinds with a higher floor use it)",
    )
    p_fuzz.add_argument(
        "--properties", default=None, metavar="CSV",
        help="comma-separated property names (default: all; see "
             "docs/testing.md)",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging of failing trials",
    )
    p_fuzz.add_argument(
        "--out", default=None, metavar="DIR",
        help="write raw + shrunk reproducer JSON files here on failure",
    )
    p_fuzz.add_argument(
        "--replay", action="append", default=[], metavar="PATH",
        help="replay a reproducer case file or a corpus directory "
             "instead of fuzzing (repeatable)",
    )
    _add_history_arg(p_fuzz)

    p_faults = sub.add_parser(
        "faults", help="fault injection, schedule repair, chaos harness"
    )
    faults_sub = p_faults.add_subparsers(dest="faults_command", required=True)

    p_inject = faults_sub.add_parser(
        "inject", help="execute a compacted schedule under a fault campaign"
    )
    _add_pair_args(p_inject)
    p_inject.add_argument(
        "--loops", type=int, default=6, help="loop iterations to execute"
    )
    p_inject.add_argument(
        "--seed", type=int, default=0, help="random campaign seed"
    )
    p_inject.add_argument(
        "--faults", type=int, default=1, dest="num_faults",
        help="faults in the random campaign",
    )
    p_inject.add_argument(
        "--transient", type=float, default=0.0, metavar="FRACTION",
        help="fraction of faults that heal (0..1)",
    )
    p_inject.add_argument(
        "--campaign", default=None, metavar="FILE",
        help="JSON campaign file (overrides the random campaign flags)",
    )

    p_repair = faults_sub.add_parser(
        "repair", help="repair a compacted schedule after explicit failures"
    )
    _add_pair_args(p_repair)
    p_repair.add_argument(
        "--kill-pe", type=int, action="append", default=[], metavar="N",
        help="fail processor N (1-based, as rendered; repeatable)",
    )
    p_repair.add_argument(
        "--cut-link", action="append", default=[], metavar="A-B",
        help="fail the link between PEs A and B (1-based; repeatable)",
    )
    p_repair.add_argument(
        "--max-regression", type=float, default=1.5,
        help="local-repair length budget before full re-optimisation",
    )
    p_repair.add_argument(
        "--render",
        choices=["table", "none"],
        default="table",
        help="render the repaired schedule",
    )

    p_chaos = faults_sub.add_parser(
        "campaign", help="run the randomized chaos harness"
    )
    p_chaos.add_argument(
        "--trials", type=int, default=50, help="seeded trials to run"
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, help="campaign seed"
    )
    p_chaos.add_argument("--pes", type=int, default=8, help="processor count")
    p_chaos.add_argument(
        "--max-faults", type=int, default=3, help="faults per trial (upper)"
    )
    p_chaos.add_argument(
        "--transient", type=float, default=0.25, metavar="FRACTION",
        help="fraction of faults that heal (0..1)",
    )
    p_chaos.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop launching trials after this long (CI smoke mode)",
    )
    p_chaos.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial; trial outcomes are identical)",
    )
    _add_history_arg(p_chaos)

    p_an = sub.add_parser(
        "analyze", help="static analysis of scheduler inputs"
    )
    p_an.add_argument(
        "graph", nargs="?", default=None,
        help="CSDFG JSON file or workload name (see `repro list`)",
    )
    p_an.add_argument(
        "arch", nargs="?", default="mesh",
        help="architecture kind, optionally kind:PES (default: mesh)",
    )
    p_an.add_argument("--pes", type=int, default=8, help="processor count")
    p_an.add_argument(
        "--slowdown", type=int, default=1, help="delay slow-down factor"
    )
    p_an.add_argument(
        "--config", default=None, metavar="FILE",
        help="optimiser config JSON (may carry a target_length key)",
    )
    p_an.add_argument(
        "--schedule", default=None, metavar="FILE",
        help="serialized schedule to certify against the inputs",
    )
    p_an.add_argument(
        "--target-length", type=int, default=None, metavar="L",
        help="prove this target schedule length feasible/infeasible",
    )
    p_an.add_argument(
        "--fail-pe", type=int, action="append", default=[], metavar="N",
        help="analyze with processor N failed (1-based; repeatable)",
    )
    p_an.add_argument(
        "--cut-link", action="append", default=[], metavar="A-B",
        help="analyze with the link between PEs A and B cut (1-based; "
             "repeatable)",
    )
    p_an.add_argument(
        "--paper-suite", action="store_true",
        help="analyze every registered workload on every paper topology",
    )
    p_an.add_argument(
        "--flow", nargs="*", default=None, metavar="PATH",
        help="run the interprocedural determinism & contract analyzer "
             "(rules RD1xx/RC2xx) over source files/directories "
             "(default: the installed repro package)",
    )
    p_an.add_argument(
        "--list-rules", action="store_true",
        help="print the full rule catalogue (codes, severities, titles) "
             "and exit",
    )
    _add_emit_args(p_an)

    p_lint = sub.add_parser(
        "lint", help="lint this repository's own source tree"
    )
    p_lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: the installed repro "
             "package)",
    )
    _add_emit_args(p_lint)

    p_san = sub.add_parser(
        "sanitize",
        help="dynamic determinism sanitizer: run a repro command twice "
             "under perturbed PYTHONHASHSEED/--jobs and diff the "
             "canonicalized outputs",
    )
    p_san.add_argument(
        "--jobs-a", type=int, default=1, metavar="N",
        help="--jobs value substituted into run A (default: 1)",
    )
    p_san.add_argument(
        "--jobs-b", type=int, default=2, metavar="N",
        help="--jobs value substituted into run B (default: 2)",
    )
    p_san.add_argument(
        "--hashseed-a", type=int, default=101, metavar="SEED",
        help="PYTHONHASHSEED for run A (default: 101)",
    )
    p_san.add_argument(
        "--hashseed-b", type=int, default=202, metavar="SEED",
        help="PYTHONHASHSEED for run B (default: 202)",
    )
    p_san.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="per-run timeout (default: 120)",
    )
    p_san.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON verdict (runs, diff) here as well",
    )
    p_san.add_argument(
        "target", nargs=argparse.REMAINDER, metavar="-- CMD ...",
        help="the repro subcommand to double-run, after a `--` "
             "separator, e.g. `repro sanitize -- schedule figure1 "
             "--arch mesh --pes 4`",
    )

    p_obs = sub.add_parser(
        "obs", help="aggregate traces and run history (the observatory)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_orep = obs_sub.add_parser(
        "report",
        help="hotspot tables and latency percentiles from traces/history",
    )
    p_orep.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="Chrome trace JSON file(s), history NDJSON file(s), and/or "
             "history directories",
    )
    p_orep.add_argument(
        "--limit", type=int, default=0, metavar="N",
        help="only the top N hotspot rows (0 = all)",
    )

    p_otop = obs_sub.add_parser(
        "top", help="rank spans by self time; emit collapsed stacks"
    )
    p_otop.add_argument(
        "paths", nargs="+", metavar="TRACE",
        help="Chrome trace JSON file(s) to aggregate",
    )
    p_otop.add_argument(
        "--limit", type=int, default=15, metavar="N",
        help="rows to print (0 = all)",
    )
    p_otop.add_argument(
        "--collapsed", default=None, metavar="FILE",
        help="write flamegraph-collapsed stacks here "
             "(flamegraph.pl / speedscope input)",
    )

    p_odiff = obs_sub.add_parser(
        "diff", help="compare two runs or history windows phase-by-phase"
    )
    p_odiff.add_argument(
        "a", help="baseline: trace JSON, history NDJSON, or history dir"
    )
    p_odiff.add_argument(
        "b", help="candidate: trace JSON, history NDJSON, or history dir"
    )
    p_odiff.add_argument(
        "--kind", default=None, metavar="KIND",
        help="restrict history inputs to one record kind",
    )

    p_oreg = obs_sub.add_parser(
        "regressions",
        help="detect runs exceeding a baseline fitted from history "
             "(non-zero exit on regression)",
    )
    p_oreg.add_argument(
        "--history-dir", default="benchmarks/out/history", metavar="DIR",
        help="history store to fit the baseline from",
    )
    p_oreg.add_argument(
        "--kind", default=None, metavar="KIND",
        help="restrict to one record kind (default: all)",
    )
    p_oreg.add_argument(
        "--threshold", type=float, default=1.3, metavar="RATIO",
        help="flag latest runs slower than RATIO x the baseline median",
    )
    p_oreg.add_argument(
        "--min-seconds", type=float, default=0.0, metavar="S",
        help="ignore groups whose latest run is faster than this "
             "(noise floor)",
    )

    p_omat = obs_sub.add_parser(
        "matrix",
        help="run the pinned perf-gate workload matrix into history",
    )
    p_omat.add_argument(
        "--history-dir", default="benchmarks/out/history", metavar="DIR",
        help="history store to append gate records to",
    )
    p_omat.add_argument(
        "--collapsed-dir", default=None, metavar="DIR",
        help="also write per-cell flamegraph-collapsed stacks here",
    )

    p_scale = sub.add_parser(
        "scale",
        help="run the thousand-node scale benchmark tier "
             "(repro.perf.scale)",
    )
    p_scale.add_argument(
        "--quick", action="store_true",
        help="first matrix cell only (CI smoke mode)",
    )
    p_scale.add_argument(
        "--jobs", type=int, default=1, metavar="M",
        help="worker processes (one cell per worker; timings are "
             "taken inside the worker)",
    )
    p_scale.add_argument(
        "--history-dir", default=None, metavar="DIR",
        help="also append one `scale` history record per cell here",
    )
    p_scale.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the per-cell results as JSON here",
    )
    return parser


def _add_pair_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "workload_pos",
        nargs="?",
        default=None,
        metavar="workload",
        help="workload name (alternative to --workload)",
    )
    parser.add_argument(
        "--workload", help="workload name (see `repro list`)"
    )
    parser.add_argument(
        "--arch",
        default="mesh",
        help="architecture kind (see `repro list`)",
    )
    parser.add_argument("--pes", type=int, default=8, help="processor count")
    parser.add_argument(
        "--slowdown", type=int, default=1, help="delay slow-down factor"
    )


def _add_emit_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        dest="fmt",
        help="report format (sarif for CI code-scanning upload)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the report here instead of stdout",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings too, not only errors",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase time breakdown and metrics after the run",
    )
    _add_history_arg(parser)


def _add_history_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--history-dir",
        default=None,
        metavar="DIR",
        help="append a provenance-stamped run record to this history "
             "store (NDJSON; aggregated by `repro obs`)",
    )


class _ObsSession:
    """Scope of one instrumented CLI command.

    Installs an in-memory sink (turning the library's instrumentation
    on); on :meth:`finish` writes the Chrome trace and/or prints the
    profile report as requested by the flags, and
    :meth:`record_history` appends one provenance-stamped run record
    to the history store when ``--history-dir`` was given.
    """

    def __init__(
        self,
        trace_path: str | None,
        profile: bool,
        history_dir: str | None = None,
    ) -> None:
        self.trace_path = trace_path
        self.profile = profile
        self.history_dir = history_dir
        self.sink = InMemorySink()
        self.started = time.perf_counter()
        metrics.reset()
        install_sink(self.sink)

    def finish(self, *, sim=None) -> None:
        remove_sink(self.sink)
        if self.trace_path:
            path = write_chrome_trace(
                self.trace_path, self.sink.events, sim=sim
            )
            print(f"trace written to {path}")
        if self.profile:
            print()
            print(format_breakdown(phase_breakdown(self.sink.events)))
            print()
            print(metrics_report(metrics.snapshot()))

    def record_history(
        self,
        kind: str,
        *,
        workload: str,
        arch: str,
        config: dict | None = None,
        attrs: dict | None = None,
    ) -> None:
        """Append one run record (no-op without ``--history-dir``).
        Call after :meth:`finish` so the span stream is complete."""
        if self.history_dir is None:
            return
        from repro.obs.aggregate import phase_totals
        from repro.obs.history import HistoryStore

        store = HistoryStore(self.history_dir)
        store.record(
            kind,
            workload=workload,
            arch=arch,
            config=config,
            duration_seconds=time.perf_counter() - self.started,
            phases=phase_totals(self.sink.events),
            counters=metrics.snapshot()["counters"],
            attrs=attrs or {},
        )
        print(f"history record ({kind}) appended under {store.root}")


def _obs_session(args: argparse.Namespace) -> _ObsSession | None:
    trace_path = getattr(args, "trace", None)
    profile = getattr(args, "profile", False)
    history_dir = getattr(args, "history_dir", None)
    if trace_path is None and not profile and history_dir is None:
        return None
    return _ObsSession(trace_path, profile, history_dir)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `python -m repro ... | head`
        return 0  # must precede OSError: BrokenPipeError is a subclass
    except OSError as exc:  # unwritable --trace / --out paths etc.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "codegen":
        return _cmd_codegen(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "scale":
        return _cmd_scale(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _cmd_list() -> int:
    print("workloads:")
    for name in workload_names():
        graph = make_workload(name)
        print(f"  {name:12s} {graph.num_nodes:3d} nodes, "
              f"{graph.num_edges:3d} edges, work {graph.total_work()}")
    print("architecture kinds:")
    print("  " + ", ".join(sorted(ARCHITECTURE_KINDS)))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = make_workload(args.workload)
    print(f"workload {graph.name}")
    print(f"  nodes:           {graph.num_nodes}")
    print(f"  edges:           {graph.num_edges}")
    print(f"  total work:      {graph.total_work()}")
    print(f"  delayed edges:   {sum(1 for e in graph.edges() if e.delay)}")
    print(f"  critical path:   {critical_path_length(graph)}")
    print(f"  iteration bound: {iteration_bound(graph)}")
    return 0


def _make_pair(args: argparse.Namespace):
    name = args.workload or args.workload_pos
    if name is None:
        raise ReproError(
            "no workload given (positional or --workload); "
            f"known: {', '.join(workload_names())}"
        )
    if name not in workload_names():
        raise ReproError(
            f"unknown workload {name!r}; known: {', '.join(workload_names())}"
        )
    graph = make_workload(name)
    if args.slowdown > 1:
        graph = slowdown(graph, args.slowdown)
    arch = make_architecture(args.arch, args.pes)
    return graph, arch


@dataclasses.dataclass(frozen=True)
class _RestartResultView:
    """Adapts a RestartReport to the CycloResult fields the schedule
    command renders, so both paths share one output pipeline."""

    graph: object
    schedule: object
    initial_length: int
    final_length: int
    stop_reason: str


def _cmd_schedule(args: argparse.Namespace) -> int:
    graph, arch = _make_pair(args)
    contention = args.contention if args.contention != "none" else None
    cfg = CycloConfig(
        relaxation=not args.no_relax,
        max_iterations=args.iterations,
        pipelined_pes=args.pipelined,
        validate_each_step=False,
        contention_model=contention,
        contention_weight=args.contention_weight,
        contention_rounds=args.contention_rounds,
    )
    if args.restarts > 1 and args.refine:
        raise ReproError("--refine cannot be combined with --restarts")
    if contention is not None and (args.restarts > 1 or args.refine):
        raise ReproError(
            "--contention cannot be combined with --restarts or --refine"
        )
    report = None
    contended = None
    session = _obs_session(args)
    try:
        if contention is not None:
            from repro.core import contention_aware_schedule

            contended = contention_aware_schedule(graph, arch, config=cfg)
            winner = (
                contended.blind if contended.comm is None else contended.aware
            )
            result = _RestartResultView(
                graph=contended.graph,
                schedule=contended.schedule,
                initial_length=contended.initial_length,
                final_length=contended.final_length,
                stop_reason=winner.stop_reason,
            )
        elif args.restarts > 1:
            from repro.perf import best_of_restarts

            report = best_of_restarts(
                graph,
                arch,
                cfg,
                restarts=args.restarts,
                jobs=args.jobs,
                seed=args.restart_seed,
            )
            result = _RestartResultView(
                graph=report.graph,
                schedule=report.schedule,
                initial_length=report.winner.initial_length,
                final_length=report.final_length,
                stop_reason=report.winner.stop_reason,
            )
        elif args.refine:
            result = optimize(graph, arch, config=cfg)
        else:
            result = cyclo_compact(graph, arch, config=cfg)
        if session is not None:
            # an explicit final legality check, so every traced run
            # records a validate phase alongside startup/rotate/remap
            from repro.schedule import collect_violations

            final_violations = collect_violations(
                result.graph, arch, result.schedule,
                pipelined_pes=args.pipelined,
                comm=contended.comm if contended is not None else None,
            )
            if final_violations:  # pragma: no cover - defensive
                print("warning: final schedule is illegal:", file=sys.stderr)
                for violation in final_violations:
                    print(f"  {violation}", file=sys.stderr)
    finally:
        if session is not None:
            session.finish()
    if session is not None:
        session.record_history(
            "schedule",
            workload=graph.name,
            arch=arch.name,
            config=cfg.to_dict(),
            attrs={
                "initial_length": result.initial_length,
                "final_length": result.final_length,
                "stop_reason": result.stop_reason,
            },
        )
    bounds = schedule_bounds(graph, arch)
    print(f"{graph.name} on {arch.name}: "
          f"{result.initial_length} -> {result.final_length} control steps "
          f"(lower bound {bounds.lower}, sequential {bounds.sequential})")
    if contended is not None:
        rounds = len(contended.round_costs) - 1
        winner_name = (
            "blind baseline" if contended.comm is None
            else "contention-aware"
        )
        print(f"contention ({contended.model.name}, weight "
              f"{args.contention_weight}, {rounds} round(s)): "
              f"blind bill {contended.blind_cost} -> winner bill "
              f"{contended.final_cost} ({winner_name})")
    if report is not None:
        print(f"best of {report.restarts} restarts "
              f"(seed {report.seed}, {report.stages} stages): "
              f"winner restart {report.winner.index}")
        for o in report.outcomes:
            marker = "*" if o.index == report.winner.index else " "
            print(f"  {marker} restart {o.index}: length {o.length} "
                  f"after {o.passes} passes ({o.stop_reason})")
    metrics = compute_metrics(result.graph, arch, result.schedule)
    print(f"utilization {metrics.utilization:.2f}, speedup "
          f"{metrics.speedup:.2f}, comm cost {metrics.comm_cost}")
    if args.render == "table":
        print(render_table(result.schedule, title="compacted schedule:"))
    elif args.render == "gantt":
        print(render_gantt(result.schedule, title="compacted schedule:"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    graph, arch = _make_pair(args)
    cfg = CycloConfig(max_iterations=40, validate_each_step=False)
    session = _obs_session(args)
    try:
        result = cyclo_compact(graph, arch, config=cfg)
        sim = simulate(result.graph, arch, result.schedule, args.loops)
        buffers = buffer_requirements(
            result.graph, arch, result.schedule, result=sim
        )
    finally:
        if session is not None:
            session.finish(sim=sim if "sim" in locals() else None)
    print(f"simulated {sim.iterations} iterations of {graph.name} "
          f"on {arch.name} (L = {sim.schedule_length})")
    print(f"  makespan:        {sim.makespan} control steps")
    print(f"  throughput:      {sim.throughput():.4f} iterations/cs")
    print(f"  messages:        {len(sim.messages)} "
          f"({sim.total_comm_steps} transit control steps)")
    print(f"  buffer tokens:   {buffers.total_tokens} "
          f"({buffers.total_words} words)")
    _print_load_summary(sim)
    return 0


def _print_load_summary(sim) -> None:
    """Per-PE utilisation and per-link traffic (load-imbalance view)."""
    busy = sim.pe_busy_steps()
    utilisation = sim.pe_utilisation()
    makespan = sim.makespan
    print("per-PE utilisation:")
    for pe in sorted(busy):
        bar = "#" * round(utilisation[pe] * 20)
        print(f"  pe{pe + 1}:  {busy[pe]:4d}/{makespan} cs busy  "
              f"({utilisation[pe] * 100:5.1f}%)  |{bar:<20}|")
    traffic = sim.link_traffic()
    if traffic:
        print("per-link traffic:")
        for (src, dst), t in traffic.items():
            print(f"  pe{src + 1}->pe{dst + 1}:  {t.messages:3d} messages, "
                  f"{t.volume:3d} words, {t.transit_steps:3d} transit cs")
    else:
        print("per-link traffic: none (all dependences local)")


def _cmd_codegen(args: argparse.Namespace) -> int:
    graph, arch = _make_pair(args)
    cfg = CycloConfig(max_iterations=40, validate_each_step=False)
    result = cyclo_compact(graph, arch, config=cfg)
    program = generate_program(result.graph, arch, result.schedule)
    print(program.render())
    print(f"\n{program.total_computes} computes, "
          f"{program.total_sends} messages per iteration")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import generate_full_report

    session = _obs_session(args)
    try:
        text = generate_full_report(
            compaction_passes=args.iterations,
            include_table11=not args.skip_table11,
        )
    finally:
        if session is not None:
            session.finish()
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text + "\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    cfg = CycloConfig(max_iterations=args.iterations, validate_each_step=False)
    if args.name == "figure1":
        from repro.workloads import figure1_csdfg, figure1_mesh

        cell, result = run_cell(figure1_csdfg(), figure1_mesh(), config=cfg)
        print(render_table(result.initial_schedule, title="start-up (paper: 7 cs):"))
        print()
        print(render_table(
            result.schedule,
            title=f"compacted (paper: 5 cs, measured: {cell.after} cs):",
        ))
        return 0
    if args.name == "tables19":
        from repro.workloads import figure7_csdfg

        cells = run_grid(figure7_csdfg(), paper_architectures(8), config=cfg)
        print(format_cells(cells))
        return 0
    # table11
    from repro.workloads import elliptic_wave_filter, lattice_filter

    rows = []
    for name, graph in (
        ("Elliptic Filter", slowdown(elliptic_wave_filter(), 3)),
        ("Lattice Filter", slowdown(lattice_filter(8), 3)),
    ):
        for relaxation, label in ((False, "w/o"), (True, "with")):
            run_cfg = CycloConfig(
                relaxation=relaxation,
                max_iterations=args.iterations,
                validate_each_step=False,
            )
            cells = run_grid(
                graph,
                paper_architectures(8),
                relaxation=relaxation,
                config=run_cfg,
            )
            rows.append((name, label, cells))
    print(format_table11(rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweep import (
        pe_count_sweep,
        slowdown_sweep,
        volume_sweep,
    )

    if args.workload not in workload_names():
        raise ReproError(
            f"unknown workload {args.workload!r}; "
            f"known: {', '.join(workload_names())}"
        )
    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    defaults = {
        "pes": "2,4,8,16",
        "volume": "1,2,4,8",
        "slowdown": "1,2,3,4",
    }
    raw = args.values if args.values is not None else defaults[args.param]
    try:
        values = [int(v) for v in raw.split(",") if v.strip()]
    except ValueError:
        raise ReproError(
            f"--values expects comma-separated integers, got {raw!r}"
        ) from None
    if not values:
        raise ReproError("--values is empty")

    graph = make_workload(args.workload)
    cfg = CycloConfig(
        max_iterations=args.iterations, validate_each_step=False
    )
    session = _obs_session(args)
    try:
        if args.param == "pes":
            points = pe_count_sweep(
                graph, args.arch, values, config=cfg, jobs=args.jobs
            )
            label = "PEs"
        elif args.param == "volume":
            points = volume_sweep(
                graph, args.arch, args.pes, values, config=cfg, jobs=args.jobs
            )
            label = "volume x"
        else:
            points = slowdown_sweep(
                graph, args.arch, args.pes, values, config=cfg, jobs=args.jobs
            )
            label = "slowdown"
    finally:
        if session is not None:
            session.finish()
    if session is not None:
        session.record_history(
            "sweep",
            workload=graph.name,
            arch=args.arch,
            config={
                "param": args.param,
                "values": values,
                "iterations": args.iterations,
                "jobs": args.jobs,
                "cyclo": cfg.to_dict(),
            },
            attrs={"points": len(points)},
        )
    print(f"{args.param} sweep: {graph.name} on {args.arch} "
          f"({len(points)} point(s), jobs={args.jobs})")
    print(f"  {label:>10s}  {'init':>5s}  {'after':>5s}  {'bound':>7s}")
    for p in points:
        print(f"  {p.x:>10d}  {p.init:>5d}  {p.after:>5d}  "
              f"{str(p.bound):>7s}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    graph, arch = _make_pair(args)
    if args.runs < 1:
        raise ReproError(f"--runs must be >= 1, got {args.runs}")
    cfg = CycloConfig(
        max_iterations=args.iterations, validate_each_step=True
    )
    sink = InMemorySink()
    metrics.reset()
    install_sink(sink)
    try:
        lengths = []
        for _ in range(args.runs):
            result = cyclo_compact(graph, arch, config=cfg)
            lengths.append((result.initial_length, result.final_length))
    finally:
        remove_sink(sink)
    print(f"profiled {args.runs} run(s) of cyclo_compact: "
          f"{graph.name} on {arch.name} "
          f"({lengths[0][0]} -> {lengths[0][1]} control steps)")
    print()
    print(format_breakdown(phase_breakdown(sink.events)))
    print()
    print(metrics_report(metrics.snapshot()))
    if args.trace:
        path = write_chrome_trace(args.trace, sink.events)
        print(f"\ntrace written to {path}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.qa import PROPERTIES, GraphProfile, run_fuzz

    if args.replay:
        return _cmd_fuzz_replay(args.replay)
    if args.trials < 1:
        raise ReproError(f"--trials must be >= 1, got {args.trials}")
    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    properties = None
    if args.properties is not None:
        properties = tuple(
            name.strip() for name in args.properties.split(",") if name.strip()
        )
        unknown = [name for name in properties if name not in PROPERTIES]
        if unknown or not properties:
            raise ReproError(
                f"unknown properties {unknown}; "
                f"known: {', '.join(PROPERTIES)}"
            )
    profile = GraphProfile(max_nodes=args.max_nodes)
    session = _obs_session(args)
    try:
        report = run_fuzz(
            trials=args.trials,
            seed=args.seed,
            properties=properties,
            profile=profile,
            max_pes=args.max_pes,
            shrink=not args.no_shrink,
            time_budget_seconds=args.time_budget,
            jobs=args.jobs,
        )
    finally:
        if session is not None:
            session.finish()
    if session is not None:
        session.record_history(
            "fuzz",
            workload="pipeline-fuzz",
            arch=f"maxpes{args.max_pes}",
            config={
                "trials": args.trials,
                "seed": args.seed,
                "max_nodes": args.max_nodes,
                "max_pes": args.max_pes,
                "properties": sorted(properties) if properties else "all",
                "shrink": not args.no_shrink,
                "jobs": args.jobs,
            },
            attrs={
                "trials_run": len(report.trials),
                "failures": len(report.failures),
            },
        )
    print(report.describe())
    if args.out and report.failures:
        _write_reproducers(args.out, report)
    return 0 if report.ok else 1


def _write_reproducers(out_dir: str, report) -> None:
    from pathlib import Path

    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for trial in report.failures:
        stem = f"seed{report.seed}-trial{trial.index}"
        if trial.case_json is not None:
            path = directory / f"{stem}.json"
            path.write_text(trial.case_json + "\n")
            written.append(path)
        if trial.shrunk_json is not None:
            path = directory / f"{stem}-shrunk.json"
            path.write_text(trial.shrunk_json + "\n")
            written.append(path)
    print(f"wrote {len(written)} reproducer file(s) to {directory}")


def _cmd_fuzz_replay(paths: list[str]) -> int:
    from pathlib import Path

    from repro.errors import QAError
    from repro.qa import ReproCase, load_cases, replay_case

    cases: list[tuple[Path, "ReproCase"]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            cases.extend(load_cases(path))
        elif path.is_file():
            try:
                cases.append((path, ReproCase.from_json(path.read_text())))
            except QAError as exc:
                raise ReproError(f"{path}: {exc}") from exc
        else:
            raise ReproError(f"--replay path {raw!r} does not exist")
    if not cases:
        raise ReproError("--replay found no reproducer cases")
    failures = 0
    for path, case in cases:
        violations = replay_case(case)
        if violations:
            failures += 1
            print(f"FAIL {path}: {case.describe()}")
            for v in violations[:4]:
                print(f"  {v}")
            if len(violations) > 4:
                print(f"  ... {len(violations) - 4} more")
        else:
            print(f"ok   {path}: {case.describe()}")
    verdict = (
        "all reproducers pass"
        if failures == 0
        else f"{failures} reproducer(s) FAIL"
    )
    print(f"replayed {len(cases)} case(s): {verdict}")
    return 0 if failures == 0 else 1


def _emit_report(report, args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analyze import render_report

    text = render_report(report, args.fmt)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"{args.fmt} report written to {args.out} "
              f"({report.summary()})")
    else:
        print(text)
    return report.exit_code(strict=args.strict)


def _parse_link_spec(spec: str) -> tuple[int, int]:
    """``A-B`` (1-based, as rendered) -> 0-based PE pair."""
    parts = spec.replace(",", "-").split("-")
    try:
        a, b = (int(p) for p in parts)
    except ValueError:
        raise ReproError(
            f"--cut-link expects A-B (two 1-based PE ids), got {spec!r}"
        ) from None
    if a < 1 or b < 1:
        raise ReproError(f"--cut-link is 1-based, got {spec!r}")
    return a - 1, b - 1


def _cmd_list_rules() -> int:
    from repro.analyze import RULES

    band = None
    for code in sorted(RULES):
        entry = RULES[code]
        if code[:2] != band:
            band = code[:2]
            print({
                "RA": "input analyzer (repro analyze)",
                "RL": "codebase lint (repro lint)",
                "RD": "determinism flow (repro analyze --flow)",
                "RC": "engine contracts (repro analyze --flow)",
            }.get(band, band) + ":")
        print(f"  {entry.code}  {entry.severity:7s}  {entry.title}")
    print(f"{len(RULES)} rule(s); details in docs/analysis.md")
    return 0


def _cmd_flow(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.analyze import analyze_flow

    paths = args.flow or [Path(repro.__file__).parent]
    return _emit_report(analyze_flow(paths), args)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analyze import sanitize_command

    target = list(args.target)
    if target and target[0] == "--":
        target = target[1:]
    report = sanitize_command(
        target,
        jobs_a=args.jobs_a, jobs_b=args.jobs_b,
        hashseed_a=args.hashseed_a, hashseed_b=args.hashseed_b,
        timeout=args.timeout,
    )
    print(report.describe())
    for line in report.diff:
        print(f"  {line}")
    if args.out:
        Path(args.out).write_text(report.to_json() + "\n")
        print(f"sanitize verdict written to {args.out}")
    return report.exit_code()


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analyze import (
        AnalysisReport,
        analyze_inputs,
        build_architecture,
        load_config_input,
        load_graph_input,
        load_schedule_input,
    )

    if args.list_rules:
        return _cmd_list_rules()
    if args.flow is not None:
        return _cmd_flow(args)
    if args.paper_suite:
        return _cmd_analyze_suite(args)
    if args.graph is None:
        raise ReproError(
            "no graph given: pass a CSDFG JSON file or a workload name "
            "(or --paper-suite)"
        )

    report = AnalysisReport(subject=f"{args.graph} on {args.arch}")
    graph, diags = load_graph_input(args.graph)
    report.extend(diags)

    failed_pes = []
    for pe in args.fail_pe:
        if pe < 1:
            raise ReproError(f"--fail-pe is 1-based, got {pe}")
        failed_pes.append(pe - 1)
    failed_links = [_parse_link_spec(s) for s in args.cut_link]
    arch, diags = build_architecture(
        args.arch, args.pes,
        failed_pes=tuple(failed_pes),
        failed_links=tuple(failed_links),
    )
    report.extend(diags)

    config = None
    target = args.target_length
    if args.config:
        config, cfg_target, diags = load_config_input(args.config)
        report.extend(diags)
        if target is None:
            target = cfg_target
    schedule = None
    if args.schedule:
        schedule, diags = load_schedule_input(args.schedule)
        report.extend(diags)

    if graph is not None:
        if args.slowdown > 1:
            graph = slowdown(graph, args.slowdown)
        report.merge(analyze_inputs(
            graph, arch,
            config=config,
            schedule=schedule,
            target_length=target,
            subject=report.subject,
        ))
    return _emit_report(report, args)


def _cmd_analyze_suite(args: argparse.Namespace) -> int:
    """``analyze --paper-suite``: every workload x every paper topology."""
    from repro.analyze import AnalysisReport, analyze_inputs

    combined = AnalysisReport(
        subject=f"paper suite ({args.pes}-PE paper topologies)"
    )
    pairs = 0
    for name in workload_names():
        graph = make_workload(name)
        if args.slowdown > 1:
            graph = slowdown(graph, args.slowdown)
        for arch in paper_architectures(args.pes).values():
            pairs += 1
            report = analyze_inputs(graph, arch, target_length=None)
            if args.fmt == "text" and not report.ok:
                print(report.describe())
            combined.merge(report)
    if args.fmt == "text":
        print(f"analyzed {pairs} (workload, architecture) pair(s): "
              f"{combined.summary()}")
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(combined.describe() + "\n")
        return combined.exit_code(strict=args.strict)
    return _emit_report(combined, args)


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.analyze import lint_paths

    paths = args.paths or [Path(repro.__file__).parent]
    return _emit_report(lint_paths(paths), args)


def _cmd_faults(args: argparse.Namespace) -> int:
    if args.faults_command == "inject":
        return _cmd_faults_inject(args)
    if args.faults_command == "repair":
        return _cmd_faults_repair(args)
    return _cmd_faults_campaign(args)


def _compacted(args: argparse.Namespace):
    graph, arch = _make_pair(args)
    cfg = CycloConfig(max_iterations=40, validate_each_step=False)
    return arch, cyclo_compact(graph, arch, config=cfg)


def _cmd_faults_inject(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.resilience import (
        FaultCampaign,
        random_campaign,
        simulate_with_faults,
    )

    arch, result = _compacted(args)
    if args.campaign:
        campaign = FaultCampaign.from_json(Path(args.campaign).read_text())
    else:
        campaign = random_campaign(
            arch,
            seed=args.seed,
            num_faults=args.num_faults,
            horizon=max(1, result.schedule.length * max(1, args.loops - 1)),
            transient_fraction=args.transient,
        )
    print(campaign.describe())
    sim = simulate_with_faults(
        result.graph, arch, result.schedule, args.loops, campaign
    )
    print(sim.describe())
    return 0


def _cmd_faults_repair(args: argparse.Namespace) -> int:
    from repro.resilience import LinkFault, PEFault, repair_schedule

    faults = []
    for pe in args.kill_pe:
        if pe < 1:
            raise ReproError(f"--kill-pe is 1-based, got {pe}")
        faults.append(PEFault(pe - 1))
    for spec in args.cut_link:
        parts = spec.replace(",", "-").split("-")
        try:
            a, b = (int(p) for p in parts)
        except ValueError:
            raise ReproError(
                f"--cut-link expects A-B (two 1-based PE ids), got {spec!r}"
            ) from None
        if a < 1 or b < 1:
            raise ReproError(f"--cut-link is 1-based, got {spec!r}")
        faults.append(LinkFault(a - 1, b - 1))
    if not faults:
        raise ReproError(
            "nothing to repair: pass --kill-pe N and/or --cut-link A-B"
        )

    arch, result = _compacted(args)
    for fault in faults:
        print(fault.describe())
    rep = repair_schedule(
        result.graph,
        arch,
        result.schedule,
        faults,
        max_regression=args.max_regression,
    )
    print(
        f"repair ({rep.strategy}): {rep.original_length} -> "
        f"{rep.repaired_length} control steps "
        f"({rep.regression:.2f}x) on {rep.degraded.num_alive} surviving "
        f"PE(s), moved {len(rep.moved)} task(s)"
    )
    if args.render == "table":
        print(render_table(rep.schedule, title="repaired schedule:"))
    return 0


def _cmd_faults_campaign(args: argparse.Namespace) -> int:
    from repro.resilience import run_chaos_campaign

    session = _obs_session(args)
    try:
        report = run_chaos_campaign(
            trials=args.trials,
            seed=args.seed,
            num_pes=args.pes,
            max_faults=args.max_faults,
            transient_fraction=args.transient,
            time_budget_seconds=args.time_budget,
            jobs=args.jobs,
        )
    finally:
        if session is not None:
            session.finish()
    if session is not None:
        session.record_history(
            "chaos",
            workload="chaos-campaign",
            arch=f"pes{args.pes}",
            config={
                "trials": args.trials,
                "seed": args.seed,
                "pes": args.pes,
                "max_faults": args.max_faults,
                "transient": args.transient,
                "jobs": args.jobs,
            },
            attrs={
                "trials_run": len(report.trials),
                "invariant_holds": report.invariant_holds,
            },
        )
    print(report.describe())
    return 0 if report.invariant_holds else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "report":
        return _cmd_obs_report(args)
    if args.obs_command == "top":
        return _cmd_obs_top(args)
    if args.obs_command == "diff":
        return _cmd_obs_diff(args)
    if args.obs_command == "regressions":
        return _cmd_obs_regressions(args)
    return _cmd_obs_matrix(args)


def _is_history_path(raw: str) -> bool:
    from pathlib import Path

    p = Path(raw)
    return p.is_dir() or p.suffix == ".ndjson"


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.aggregate import (
        format_history_summary,
        hotspot_table,
        trace_file_span_events,
    )
    from repro.obs.history import load_records

    history_paths = [p for p in args.paths if _is_history_path(p)]
    trace_paths = [p for p in args.paths if not _is_history_path(p)]
    events: list[dict] = []
    for path in trace_paths:
        events.extend(trace_file_span_events(path))
    if trace_paths:
        print(f"## hotspots ({len(trace_paths)} trace file(s))")
        print()
        print(hotspot_table(events, limit=args.limit))
    if history_paths:
        records = load_records(history_paths)
        if trace_paths:
            print()
        print(f"## run history ({len(records)} record(s))")
        print()
        print(format_history_summary(records))
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.aggregate import trace_file_span_events, trace_stats
    from repro.obs.collapse import collapsed_stacks

    events: list[dict] = []
    for path in args.paths:
        events.extend(trace_file_span_events(path))
    stats = trace_stats(events)
    if args.limit > 0:
        stats = stats[: args.limit]
    if not stats:
        print("(no spans recorded)")
    else:
        width = max(len(s.name) for s in stats)
        print(f"{'span':<{width}}  {'calls':>7}  {'self (ms)':>10}  "
              f"{'total (ms)':>10}")
        for s in stats:
            print(f"{s.name:<{width}}  {s.calls:>7}  {s.self_ms:>10.3f}  "
                  f"{s.total_ms:>10.3f}")
    if args.collapsed:
        target = Path(args.collapsed)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "\n".join(collapsed_stacks(events)) + "\n", encoding="utf-8"
        )
        print(f"collapsed stacks written to {target}")
    return 0


def _obs_diff_phases(raw: str, kind: str | None) -> dict[str, float]:
    from repro.obs.aggregate import (
        phase_totals,
        record_phases,
        trace_file_span_events,
    )
    from repro.obs.history import load_records

    if _is_history_path(raw):
        records = load_records([raw])
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        return record_phases(records)
    return phase_totals(trace_file_span_events(raw))


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs.aggregate import diff_tables, format_diff

    a = _obs_diff_phases(args.a, args.kind)
    b = _obs_diff_phases(args.b, args.kind)
    rows = diff_tables(a, b)
    print(format_diff(rows, a_label=args.a, b_label=args.b))
    return 0


def _cmd_obs_regressions(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.aggregate import (
        detect_regressions,
        fit_baselines,
        format_regressions,
    )
    from repro.obs.history import HistoryStore

    if args.threshold <= 1.0:
        raise ReproError(
            f"--threshold must exceed 1.0, got {args.threshold}"
        )
    root = Path(args.history_dir)
    store = HistoryStore(root)
    records = store.load(args.kind)
    if not records:
        print(f"no history records under {root}")
        return 0
    found = detect_regressions(
        records, threshold=args.threshold, min_seconds=args.min_seconds
    )
    checked = len(fit_baselines(records))
    print(format_regressions(found, checked=checked))
    return 1 if found else 0


def _cmd_obs_matrix(args: argparse.Namespace) -> int:
    from repro.obs.gate import run_gate_matrix

    records = run_gate_matrix(
        args.history_dir, collapsed_dir=args.collapsed_dir
    )
    print(f"gate matrix: {len(records)} cell(s) into {args.history_dir}")
    for rec in records:
        print(f"  {rec.workload} on {rec.arch}: "
              f"{rec.duration_seconds:.3f}s, "
              f"length {rec.attrs.get('final_length')}")
    if args.collapsed_dir:
        print(f"collapsed stacks under {args.collapsed_dir}")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    import json

    from repro.perf.scale import cache_hit_rate, run_scale_matrix

    rows, records = run_scale_matrix(
        args.history_dir, quick=args.quick, jobs=args.jobs
    )
    mode = "quick" if args.quick else "full"
    print(f"scale tier ({mode}): {len(rows)} cell(s)")
    for row in rows:
        print(f"  {row['workload']:>18s} on {row['arch']:>10s}: "
              f"{row['duration_seconds']:7.2f}s "
              f"{row['nodes_per_second']:9.0f} nodes/s  "
              f"len {row['initial_length']} -> {row['final_length']} "
              f"({row['stop_reason']}, "
              f"hit {cache_hit_rate(row['counters']):.4f})")
    if records:
        print(f"{len(records)} scale record(s) into {args.history_dir}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump({"quick": args.quick, "results": rows}, fh, indent=2)
            fh.write("\n")
        print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
