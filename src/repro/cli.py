"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Registered workloads and architecture kinds.
``info``
    Structural statistics and bounds of one workload.
``schedule``
    Run start-up scheduling + cyclo-compaction on a (workload,
    architecture) pair and render the schedules.
``simulate``
    Execute a compacted schedule for N loop iterations and report the
    dynamic statistics.
``codegen``
    Emit the per-PE steady-state programs of a compacted schedule.
``report``
    Write the full markdown reproduction report (all paper
    experiments, paper-vs-measured).
``experiment``
    Regenerate one of the paper's experiments (``figure1``,
    ``tables19``, ``table11``) on stdout.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import format_cells, format_table11, run_cell, run_grid
from repro.arch import ARCHITECTURE_KINDS, make_architecture, paper_architectures
from repro.baselines import schedule_bounds
from repro.codegen import generate_program
from repro.core import CycloConfig, cyclo_compact, optimize
from repro.errors import ReproError
from repro.graph import critical_path_length, iteration_bound, slowdown
from repro.schedule import compute_metrics, render_gantt, render_table
from repro.sim import buffer_requirements, simulate
from repro.workloads import make_workload, workload_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cyclo-compaction scheduling (ICPP'95 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and architecture kinds")

    p_info = sub.add_parser("info", help="describe one workload")
    p_info.add_argument("workload", choices=workload_names())

    p_sched = sub.add_parser("schedule", help="schedule a workload")
    _add_pair_args(p_sched)
    p_sched.add_argument(
        "--no-relax",
        action="store_true",
        help="remapping without relaxation (Theorem 4.4 monotone mode)",
    )
    p_sched.add_argument(
        "--pipelined",
        action="store_true",
        help="pipelined processing elements (paper §2)",
    )
    p_sched.add_argument(
        "--iterations", type=int, default=None, help="compaction passes (z)"
    )
    p_sched.add_argument(
        "--render",
        choices=["table", "gantt", "none"],
        default="table",
        help="schedule rendering style",
    )
    p_sched.add_argument(
        "--refine",
        action="store_true",
        help="alternate compaction with local-search refinement",
    )

    p_code = sub.add_parser(
        "codegen", help="emit per-PE programs for a compacted schedule"
    )
    _add_pair_args(p_code)

    p_sim = sub.add_parser("simulate", help="simulate a compacted schedule")
    _add_pair_args(p_sim)
    p_sim.add_argument(
        "--loops", type=int, default=6, help="loop iterations to execute"
    )

    p_rep = sub.add_parser(
        "report", help="write the full markdown reproduction report"
    )
    p_rep.add_argument(
        "--out", default=None, help="output file (default: stdout)"
    )
    p_rep.add_argument(
        "--iterations", type=int, default=80, help="compaction passes per cell"
    )
    p_rep.add_argument(
        "--skip-table11", action="store_true", help="omit the filter study"
    )

    p_exp = sub.add_parser("experiment", help="regenerate a paper experiment")
    p_exp.add_argument("name", choices=["figure1", "tables19", "table11"])
    p_exp.add_argument(
        "--iterations", type=int, default=80, help="compaction passes per cell"
    )
    return parser


def _add_pair_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", required=True, choices=workload_names())
    parser.add_argument(
        "--arch",
        default="mesh",
        choices=sorted(ARCHITECTURE_KINDS),
        help="architecture kind",
    )
    parser.add_argument("--pes", type=int, default=8, help="processor count")
    parser.add_argument(
        "--slowdown", type=int, default=1, help="delay slow-down factor"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `python -m repro ... | head`
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "codegen":
        return _cmd_codegen(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _cmd_list() -> int:
    print("workloads:")
    for name in workload_names():
        graph = make_workload(name)
        print(f"  {name:12s} {graph.num_nodes:3d} nodes, "
              f"{graph.num_edges:3d} edges, work {graph.total_work()}")
    print("architecture kinds:")
    print("  " + ", ".join(sorted(ARCHITECTURE_KINDS)))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = make_workload(args.workload)
    print(f"workload {graph.name}")
    print(f"  nodes:           {graph.num_nodes}")
    print(f"  edges:           {graph.num_edges}")
    print(f"  total work:      {graph.total_work()}")
    print(f"  delayed edges:   {sum(1 for e in graph.edges() if e.delay)}")
    print(f"  critical path:   {critical_path_length(graph)}")
    print(f"  iteration bound: {iteration_bound(graph)}")
    return 0


def _make_pair(args: argparse.Namespace):
    graph = make_workload(args.workload)
    if args.slowdown > 1:
        graph = slowdown(graph, args.slowdown)
    arch = make_architecture(args.arch, args.pes)
    return graph, arch


def _cmd_schedule(args: argparse.Namespace) -> int:
    graph, arch = _make_pair(args)
    cfg = CycloConfig(
        relaxation=not args.no_relax,
        max_iterations=args.iterations,
        pipelined_pes=args.pipelined,
        validate_each_step=False,
    )
    if args.refine:
        result = optimize(graph, arch, config=cfg)
    else:
        result = cyclo_compact(graph, arch, config=cfg)
    bounds = schedule_bounds(graph, arch)
    print(f"{graph.name} on {arch.name}: "
          f"{result.initial_length} -> {result.final_length} control steps "
          f"(lower bound {bounds.lower}, sequential {bounds.sequential})")
    metrics = compute_metrics(result.graph, arch, result.schedule)
    print(f"utilization {metrics.utilization:.2f}, speedup "
          f"{metrics.speedup:.2f}, comm cost {metrics.comm_cost}")
    if args.render == "table":
        print(render_table(result.schedule, title="compacted schedule:"))
    elif args.render == "gantt":
        print(render_gantt(result.schedule, title="compacted schedule:"))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    graph, arch = _make_pair(args)
    cfg = CycloConfig(max_iterations=40, validate_each_step=False)
    result = cyclo_compact(graph, arch, config=cfg)
    sim = simulate(result.graph, arch, result.schedule, args.loops)
    buffers = buffer_requirements(
        result.graph, arch, result.schedule, result=sim
    )
    print(f"simulated {sim.iterations} iterations of {graph.name} "
          f"on {arch.name} (L = {sim.schedule_length})")
    print(f"  makespan:        {sim.makespan} control steps")
    print(f"  throughput:      {sim.throughput():.4f} iterations/cs")
    print(f"  messages:        {len(sim.messages)} "
          f"({sim.total_comm_steps} transit control steps)")
    print(f"  buffer tokens:   {buffers.total_tokens} "
          f"({buffers.total_words} words)")
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    graph, arch = _make_pair(args)
    cfg = CycloConfig(max_iterations=40, validate_each_step=False)
    result = cyclo_compact(graph, arch, config=cfg)
    program = generate_program(result.graph, arch, result.schedule)
    print(program.render())
    print(f"\n{program.total_computes} computes, "
          f"{program.total_sends} messages per iteration")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import generate_full_report

    text = generate_full_report(
        compaction_passes=args.iterations,
        include_table11=not args.skip_table11,
    )
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text + "\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    cfg = CycloConfig(max_iterations=args.iterations, validate_each_step=False)
    if args.name == "figure1":
        from repro.workloads import figure1_csdfg, figure1_mesh

        cell, result = run_cell(figure1_csdfg(), figure1_mesh(), config=cfg)
        print(render_table(result.initial_schedule, title="start-up (paper: 7 cs):"))
        print()
        print(render_table(
            result.schedule,
            title=f"compacted (paper: 5 cs, measured: {cell.after} cs):",
        ))
        return 0
    if args.name == "tables19":
        from repro.workloads import figure7_csdfg

        cells = run_grid(figure7_csdfg(), paper_architectures(8), config=cfg)
        print(format_cells(cells))
        return 0
    # table11
    from repro.workloads import elliptic_wave_filter, lattice_filter

    rows = []
    for name, graph in (
        ("Elliptic Filter", slowdown(elliptic_wave_filter(), 3)),
        ("Lattice Filter", slowdown(lattice_filter(8), 3)),
    ):
        for relaxation, label in ((False, "w/o"), (True, "with")):
            run_cfg = CycloConfig(
                relaxation=relaxation,
                max_iterations=args.iterations,
                validate_each_step=False,
            )
            cells = run_grid(
                graph,
                paper_architectures(8),
                relaxation=relaxation,
                config=run_cfg,
            )
            rows.append((name, label, cells))
    print(format_table11(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
