"""Mobility (Definition 3.4): scheduling slack of a node.

``MB(v)`` is the difference between the as-late-as-possible control
step of ``v`` (w.r.t. the critical path of the zero-delay sub-DAG) and
the control step currently being scheduled: how long ``v`` may still be
deferred without stretching the critical path.  Critical-path nodes at
their deadline have mobility 0; the priority function penalises high
mobility.
"""

from __future__ import annotations

from repro.graph.csdfg import CSDFG, Node
from repro.graph.properties import alap_times

__all__ = ["mobility_map", "mobility"]


def mobility_map(graph: CSDFG) -> dict[Node, int]:
    """ALAP start control step for every node (the static part of MB).

    ``MB(v)`` at scheduling time is ``mobility_map(g)[v] - cs_cur``.
    """
    return alap_times(graph)


def mobility(alap: dict[Node, int], node: Node, cs_cur: int) -> int:
    """``MB(node)`` when control step ``cs_cur`` is being filled.

    May go negative once the schedule has already slipped past the
    node's ALAP slot — the node is then overdue and the priority
    function boosts it.
    """
    return alap[node] - cs_cur
