"""Array-at-a-time kernels for the fast path (numpy-optional).

The thousand-node scale tier (``repro.perf.scale``) showed three
python-level loops dominating the profile: communication-cost row
construction (:mod:`repro.arch.cache`), the batch PSL edge-bound
evaluation (:class:`repro.core.psl.PSLTracker.refresh`) and the per-PE
anticipation folds of the remapping slot search
(:func:`repro.core.remapping._find_spot`).  This module provides each
of them as an array-at-a-time kernel with **two interchangeable
backends**:

* ``numpy`` — vectorised over the edge/PE axis, used automatically
  when numpy imports;
* ``python`` — a dependency-free fallback with *identical* outputs.

The backend is selected **once, at import time**: ``REPRO_KERNELS=python``
or ``REPRO_KERNELS=numpy`` in the environment forces a backend
(forcing numpy without numpy installed is a hard error — a silent
fallback would defeat the dual-backend equality tests), anything else
auto-detects.  Both implementations stay importable
(``py_kernels`` / ``np_kernels``) so the parametrized suite in
``tests/unit/test_batch_kernels.py`` and the ``kernels-agree`` fuzz
property can pin them exactly equal on the same inputs.

All arithmetic is integer-exact in both backends: ceil division is
``-(-a // b)``, which numpy's int64 ``//`` matches elementwise, so
"equal" means ``==`` on every element, never approximate.

Keep per-node python loops out of this module — ``repro lint`` rule
RL108 flags iteration over ``graph.nodes()``/``graph.edges()`` here;
kernels take flat sequences, callers do the (single) gather.
"""

from __future__ import annotations

import os
from typing import Callable, Sequence

from repro.errors import ReproError

__all__ = [
    "BACKEND",
    "BACKENDS",
    "comm_cost_row",
    "edge_bounds",
    "fold_max",
    "fold_min",
    "py_kernels",
    "np_kernels",
]

#: The selectable backend names.
BACKENDS = ("python", "numpy")

try:  # pragma: no cover - exercised via both-backend tests
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-free environments
    _np = None

_forced = os.environ.get("REPRO_KERNELS", "").strip().lower()
if _forced and _forced not in BACKENDS:
    raise ReproError(
        f"REPRO_KERNELS must be one of {BACKENDS}, got {_forced!r}"
    )
if _forced == "python":
    _np = None
elif _forced == "numpy" and _np is None:
    raise ReproError("REPRO_KERNELS=numpy but numpy is not importable")

#: The backend active in this process ("numpy" or "python").
BACKEND = "python" if _np is None else "numpy"


# ----------------------------------------------------------------------
# pure-python backend
# ----------------------------------------------------------------------
def _py_comm_cost_row(
    hops_row: Sequence[int],
    alive: Sequence[int],
    cost_of: Callable[[int], int],
    n: int,
) -> list:
    """One communication-cost cache row from a distance-matrix row.

    ``out[p] = cost_of(hops_row[p])`` for every ``p`` in ``alive``,
    ``None`` elsewhere (failed PEs).  ``cost_of`` is consulted at most
    once per distinct hop count.
    """
    by_hops: dict[int, int] = {}
    out: list = [None] * n
    for p in alive:
        hops = int(hops_row[p])
        cost = by_hops.get(hops)
        if cost is None:
            cost = cost_of(hops)
            by_hops[hops] = cost
        out[p] = cost
    return out


def _py_edge_bounds(
    finishes: Sequence[int],
    comms: Sequence[int],
    starts: Sequence[int],
    delays: Sequence[int],
) -> tuple[list[int], int | None]:
    """Per-edge PSL bounds: ``ceil((CE + M + 1 - CB) / delay)``.

    A zero-delay edge contributes bound 0 when satisfied; the first
    violated zero-delay edge short-circuits to ``([], index)`` so the
    caller can name the offending edge.
    """
    bounds: list[int] = []
    for i, delay in enumerate(delays):
        slack = finishes[i] + comms[i] + 1 - starts[i]
        if delay == 0:
            if slack > 0:
                return [], i
            bounds.append(0)
        else:
            bounds.append(-(-slack // delay))
    return bounds, None


def _py_fold_max(
    rows_consts: Sequence[tuple[Sequence, int]],
    pes: Sequence[int],
    base: int,
) -> list[int]:
    """``out[j] = max(base, max_i(rows[i][pes[j]] + consts[i]))``.

    The anticipation floor of the remapping slot search, evaluated for
    every candidate PE at once (one entry per element of ``pes``).
    """
    out = [base] * len(pes)
    for row, const in rows_consts:
        for j, p in enumerate(pes):
            v = row[p] + const
            if v > out[j]:
                out[j] = v
    return out


def _py_fold_min(
    rows_consts: Sequence[tuple[Sequence, int]],
    pes: Sequence[int],
) -> list[int]:
    """``out[j] = min_i(consts[i] - rows[i][pes[j]])`` — the zero-delay
    consumer ceiling, per candidate PE.  ``rows_consts`` must be
    non-empty (an empty constraint set means "no ceiling")."""
    first_row, first_const = rows_consts[0]
    out = [first_const - first_row[p] for p in pes]
    for row, const in rows_consts[1:]:
        for j, p in enumerate(pes):
            v = const - row[p]
            if v < out[j]:
                out[j] = v
    return out


# ----------------------------------------------------------------------
# numpy backend (int64 throughout; ceil division matches -(-a // b))
# ----------------------------------------------------------------------
def _np_comm_cost_row(
    hops_row: Sequence[int],
    alive: Sequence[int],
    cost_of: Callable[[int], int],
    n: int,
) -> list:
    hops = _np.asarray(hops_row, dtype=_np.int64)[
        _np.asarray(alive, dtype=_np.intp)
    ]
    uniq = _np.unique(hops)
    lookup = _np.empty(int(uniq[-1]) + 1 if uniq.size else 1, dtype=_np.int64)
    for h in uniq.tolist():
        lookup[h] = cost_of(h)
    costs = lookup[hops].tolist()
    out: list = [None] * n
    for p, cost in zip(alive, costs):
        out[p] = cost
    return out


def _np_edge_bounds(
    finishes: Sequence[int],
    comms: Sequence[int],
    starts: Sequence[int],
    delays: Sequence[int],
) -> tuple[list[int], int | None]:
    if not len(delays):
        return [], None
    f = _np.asarray(finishes, dtype=_np.int64)
    m = _np.asarray(comms, dtype=_np.int64)
    s = _np.asarray(starts, dtype=_np.int64)
    d = _np.asarray(delays, dtype=_np.int64)
    slack = f + m + 1 - s
    zero = d == 0
    violated = zero & (slack > 0)
    if violated.any():
        return [], int(_np.argmax(violated))
    bounds = _np.where(zero, 0, -(-slack // _np.where(zero, 1, d)))
    return bounds.tolist(), None


def _np_rows_matrix(
    rows_consts: Sequence[tuple[Sequence, int]], pes: Sequence[int]
):
    """Stack constraint rows gathered at ``pes`` into a (k, |pes|)
    int64 matrix, or ``None`` when some row holds ``None`` entries a
    direct conversion would choke on (degraded topologies)."""
    idx = _np.asarray(pes, dtype=_np.intp)
    gathered = []
    for row, _const in rows_consts:
        try:
            arr = _np.asarray(row, dtype=_np.int64)
        except (TypeError, ValueError):
            return None
        gathered.append(arr[idx])
    return _np.stack(gathered)


def _np_fold_max(
    rows_consts: Sequence[tuple[Sequence, int]],
    pes: Sequence[int],
    base: int,
) -> list[int]:
    if not rows_consts:
        return [base] * len(pes)
    matrix = _np_rows_matrix(rows_consts, pes)
    if matrix is None:
        return _py_fold_max(rows_consts, pes, base)
    consts = _np.asarray(
        [c for _row, c in rows_consts], dtype=_np.int64
    ).reshape(-1, 1)
    out = (matrix + consts).max(axis=0)
    return _np.maximum(out, base).tolist()


def _np_fold_min(
    rows_consts: Sequence[tuple[Sequence, int]],
    pes: Sequence[int],
) -> list[int]:
    matrix = _np_rows_matrix(rows_consts, pes)
    if matrix is None:
        return _py_fold_min(rows_consts, pes)
    consts = _np.asarray(
        [c for _row, c in rows_consts], dtype=_np.int64
    ).reshape(-1, 1)
    return (consts - matrix).min(axis=0).tolist()


# ----------------------------------------------------------------------
# backend handles
# ----------------------------------------------------------------------
class _Backend:
    """One named kernel set (importable for the dual-backend tests)."""

    __slots__ = ("name", "comm_cost_row", "edge_bounds", "fold_max", "fold_min")

    def __init__(self, name, comm_cost_row, edge_bounds, fold_max, fold_min):
        self.name = name
        self.comm_cost_row = comm_cost_row
        self.edge_bounds = edge_bounds
        self.fold_max = fold_max
        self.fold_min = fold_min


#: The pure-python kernel set (always available).
py_kernels = _Backend(
    "python", _py_comm_cost_row, _py_edge_bounds, _py_fold_max, _py_fold_min
)

#: The numpy kernel set (``None`` when numpy is unavailable or the
#: python backend was forced).
np_kernels = (
    _Backend(
        "numpy", _np_comm_cost_row, _np_edge_bounds, _np_fold_max, _np_fold_min
    )
    if _np is not None
    else None
)

_active = np_kernels if np_kernels is not None else py_kernels

#: Module-level aliases bound to the active backend at import time —
#: the hot paths call these without any per-call dispatch.
comm_cost_row = _active.comm_cost_row
edge_bounds = _active.edge_bounds
fold_max = _active.fold_max
fold_min = _active.fold_min
