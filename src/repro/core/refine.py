"""Post-compaction schedule refinement (extension).

Cyclo-compaction only ever re-places the rotated first row, so a
processor assignment chosen early can survive even when a better slot
opens up elsewhere.  This pass runs a deterministic local search on a
finished schedule: repeatedly pick one task, remove it, and re-place it
at the slot with the smallest implied schedule length (the same scoring
the remapping phase uses); keep the move when the projected schedule
length does not increase.  Sweeps repeat until a fixpoint.

The pass preserves the graph (no retiming) and is guaranteed to return
a legal schedule no longer than its input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.topology import Architecture
from repro.core.psl import projected_schedule_length
from repro.core.remapping import _find_spot
from repro.errors import ScheduleValidationError
from repro.graph.csdfg import CSDFG, Node
from repro.graph.validation import topological_order_zero_delay
from repro.schedule.table import ScheduleTable
from repro.schedule.validate import collect_violations

__all__ = ["RefineResult", "refine_schedule"]


@dataclass(frozen=True)
class RefineResult:
    """Outcome of :func:`refine_schedule`.

    Attributes
    ----------
    schedule:
        The refined schedule (a copy; the input is untouched).
    initial_length, final_length:
        Lengths before and after refinement.
    moves:
        Number of accepted single-task moves.
    sweeps:
        Full passes over the node set until the fixpoint.
    """

    schedule: ScheduleTable
    initial_length: int
    final_length: int
    moves: int
    sweeps: int

    @property
    def improvement(self) -> int:
        return self.initial_length - self.final_length


def refine_schedule(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    *,
    max_sweeps: int = 10,
    pipelined_pes: bool = False,
) -> RefineResult:
    """Local-search refinement of a legal schedule.

    Raises :class:`~repro.errors.ScheduleValidationError` when the input
    schedule is illegal.
    """
    violations = collect_violations(
        graph, arch, schedule, pipelined_pes=pipelined_pes
    )
    if violations:
        raise ScheduleValidationError(["refine needs a legal schedule"] + violations)

    work = schedule.copy(name=f"{schedule.name}:refined")
    initial_length = work.length
    order = topological_order_zero_delay(graph)
    total_moves = 0
    sweeps = 0

    for _ in range(max_sweeps):
        sweeps += 1
        moved_this_sweep = 0
        for node in order:
            if _try_move(graph, arch, work, node, pipelined_pes):
                moved_this_sweep += 1
        total_moves += moved_this_sweep
        if moved_this_sweep == 0:
            break

    return RefineResult(
        schedule=work,
        initial_length=initial_length,
        final_length=work.length,
        moves=total_moves,
        sweeps=sweeps,
    )


def _try_move(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    node: Node,
    pipelined_pes: bool,
) -> bool:
    """Re-place ``node`` if a strictly better or equal-length-but-
    earlier slot exists; returns True when the placement changed."""
    before = schedule.placement(node)
    length_before = schedule.length
    schedule.remove(node)
    spot = _find_spot(
        graph,
        arch,
        schedule,
        node,
        cap=length_before,
        pipelined_pes=pipelined_pes,
    )
    if spot is None:
        # restore verbatim (cannot happen for legal inputs, but be safe)
        schedule.place(
            node, before.pe, before.start, before.duration, before.occupancy
        )
        return False
    pe, cb, duration = spot
    occupancy = 1 if pipelined_pes else duration
    schedule.place(node, pe, cb, duration, occupancy)
    new_length = projected_schedule_length(
        graph, arch, schedule, pipelined_pes=pipelined_pes
    )
    changed = (pe, cb) != (before.pe, before.start)
    improved_position = new_length < length_before or (
        new_length == length_before
        and (cb + duration - 1, cb) < (before.finish, before.start)
    )
    if not (changed and improved_position):
        schedule.remove(node)
        schedule.place(
            node, before.pe, before.start, before.duration, before.occupancy
        )
        return False
    schedule.trim()
    schedule.set_length(max(new_length, schedule.makespan))
    return True
