"""High-level optimisation driver: cyclo-compaction + refinement rounds.

:func:`optimize` alternates the paper's cyclo-compaction with the
post-pass local search of :mod:`repro.core.refine` until neither makes
progress.  Each refinement can unstick the rotation from a local
minimum (it may move *any* task, not just the first row), after which
another compaction round often finds further rotations — on the
bundled 19-node workload this closes the remaining gap to the paper's
published lengths on the linear array.

This is the recommended one-call entry point for users who just want
the shortest schedule; ``cyclo_compact`` remains the paper-faithful
single-phase algorithm used by the reproduction benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.core.cyclo import cyclo_compact
from repro.core.refine import refine_schedule
from repro.graph.csdfg import CSDFG, Node
from repro.retiming.basic import compose_retimings
from repro.schedule.table import ScheduleTable

__all__ = ["OptimizeResult", "optimize"]


@dataclass
class OptimizeResult:
    """Outcome of :func:`optimize`.

    Attributes
    ----------
    schedule, graph, retiming:
        Best schedule found, the matching retimed graph, and the
        cumulative retiming from the input graph.
    initial_length:
        The very first start-up schedule's length.
    round_lengths:
        Best length after each (compaction + refinement) round.
    """

    schedule: ScheduleTable
    graph: CSDFG
    retiming: dict[Node, int]
    initial_length: int
    round_lengths: list[int] = field(default_factory=list)

    @property
    def final_length(self) -> int:
        return self.schedule.length


def optimize(
    graph: CSDFG,
    arch: Architecture,
    *,
    config: CycloConfig | None = None,
    max_rounds: int = 4,
) -> OptimizeResult:
    """Alternate cyclo-compaction and refinement until a fixpoint.

    The input graph is never mutated.  ``config`` parametrises every
    compaction round (its ``pipelined_pes`` flag also drives the
    refiner).
    """
    cfg = config if config is not None else CycloConfig(validate_each_step=False)

    result = cyclo_compact(graph, arch, config=cfg)
    best_schedule = result.schedule
    best_graph = result.graph
    cumulative = dict(result.retiming)
    initial_length = result.initial_length
    round_lengths = [best_schedule.length]

    for _ in range(max_rounds):
        improved = False

        refined = refine_schedule(
            best_graph,
            arch,
            best_schedule,
            pipelined_pes=cfg.pipelined_pes,
        )
        if refined.final_length <= best_schedule.length:
            # equal lengths still help: the moved placements give the
            # next compaction round a different first row to rotate
            moved = refined.moves > 0
            if refined.final_length < best_schedule.length:
                improved = True
            best_schedule = refined.schedule
            if not (improved or moved):
                break

        again = cyclo_compact(
            best_graph, arch, config=cfg, initial=best_schedule
        )
        if again.final_length < best_schedule.length:
            improved = True
            best_schedule = again.schedule
            best_graph = again.graph
            cumulative = compose_retimings(cumulative, again.retiming)
        round_lengths.append(best_schedule.length)
        if not improved:
            break

    return OptimizeResult(
        schedule=best_schedule,
        graph=best_graph,
        retiming=cumulative,
        initial_length=initial_length,
        round_lengths=round_lengths,
    )
