"""High-level optimisation driver: cyclo-compaction + refinement rounds.

:func:`optimize` alternates the paper's cyclo-compaction with the
post-pass local search of :mod:`repro.core.refine` until neither makes
progress.  Each refinement can unstick the rotation from a local
minimum (it may move *any* task, not just the first row), after which
another compaction round often finds further rotations — on the
bundled 19-node workload this closes the remaining gap to the paper's
published lengths on the linear array.

This is the recommended one-call entry point for users who just want
the shortest schedule; ``cyclo_compact`` remains the paper-faithful
single-phase algorithm used by the reproduction benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cache import CommCostCache
from repro.arch.comm import ContentionModel
from repro.arch.contention import (
    ContendedCostReport,
    LinkOccupancy,
    contended_cost,
)
from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.core.cyclo import CycloResult, cyclo_compact
from repro.core.refine import refine_schedule
from repro.errors import SchedulingError
from repro.graph.csdfg import CSDFG, Node
from repro.retiming.basic import compose_retimings
from repro.schedule.table import ScheduleTable

__all__ = [
    "OptimizeResult",
    "optimize",
    "ContentionResult",
    "contention_aware_schedule",
]


@dataclass
class OptimizeResult:
    """Outcome of :func:`optimize`.

    Attributes
    ----------
    schedule, graph, retiming:
        Best schedule found, the matching retimed graph, and the
        cumulative retiming from the input graph.
    initial_length:
        The very first start-up schedule's length.
    round_lengths:
        Best length after each (compaction + refinement) round.
    """

    schedule: ScheduleTable
    graph: CSDFG
    retiming: dict[Node, int]
    initial_length: int
    round_lengths: list[int] = field(default_factory=list)

    @property
    def final_length(self) -> int:
        return self.schedule.length


def optimize(
    graph: CSDFG,
    arch: Architecture,
    *,
    config: CycloConfig | None = None,
    max_rounds: int = 4,
) -> OptimizeResult:
    """Alternate cyclo-compaction and refinement until a fixpoint.

    The input graph is never mutated.  ``config`` parametrises every
    compaction round (its ``pipelined_pes`` flag also drives the
    refiner).
    """
    cfg = config if config is not None else CycloConfig(validate_each_step=False)

    result = cyclo_compact(graph, arch, config=cfg)
    best_schedule = result.schedule
    best_graph = result.graph
    cumulative = dict(result.retiming)
    initial_length = result.initial_length
    round_lengths = [best_schedule.length]

    for _ in range(max_rounds):
        improved = False

        refined = refine_schedule(
            best_graph,
            arch,
            best_schedule,
            pipelined_pes=cfg.pipelined_pes,
        )
        if refined.final_length <= best_schedule.length:
            # equal lengths still help: the moved placements give the
            # next compaction round a different first row to rotate
            moved = refined.moves > 0
            if refined.final_length < best_schedule.length:
                improved = True
            best_schedule = refined.schedule
            if not (improved or moved):
                break

        again = cyclo_compact(
            best_graph, arch, config=cfg, initial=best_schedule
        )
        if again.final_length < best_schedule.length:
            improved = True
            best_schedule = again.schedule
            best_graph = again.graph
            cumulative = compose_retimings(cumulative, again.retiming)
        round_lengths.append(best_schedule.length)
        if not improved:
            break

    return OptimizeResult(
        schedule=best_schedule,
        graph=best_graph,
        retiming=cumulative,
        initial_length=initial_length,
        round_lengths=round_lengths,
    )


@dataclass
class ContentionResult:
    """Outcome of :func:`contention_aware_schedule`.

    Attributes
    ----------
    schedule, graph, retiming:
        The winning schedule (lowest contended communication bill),
        its retimed graph and the cumulative retiming.
    comm:
        The frozen-occupancy :class:`CommCostCache` the winner was
        scheduled and validated under (``None`` when the
        contention-blind baseline won: it was priced contention-free).
    model:
        The contention model all candidates were evaluated with.
    blind, aware:
        The contention-blind baseline run and the winning
        contention-aware run (``None`` if no aware round improved).
    blind_report, final_report:
        Contended re-pricing of the baseline and of the winner (see
        :func:`repro.arch.contention.contended_cost`); the pipeline
        minimises ``contended_cost`` and never returns a schedule with
        a higher bill than the baseline.
    round_costs:
        Contended communication bill after the baseline and after each
        aware round, in order.
    """

    schedule: ScheduleTable
    graph: CSDFG
    retiming: dict[Node, int]
    comm: CommCostCache | None
    model: ContentionModel
    blind: CycloResult
    aware: CycloResult | None
    blind_report: ContendedCostReport
    final_report: ContendedCostReport
    round_costs: list[int] = field(default_factory=list)

    @property
    def initial_length(self) -> int:
        return self.blind.initial_length

    @property
    def final_length(self) -> int:
        return self.schedule.length

    @property
    def blind_cost(self) -> int:
        """Contended bill of the contention-blind baseline."""
        return self.blind_report.contended_cost

    @property
    def final_cost(self) -> int:
        """Contended bill of the returned schedule."""
        return self.final_report.contended_cost


def contention_aware_schedule(
    graph: CSDFG,
    arch: Architecture,
    *,
    config: CycloConfig | None = None,
    model: ContentionModel | None = None,
    rounds: int | None = None,
) -> ContentionResult:
    """Two-phase contention-sensitive scheduling.

    Phase one runs the paper's contention-blind cyclo-compaction.
    Phase two freezes the resulting assignment's link occupancy
    (:class:`~repro.arch.contention.LinkOccupancy`), rebuilds the comm
    cache with the surcharged prices and re-runs compaction under them
    — transfers routed through congested links now look expensive, so
    the remapper is steered away from the hotspots it created.  The
    reprice-and-reschedule step repeats up to ``rounds`` times (the
    occupancy snapshot refreshed from the latest schedule each round,
    stopping early at an occupancy fixpoint), and the schedule with
    the lowest *contended* communication bill wins; the blind baseline
    competes too, so the result is never worse than ignoring
    contention.

    ``model`` defaults to ``config.resolve_contention()`` and must be
    non-``None`` one way or the other; ``rounds`` defaults to
    ``config.contention_rounds``.  Every candidate is scheduled against
    a frozen price snapshot, so within each run the engine's legality
    guarantees hold verbatim — the winner is validator-legal under the
    returned ``comm`` cache.
    """
    cfg = config if config is not None else CycloConfig(validate_each_step=False)
    if model is None:
        model = cfg.resolve_contention()
    if model is None:
        raise SchedulingError(
            "contention_aware_schedule needs a contention model: pass "
            "model= or set config.contention_model"
        )
    num_rounds = rounds if rounds is not None else cfg.contention_rounds

    blind = cyclo_compact(graph, arch, config=cfg)
    blind_report = contended_cost(
        blind.graph, arch, blind.schedule.processor_map(), model
    )

    best_cost = blind_report.contended_cost
    best_report = blind_report
    best_run: CycloResult = blind
    best_comm: CommCostCache | None = None
    best_aware: CycloResult | None = None
    round_costs = [blind_report.contended_cost]

    occ = LinkOccupancy.from_assignment(
        blind.graph, arch, blind.schedule.processor_map()
    )
    for _ in range(num_rounds):
        comm = CommCostCache.for_graph(  # repro-lint: disable=RC203 (deliberate per-round reprice of the contention fixpoint)
            arch, graph, contention=model, occupancy=occ
        )
        aware = cyclo_compact(graph, arch, config=cfg, comm=comm)
        report = contended_cost(
            aware.graph, arch, aware.schedule.processor_map(), model
        )
        round_costs.append(report.contended_cost)
        # primary objective: the contended communication bill; equal
        # bills fall back to the paper's objective, schedule length
        if (report.contended_cost, aware.schedule.length) < (
            best_cost,
            best_run.schedule.length,
        ):
            best_cost = report.contended_cost
            best_report = report
            best_run = aware
            best_comm = comm
            best_aware = aware
        next_occ = LinkOccupancy.from_assignment(  # repro-lint: disable=RC203 (re-freeze from this round's placements)
            aware.graph, arch, aware.schedule.processor_map()
        )
        if next_occ.loads == occ.loads:
            break  # repricing fixpoint: the next round would repeat
        occ = next_occ

    return ContentionResult(
        schedule=best_run.schedule,
        graph=best_run.graph,
        retiming=dict(best_run.retiming),
        comm=best_comm,
        model=model,
        blind=blind,
        aware=best_aware,
        blind_report=blind_report,
        final_report=best_report,
        round_costs=round_costs,
    )
