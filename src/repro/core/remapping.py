"""The remapping phase (Definition 4.2): re-place rotated nodes.

Each rotated node is re-placed by scanning every free (processor,
control-step) slot and scoring it with the **implied schedule length**
— the smallest ``L`` at which that placement satisfies every dependence
incident to already-placed neighbours::

    in-edge  u -> v, dr = 0 :  cb >= CE(u) + M + 1          (feasibility)
    in-edge  u -> v, dr > 0 :  L >= ceil((CE(u) + M + 1 - cb) / dr)
    out-edge v -> x, dr = 0 :  CB(x) >= ce + M + 1           (feasibility)
    out-edge v -> x, dr > 0 :  L >= ceil((ce + M + 1 - CB(x)) / dr)

plus the node's own finish ``ce``.  The slot with the smallest implied
length wins (ties: earlier finish, earlier start, lower PE) — this is
the paper's remapping side condition "``CB(u) >= AN(u)``, ``CE(u) <
length(S)`` and ``PSL(v) <= length(S)`` for all v" turned from a filter
into the search objective.

*Remapping without relaxation* caps the implied length at the previous
schedule length and reports failure when any rotated node has no
admissible slot — the caller rolls the pass back, giving Theorem 4.4's
monotonicity.  *Remapping with relaxation* always places (the implied
length may exceed the previous length; the driver keeps the best
schedule seen, per Definition 4.2).

Fast path
---------
The slot search hoists all communication costs out of the inner loop:
for each constraint the full per-candidate-PE cost row is fetched once
(from a :class:`~repro.arch.cache.CommCostCache` when provided, else
via ``arch.comm_cost``), each candidate PE folds the rows into scalar
floor/ceiling/delayed-bound constants, and the per-slot work reduces to
a handful of integer ceil-divisions.  Zero-delay *in* constraints are
enforced entirely by the floor (every scanned slot satisfies them by
construction); zero-delay *out* constraints give a start-step ceiling
past which the PE's scan stops early — later slots can only violate
them.  The pruning changes the ``remap.candidate_slots`` metric (fewer
doomed slots are visited) but never the chosen placement.

Three scale-tier refinements keep the search cheap on thousand-node
tables:

* on wide machines the per-PE floor/ceiling folds run through the
  batched :func:`repro.core.kernels.fold_max` / ``fold_min`` kernels —
  one array expression over all candidate PEs instead of a python loop
  per PE;
* when the node has **no delayed in-edges**, every component of the
  slot key (implied length, ``ce``, ``cb``) is non-decreasing along
  the slot walk, so the first admissible start on a PE decides the
  whole PE; the scan then walks the interval index's gap skip-list
  (:meth:`~repro.schedule.table.ScheduleTable.free_gaps`) instead of
  every free cell — O(1) candidates instead of O(free cells);
* callers that already hold the zero-delay topological ranks (the
  compaction loop caches them across passes) pass them via
  ``topo_rank`` and skip the per-pass full-graph Kahn walk.

As with the earlier prunings these change only scan-size metrics,
never the chosen placement.

An optional :class:`~repro.core.psl.PSLTracker` replaces the full
``projected_schedule_length`` rescan after the placements with an
incremental update over edges incident to the remapped set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cache import CommCostCache
from repro.arch.topology import Architecture
from repro.core import kernels
from repro.core.psl import PSLTracker, projected_schedule_length
from repro.errors import InfeasibleScheduleError, SchedulingError
from repro.graph.csdfg import CSDFG, Node
from repro.graph.validation import topological_order_zero_delay
from repro.obs import metrics
from repro.schedule.table import ScheduleTable

__all__ = ["RemapOutcome", "remap_nodes"]

# below this many candidate PEs the batched floor/ceiling folds cost
# more in array setup than the plain python loop saves
_FOLD_MIN_PES = 16


@dataclass
class RemapOutcome:
    """Result of one remapping pass.

    Attributes
    ----------
    accepted:
        False when the without-relaxation policy rejected the pass (the
        caller must roll back).
    new_length:
        Schedule length after the pass (meaningful when accepted).
    placements:
        Where each rotated node landed, ``node -> (pe, cb)``.
    """

    accepted: bool
    new_length: int
    placements: dict[Node, tuple[int, int]] = field(default_factory=dict)


def remap_nodes(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    nodes: list[Node],
    *,
    previous_length: int,
    relaxation: bool,
    pipelined_pes: bool = False,
    strategy: str = "implied",
    comm: CommCostCache | None = None,
    psl: PSLTracker | None = None,
    topo_rank: dict[Node, int] | None = None,
    debug_check: bool = False,
) -> RemapOutcome:
    """Place ``nodes`` (already rotated out of ``schedule``) back in.

    ``schedule`` must be the rotated/renumbered table (length
    ``previous_length - 1`` with the rotated nodes absent).  On a
    rejected pass the trial placements are removed again so the caller
    can restore its snapshot cheaply.  ``strategy`` selects the slot
    search: ``"implied"`` (this implementation's scoring) or
    ``"first-fit"`` (the paper's literal procedure).

    ``comm`` supplies precomputed communication costs; ``psl`` supplies
    incremental projected-schedule-length bounds (its edge snapshot is
    restored on every rejected pass, so the tracker always reflects the
    schedule the caller sees).  ``topo_rank`` optionally supplies the
    full-graph zero-delay topological ranks (node -> position) so the
    placement order need not re-run Kahn's algorithm — it must match
    the graph's *current* delays.  ``debug_check=True`` cross-checks
    the incremental length against the full rescan and raises
    :class:`SchedulingError` on divergence.
    """
    ordered = _placement_order(graph, nodes, topo_rank)
    placed: list[Node] = []
    outcome = RemapOutcome(accepted=True, new_length=previous_length)
    cap = None if relaxation else previous_length
    metrics.inc("remap.nodes", len(ordered))
    # the snapshot is only consumed by the no-relaxation reject path
    # (an infeasible update commits nothing, so it needs no restore)
    snap = psl.snapshot(nodes) if psl is not None and not relaxation else None

    for node in ordered:
        spot = _find_spot(
            graph,
            arch,
            schedule,
            node,
            cap=cap,
            pipelined_pes=pipelined_pes,
            strategy=strategy,
            comm=comm,
        )
        if spot is None:
            metrics.inc("remap.unplaceable_nodes")
            _rollback(schedule, placed)
            return RemapOutcome(accepted=False, new_length=previous_length)
        pe, cb, duration = spot
        occupancy = 1 if pipelined_pes else duration
        schedule.place(node, pe, cb, duration, occupancy)
        placed.append(node)
        outcome.placements[node] = (pe, cb)

    if psl is not None:
        new_length = psl.update_nodes(nodes)
        if new_length is None:  # pragma: no cover - defensive
            _rollback(schedule, placed)
            return RemapOutcome(accepted=False, new_length=previous_length)
        if debug_check:
            full = projected_schedule_length(
                graph, arch, schedule, pipelined_pes=pipelined_pes, comm=comm
            )
            if full != new_length:
                raise SchedulingError(
                    f"incremental PSL {new_length} != full rescan {full} "
                    f"after remapping {sorted(map(str, nodes))}"
                )
    else:
        try:
            new_length = projected_schedule_length(
                graph, arch, schedule, pipelined_pes=pipelined_pes, comm=comm
            )
        except InfeasibleScheduleError:  # pragma: no cover - defensive
            _rollback(schedule, placed)
            return RemapOutcome(accepted=False, new_length=previous_length)

    if not relaxation and new_length > previous_length:
        _rollback(schedule, placed)
        if psl is not None:
            psl.restore(snap)
        return RemapOutcome(accepted=False, new_length=previous_length)

    schedule.trim()
    schedule.set_length(max(new_length, schedule.makespan))
    outcome.new_length = schedule.length
    return outcome


def _placement_order(
    graph: CSDFG,
    nodes: list[Node],
    topo_rank: dict[Node, int] | None = None,
) -> list[Node]:
    """Zero-delay topological order restricted to the rotated set, so a
    node's intra-iteration producers inside the set are placed first.

    Ranks are unique per node, so sorting by the full-graph rank and by
    the set-restricted rank produce the same list — which is what lets
    the compaction loop cache ``topo_rank`` across passes (the
    secondary time/name keys are kept for signature stability; unique
    ranks mean they never decide)."""
    if len(nodes) <= 1:
        return list(nodes)
    if topo_rank is None:
        topo_rank = {
            v: i for i, v in enumerate(topological_order_zero_delay(graph))
        }
    rank = topo_rank
    return sorted(nodes, key=lambda v: (rank[v], -graph.time(v), str(v)))


def _cost_row(
    arch: Architecture,
    comm: CommCostCache | None,
    fixed_pe: int,
    volume: int,
    *,
    outgoing: bool,
) -> list[int | None]:
    """Costs between ``fixed_pe`` and every candidate PE id.

    ``outgoing=True`` prices ``fixed_pe -> p`` (the candidate receives);
    ``outgoing=False`` prices ``p -> fixed_pe``.  Entries for PEs the
    scheduler never visits (failed ones) may be ``None``.
    """
    if comm is not None:
        row = (
            comm.row_from(fixed_pe, volume)
            if outgoing
            else comm.row_to(fixed_pe, volume)
        )
        if row is not None:
            return row
    row = [None] * arch.num_pes
    for p in arch.processors:
        row[p] = (
            arch.comm_cost(fixed_pe, p, volume)
            if outgoing
            else arch.comm_cost(p, fixed_pe, volume)
        )
    return row


def _find_spot(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    node: Node,
    *,
    cap: int | None,
    pipelined_pes: bool = False,
    strategy: str = "implied",
    comm: CommCostCache | None = None,
) -> tuple[int, int, int] | None:
    """Best ``(pe, cb, duration)`` slot for ``node``.

    ``strategy="implied"`` scans every free slot up to the horizon and
    minimises the implied schedule length; ``strategy="first-fit"``
    takes the earliest available slot at or after the anticipation
    bound, minimised across processors (the paper's procedure) — the
    cap still enforces the paper's ``PSL <= length(S)`` side condition.
    Returns ``None`` when no admissible slot fits under ``cap``.  The
    duration is the node's execution time on the chosen PE
    (heterogeneous machines scale it).
    """
    base_time = graph.time(node)
    tail = max(schedule.length, schedule.makespan)

    # constraint rows: one comm-cost fetch per constraint, not per slot
    in_zero: list[tuple[list[int | None], int]] = []  # (row, CE(u))
    in_delayed: list[tuple[list[int | None], int, int]] = []  # (row, CE, dr)
    out_zero: list[tuple[list[int | None], int]] = []  # (row, CB(x))
    out_delayed: list[tuple[list[int | None], int, int]] = []  # (row, CB, dr)
    self_loops: list[int] = []
    placements = schedule._placements
    for e in graph._pred[node].values():
        if e.src == node:
            self_loops.append(max(1, e.delay))
            continue
        p = placements.get(e.src)
        if p is not None:
            row = comm.row_from(p.pe, e.volume) if comm is not None else None
            if row is None:
                row = _cost_row(arch, comm, p.pe, e.volume, outgoing=True)
            finish_u = p.start + p.duration - 1
            if e.delay == 0:
                in_zero.append((row, finish_u))
            else:
                in_delayed.append((row, finish_u, e.delay))
    for e in graph._succ[node].values():
        if e.dst == node:
            continue
        p = placements.get(e.dst)
        if p is None:
            continue
        row = comm.row_to(p.pe, e.volume) if comm is not None else None
        if row is None:
            row = _cost_row(arch, comm, p.pe, e.volume, outgoing=False)
        if e.delay == 0:
            out_zero.append((row, p.start))
        else:
            out_delayed.append((row, p.start, e.delay))

    time_scales = arch.time_scales
    first_fit = strategy == "first-fit"
    best: tuple[int, int, int, int, int] | None = None
    pes_scanned = 0
    slots_scanned = 0
    processors = arch.processors
    # on wide machines fold the zero-delay floor/ceiling rows over all
    # candidate PEs at once through the batched kernels; narrow ones
    # keep the plain loops (array setup would dominate)
    floors: list[int] | None = None
    ceilings: list[int] | None = None
    if len(processors) >= _FOLD_MIN_PES:
        if in_zero:
            floors = kernels.fold_max(
                [(row, ce_u + 1) for row, ce_u in in_zero], processors, 1
            )
        if out_zero:
            ceilings = kernels.fold_min(out_zero, processors)
    # key: (implied, ce, cb, pe) for "implied"; (cb, ce, pe) lifted into
    # the same tuple shape for "first-fit"
    for j, pe in enumerate(processors):
        pes_scanned += 1
        duration = base_time * time_scales[pe]
        occupancy = 1 if pipelined_pes else duration
        # self-loop: L >= ceil(duration / d), placement-independent
        self_loop_bound = 0
        for d in self_loops:
            bound = -(-duration // d)
            if bound > self_loop_bound:
                self_loop_bound = bound
        # earliest start admissible w.r.t. zero-delay producers; every
        # slot at or past the floor satisfies all zero-delay in-edges
        if floors is not None:
            floor = floors[j]
        else:
            floor = 1
            for row, ce_u in in_zero:
                need = ce_u + row[pe] + 1
                if need > floor:
                    floor = need
        # latest start admissible w.r.t. zero-delay consumers: beyond
        # the ceiling every later slot violates some zero-delay out-edge
        ceiling: int | None = None
        if ceilings is not None:
            ceiling = ceilings[j] - duration
        else:
            for row, cb_x in out_zero:
                latest = cb_x - row[pe] - duration
                if ceiling is None or latest < ceiling:
                    ceiling = latest
        # with a cap, slots beyond it are pointless; without one, scan
        # far enough past the tail (and past the floor) that a free
        # slot is guaranteed on every PE
        horizon = (
            cap
            if cap is not None
            else (tail if tail > floor else floor) + duration
        )
        if floor > horizon - occupancy + 1 or (
            ceiling is not None and ceiling < floor
        ):
            # no admissible start on this PE: the slot walk would yield
            # nothing (or break at its first slot before counting it)
            continue
        if best is not None:
            # every slot's key starts with implied >= ce (or cb for
            # first-fit), both increasing in cb: when even the first
            # admissible start loses to the incumbent, the PE cannot win
            if (floor if first_fit else floor + duration - 1) > best[0]:
                continue
        # delayed bounds reduce to ceil((const ± cb) / dr) per slot
        in_del = (
            [(ce_u + row[pe] + 1, dr) for row, ce_u, dr in in_delayed]
            if in_delayed
            else ()
        )
        out_del = (
            [(duration + row[pe] - cb_x, dr) for row, cb_x, dr in out_delayed]
            if out_delayed
            else ()
        )
        if in_del:
            slots = schedule.free_slots(pe, floor, occupancy, horizon)
        else:
            # gap skip-list fast path: with no delayed in-edges every
            # key component (implied, ce, cb) is non-decreasing along
            # the slot walk, so the first reachable start decides the
            # whole PE — walk maximal gaps instead of free cells
            slots = (
                first
                for first, _last in schedule.free_gaps(
                    pe, floor, occupancy, horizon
                )
            )
        for cb in slots:
            if ceiling is not None and cb > ceiling:
                break
            ce = cb + duration - 1
            if best is not None and (cb if first_fit else ce) > best[0]:
                # keys are (implied, ...) with implied >= ce, or
                # (cb, ...) for first-fit; both components only grow
                # along the slot walk, so no later slot can win either
                break
            slots_scanned += 1
            implied = ce if ce > self_loop_bound else self_loop_bound
            for need, dr in in_del:
                bound = -(-(need - cb) // dr)
                if bound > implied:
                    implied = bound
            for base_slack, dr in out_del:
                bound = -(-(cb + base_slack) // dr)
                if bound > implied:
                    implied = bound
            if cap is None or implied <= cap:
                if first_fit:
                    key = (cb, ce, 0, pe, duration)
                else:
                    key = (implied, ce, cb, pe, duration)
                if best is None or key < best:
                    best = key
                if first_fit or implied == ce:
                    # first-fit keeps the earliest admissible slot
                    # per PE; implied-scoring stops once no later
                    # slot on this PE can score better
                    break
            if not in_del:
                # monotone keys again: whether this slot was admissible
                # or capped out, every later slot repeats or worsens it
                break
    metrics.inc("remap.candidate_pes", pes_scanned)
    metrics.inc("remap.candidate_slots", slots_scanned)
    if best is None:
        return None
    if first_fit:
        return best[3], best[0], best[4]
    return best[3], best[2], best[4]


def _implied_length(
    arch: Architecture,
    pe: int,
    cb: int,
    ce: int,
    in_constraints: list[tuple[int, int, int, int]],
    out_constraints: list[tuple[int, int, int, int]],
    comm: CommCostCache | None = None,
) -> int | None:
    """Smallest ``L`` making the candidate legal w.r.t. its placed
    neighbours, or ``None`` when a zero-delay dependence is violated.

    Retained as the reference form of the slot score (the fast-path
    scan in :func:`_find_spot` folds the same arithmetic into per-PE
    constants); constraints are ``(peer_pe, CE-or-CB, dr, vol)``.
    """
    cost = comm.cost if comm is not None else arch.comm_cost
    implied = 1
    for src_pe, ce_u, dr, vol in in_constraints:
        slack = ce_u + cost(src_pe, pe, vol) + 1 - cb
        if dr == 0:
            if slack > 0:
                return None
        else:
            need = -(-slack // dr)  # ceil
            if need > implied:
                implied = need
    for dst_pe, cb_x, dr, vol in out_constraints:
        slack = ce + cost(pe, dst_pe, vol) + 1 - cb_x
        if dr == 0:
            if slack > 0:
                return None
        else:
            need = -(-slack // dr)
            if need > implied:
                implied = need
    return implied


def _rollback(schedule: ScheduleTable, placed: list[Node]) -> None:
    for node in placed:
        schedule.remove(node)
