"""The remapping phase (Definition 4.2): re-place rotated nodes.

Each rotated node is re-placed by scanning every free (processor,
control-step) slot and scoring it with the **implied schedule length**
— the smallest ``L`` at which that placement satisfies every dependence
incident to already-placed neighbours::

    in-edge  u -> v, dr = 0 :  cb >= CE(u) + M + 1          (feasibility)
    in-edge  u -> v, dr > 0 :  L >= ceil((CE(u) + M + 1 - cb) / dr)
    out-edge v -> x, dr = 0 :  CB(x) >= ce + M + 1           (feasibility)
    out-edge v -> x, dr > 0 :  L >= ceil((ce + M + 1 - CB(x)) / dr)

plus the node's own finish ``ce``.  The slot with the smallest implied
length wins (ties: earlier finish, earlier start, lower PE) — this is
the paper's remapping side condition "``CB(u) >= AN(u)``, ``CE(u) <
length(S)`` and ``PSL(v) <= length(S)`` for all v" turned from a filter
into the search objective.

*Remapping without relaxation* caps the implied length at the previous
schedule length and reports failure when any rotated node has no
admissible slot — the caller rolls the pass back, giving Theorem 4.4's
monotonicity.  *Remapping with relaxation* always places (the implied
length may exceed the previous length; the driver keeps the best
schedule seen, per Definition 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.topology import Architecture
from repro.core.psl import projected_schedule_length
from repro.errors import InfeasibleScheduleError
from repro.graph.csdfg import CSDFG, Node
from repro.graph.validation import topological_order_zero_delay
from repro.obs import metrics
from repro.schedule.table import ScheduleTable

__all__ = ["RemapOutcome", "remap_nodes"]


@dataclass
class RemapOutcome:
    """Result of one remapping pass.

    Attributes
    ----------
    accepted:
        False when the without-relaxation policy rejected the pass (the
        caller must roll back).
    new_length:
        Schedule length after the pass (meaningful when accepted).
    placements:
        Where each rotated node landed, ``node -> (pe, cb)``.
    """

    accepted: bool
    new_length: int
    placements: dict[Node, tuple[int, int]] = field(default_factory=dict)


def remap_nodes(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    nodes: list[Node],
    *,
    previous_length: int,
    relaxation: bool,
    pipelined_pes: bool = False,
    strategy: str = "implied",
) -> RemapOutcome:
    """Place ``nodes`` (already rotated out of ``schedule``) back in.

    ``schedule`` must be the rotated/renumbered table (length
    ``previous_length - 1`` with the rotated nodes absent).  On a
    rejected pass the trial placements are removed again so the caller
    can restore its snapshot cheaply.  ``strategy`` selects the slot
    search: ``"implied"`` (this implementation's scoring) or
    ``"first-fit"`` (the paper's literal procedure).
    """
    ordered = _placement_order(graph, nodes)
    placed: list[Node] = []
    outcome = RemapOutcome(accepted=True, new_length=previous_length)
    cap = None if relaxation else previous_length
    metrics.inc("remap.nodes", len(ordered))

    for node in ordered:
        spot = _find_spot(
            graph,
            arch,
            schedule,
            node,
            cap=cap,
            pipelined_pes=pipelined_pes,
            strategy=strategy,
        )
        if spot is None:
            metrics.inc("remap.unplaceable_nodes")
            _rollback(schedule, placed)
            return RemapOutcome(accepted=False, new_length=previous_length)
        pe, cb, duration = spot
        occupancy = 1 if pipelined_pes else duration
        schedule.place(node, pe, cb, duration, occupancy)
        placed.append(node)
        outcome.placements[node] = (pe, cb)

    try:
        new_length = projected_schedule_length(
            graph, arch, schedule, pipelined_pes=pipelined_pes
        )
    except InfeasibleScheduleError:  # pragma: no cover - defensive
        _rollback(schedule, placed)
        return RemapOutcome(accepted=False, new_length=previous_length)

    if not relaxation and new_length > previous_length:
        _rollback(schedule, placed)
        return RemapOutcome(accepted=False, new_length=previous_length)

    schedule.trim()
    schedule.set_length(max(new_length, schedule.makespan))
    outcome.new_length = schedule.length
    return outcome


def _placement_order(graph: CSDFG, nodes: list[Node]) -> list[Node]:
    """Zero-delay topological order restricted to the rotated set, so a
    node's intra-iteration producers inside the set are placed first;
    longer tasks go earlier among order-equivalent nodes."""
    node_set = set(nodes)
    topo = [v for v in topological_order_zero_delay(graph) if v in node_set]
    rank = {v: i for i, v in enumerate(topo)}
    return sorted(nodes, key=lambda v: (rank[v], -graph.time(v), str(v)))


def _find_spot(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    node: Node,
    *,
    cap: int | None,
    pipelined_pes: bool = False,
    strategy: str = "implied",
) -> tuple[int, int, int] | None:
    """Best ``(pe, cb, duration)`` slot for ``node``.

    ``strategy="implied"`` scans every free slot up to the horizon and
    minimises the implied schedule length; ``strategy="first-fit"``
    takes the earliest available slot at or after the anticipation
    bound, minimised across processors (the paper's procedure) — the
    cap still enforces the paper's ``PSL <= length(S)`` side condition.
    Returns ``None`` when no admissible slot fits under ``cap``.  The
    duration is the node's execution time on the chosen PE
    (heterogeneous machines scale it).
    """
    base_time = graph.time(node)
    tail = max(schedule.length, schedule.makespan)

    in_constraints: list[tuple[int, int, int, int]] = []  # (src_pe, CE, dr, vol)
    out_constraints: list[tuple[int, int, int, int]] = []  # (dst_pe, CB, dr, vol)
    self_loops: list[int] = []
    for e in graph.in_edges(node):
        if e.src == node:
            self_loops.append(max(1, e.delay))
            continue
        if e.src in schedule:
            p = schedule.placement(e.src)
            in_constraints.append((p.pe, p.finish, e.delay, e.volume))
    for e in graph.out_edges(node):
        if e.dst == node or e.dst not in schedule:
            continue
        p = schedule.placement(e.dst)
        out_constraints.append((p.pe, p.start, e.delay, e.volume))

    first_fit = strategy == "first-fit"
    best: tuple[int, int, int, int, int] | None = None
    pes_scanned = 0
    slots_scanned = 0
    # key: (implied, ce, cb, pe) for "implied"; (cb, ce, pe) lifted into
    # the same tuple shape for "first-fit"
    for pe in arch.processors:
        pes_scanned += 1
        duration = arch.execution_time(pe, base_time)
        occupancy = 1 if pipelined_pes else duration
        # self-loop: L >= ceil(duration / d), placement-independent
        self_loop_bound = max(
            (-(-duration // d) for d in self_loops), default=0
        )
        # earliest start admissible w.r.t. zero-delay producers
        floor = 1
        for src_pe, ce_u, dr, vol in in_constraints:
            if dr == 0:
                need = ce_u + arch.comm_cost(src_pe, pe, vol) + 1
                if need > floor:
                    floor = need
        # with a cap, slots beyond it are pointless; without one, scan
        # far enough past the tail (and past the floor) that a free
        # slot is guaranteed on every PE
        horizon = cap if cap is not None else max(tail, floor) + duration
        cb = schedule.earliest_slot(pe, floor, occupancy, horizon=horizon)
        while cb is not None:
            slots_scanned += 1
            ce = cb + duration - 1
            implied = _implied_length(
                arch, pe, cb, ce, in_constraints, out_constraints
            )
            if implied is not None:
                implied = max(implied, ce, self_loop_bound)
                if cap is None or implied <= cap:
                    if first_fit:
                        key = (cb, ce, 0, pe, duration)
                    else:
                        key = (implied, ce, cb, pe, duration)
                    if best is None or key < best:
                        best = key
                    if first_fit or implied == ce:
                        # first-fit keeps the earliest admissible slot
                        # per PE; implied-scoring stops once no later
                        # slot on this PE can score better
                        break
            cb = schedule.earliest_slot(pe, cb + 1, occupancy, horizon=horizon)
    metrics.inc("remap.candidate_pes", pes_scanned)
    metrics.inc("remap.candidate_slots", slots_scanned)
    if best is None:
        return None
    if first_fit:
        return best[3], best[0], best[4]
    return best[3], best[2], best[4]


def _implied_length(
    arch: Architecture,
    pe: int,
    cb: int,
    ce: int,
    in_constraints: list[tuple[int, int, int, int]],
    out_constraints: list[tuple[int, int, int, int]],
) -> int | None:
    """Smallest ``L`` making the candidate legal w.r.t. its placed
    neighbours, or ``None`` when a zero-delay dependence is violated."""
    implied = 1
    for src_pe, ce_u, dr, vol in in_constraints:
        comm = arch.comm_cost(src_pe, pe, vol)
        slack = ce_u + comm + 1 - cb
        if dr == 0:
            if slack > 0:
                return None
        else:
            need = -(-slack // dr)  # ceil
            if need > implied:
                implied = need
    for dst_pe, cb_x, dr, vol in out_constraints:
        comm = arch.comm_cost(pe, dst_pe, vol)
        slack = ce + comm + 1 - cb_x
        if dr == 0:
            if slack > 0:
                return None
        else:
            need = -(-slack // dr)
            if need > implied:
                implied = need
    return implied


def _rollback(schedule: ScheduleTable, placed: list[Node]) -> None:
    for node in placed:
        schedule.remove(node)
