"""Projected schedule length PSL (Definition 4.4 / Lemma 4.3).

For an edge ``u -> v`` with delay ``k > 0`` whose endpoints sit on
different processors, the data produced by iteration ``i`` of ``u``
must reach ``v`` by iteration ``i + k``; across a static schedule of
length ``L`` this requires::

    CB(v) + k * L  >=  CE(u) + M(PE(u), PE(v); c) + 1
    =>  L  >=  ceil((CE(u) + M + 1 - CB(v)) / k)

The paper's printed formula omits the ``+1`` its own discrete
control-step accounting implies (DESIGN.md §2); we use the rigorous
form so PSL agrees exactly with the schedule validator.  The projected
schedule length of a whole table is the max of these bounds and the
makespan — precisely the minimum length at which the current placements
are legal.
"""

from __future__ import annotations

from repro.arch.topology import Architecture
from repro.errors import InfeasibleScheduleError
from repro.graph.csdfg import CSDFG
from repro.schedule.table import ScheduleTable
from repro.schedule.validate import minimum_feasible_length

__all__ = ["psl_edge_bound", "projected_schedule_length"]


def psl_edge_bound(
    finish_u: int, start_v: int, comm: int, delay: int
) -> int:
    """Lower bound on ``L`` induced by one delayed edge.

    Parameters are the producer's ``CE``, the consumer's ``CB``, the
    communication cost ``M`` and the edge delay ``k > 0``.
    """
    if delay <= 0:
        raise InfeasibleScheduleError("psl_edge_bound requires delay > 0")
    return -(-(finish_u + comm + 1 - start_v) // delay)  # ceil division


def projected_schedule_length(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    *,
    pipelined_pes: bool = False,
) -> int:
    """Minimum legal length for the schedule's current placements.

    Raises :class:`InfeasibleScheduleError` when some zero-delay
    dependence is violated outright (no length can repair an
    intra-iteration ordering error).
    """
    length = minimum_feasible_length(
        graph, arch, schedule, pipelined_pes=pipelined_pes
    )
    if length is None:
        raise InfeasibleScheduleError(
            "placements violate an intra-iteration dependence; no schedule "
            "length is feasible"
        )
    return length
