"""Projected schedule length PSL (Definition 4.4 / Lemma 4.3).

For an edge ``u -> v`` with delay ``k > 0`` whose endpoints sit on
different processors, the data produced by iteration ``i`` of ``u``
must reach ``v`` by iteration ``i + k``; across a static schedule of
length ``L`` this requires::

    CB(v) + k * L  >=  CE(u) + M(PE(u), PE(v); c) + 1
    =>  L  >=  ceil((CE(u) + M + 1 - CB(v)) / k)

The paper's printed formula omits the ``+1`` its own discrete
control-step accounting implies (DESIGN.md §2); we use the rigorous
form so PSL agrees exactly with the schedule validator.  The projected
schedule length of a whole table is the max of these bounds and the
makespan — precisely the minimum length at which the current placements
are legal.

:class:`PSLTracker` maintains the per-edge bounds *incrementally*: a
remapping pass only perturbs edges incident to the rotated nodes (a
uniform :meth:`~repro.schedule.table.ScheduleTable.shift_all` leaves
every bound's numerator ``CE + M + 1 - CB`` unchanged), so the tracker
recomputes a handful of edges per pass instead of rescanning the whole
graph through :func:`minimum_feasible_length`.

Two scale-tier refinements keep the tracker O(touched edges) even on
thousand-edge graphs:

* :meth:`refresh` evaluates all edge bounds through the batched
  :func:`repro.core.kernels.edge_bounds` kernel (one gather pass, one
  array expression) instead of a per-edge python loop;
* :meth:`projected_length` reads the maximum bound from a lazy-deletion
  max-heap maintained alongside ``_bounds`` — updated edges are pushed
  and stale heap tops discarded on read, so the per-pass cost tracks
  the dirty set instead of rescanning every edge's bound.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Iterable

from repro.core import kernels

from repro.arch.topology import Architecture
from repro.errors import InfeasibleScheduleError
from repro.graph.csdfg import CSDFG, Node
from repro.schedule.table import ScheduleTable
from repro.schedule.validate import minimum_feasible_length

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.cache import CommCostCache

__all__ = ["psl_edge_bound", "projected_schedule_length", "PSLTracker"]


def psl_edge_bound(
    finish_u: int, start_v: int, comm: int, delay: int
) -> int:
    """Lower bound on ``L`` induced by one delayed edge.

    Parameters are the producer's ``CE``, the consumer's ``CB``, the
    communication cost ``M`` and the edge delay ``k > 0``.
    """
    if delay <= 0:
        raise InfeasibleScheduleError("psl_edge_bound requires delay > 0")
    return -(-(finish_u + comm + 1 - start_v) // delay)  # ceil division


def projected_schedule_length(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    *,
    pipelined_pes: bool = False,
    comm: "CommCostCache | None" = None,
) -> int:
    """Minimum legal length for the schedule's current placements.

    Raises :class:`InfeasibleScheduleError` when some zero-delay
    dependence is violated outright (no length can repair an
    intra-iteration ordering error).  ``comm`` supplies precomputed
    communication costs for the fast path.
    """
    length = minimum_feasible_length(
        graph, arch, schedule, pipelined_pes=pipelined_pes, comm=comm
    )
    if length is None:
        raise InfeasibleScheduleError(
            "placements violate an intra-iteration dependence; no schedule "
            "length is feasible"
        )
    return length


class PSLTracker:
    """Incremental per-edge PSL bounds for one (graph, schedule) pair.

    The tracker stores, for every edge, the length bound it induces (0
    for a satisfied zero-delay edge — those constrain nothing through
    ``L``).  After a remapping pass only edges incident to the moved
    nodes are recomputed (:meth:`update_nodes`); rejected passes call
    :meth:`restore` with the snapshot taken before the update so the
    bounds always match the schedule the caller sees.

    The graph and schedule are held *by reference*: retiming mutations
    and placements are picked up at the next update.  Rebuild the
    tracker (or call :meth:`refresh`) when the schedule is replaced
    wholesale.
    """

    __slots__ = (
        "graph",
        "arch",
        "schedule",
        "pipelined_pes",
        "_cost",
        "_bounds",
        "_heap",
    )

    def __init__(
        self,
        graph: CSDFG,
        arch: Architecture,
        schedule: ScheduleTable,
        *,
        comm: "CommCostCache | None" = None,
        pipelined_pes: bool = False,
    ):
        self.graph = graph
        self.arch = arch
        self.schedule = schedule
        self.pipelined_pes = pipelined_pes
        self._cost = comm.cost if comm is not None else arch.comm_cost
        self._bounds: dict[tuple[Node, Node], int] = {}
        # lazy-deletion max-heap of (-bound, key); entries go stale when
        # a key's bound changes — projected_length() discards tops whose
        # value no longer matches _bounds
        self._heap: list[tuple[int, tuple[Node, Node]]] = []
        self.refresh()

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Recompute every edge bound from scratch (batched).

        Raises :class:`InfeasibleScheduleError` when the current
        placements violate a zero-delay dependence (the tracker must be
        seeded from a legal schedule).
        """
        placements = self.schedule._placements
        cost = self._cost
        keys: list[tuple[Node, Node]] = []
        finishes: list[int] = []
        comms: list[int] = []
        starts: list[int] = []
        delays: list[int] = []
        for e in self.graph.edges():
            pu = placements[e.src]
            pv = placements[e.dst]
            keys.append(e.key)
            finishes.append(pu.start + pu.duration - 1)
            comms.append(cost(pu.pe, pv.pe, e.volume))
            starts.append(pv.start)
            delays.append(e.delay)
        bounds, violated = kernels.edge_bounds(finishes, comms, starts, delays)
        if violated is not None:
            src, dst = keys[violated]
            raise InfeasibleScheduleError(
                f"edge ({src!r}, {dst!r}) violates an "
                "intra-iteration dependence as placed"
            )
        self._bounds = dict(zip(keys, bounds))
        self._heap = [(-b, k) for k, b in self._bounds.items()]
        heapify(self._heap)

    def _incident_edges(self, nodes: Iterable[Node]):
        seen: set[tuple[Node, Node]] = set()
        graph = self.graph
        for n in nodes:
            for e in graph.in_edges(n):
                if e.key not in seen:
                    seen.add(e.key)
                    yield e
            for e in graph.out_edges(n):
                if e.key not in seen:
                    seen.add(e.key)
                    yield e

    # ------------------------------------------------------------------
    def snapshot(self, nodes: Iterable[Node]) -> dict[tuple[Node, Node], int]:
        """Bounds of every edge incident to ``nodes`` (for
        :meth:`restore` after a rejected pass)."""
        bounds = self._bounds
        return {
            e.key: bounds[e.key]
            for e in self._incident_edges(nodes)
            if e.key in bounds
        }

    def update_nodes(self, nodes: Iterable[Node]) -> int | None:
        """Recompute bounds of edges incident to ``nodes`` and return
        the projected schedule length, or ``None`` (without committing
        anything) when some touched zero-delay edge is violated."""
        # fused _incident_edges + _edge_bound with direct placement
        # lookups: this runs once per remapping pass on the hot path
        placements = self.schedule._placements
        cost = self._cost
        graph = self.graph
        seen: set[tuple[Node, Node]] = set()
        fresh: dict[tuple[Node, Node], int] = {}
        for n in nodes:
            for e in graph._pred[n].values():
                key = e.key
                if key in seen:
                    continue
                seen.add(key)
                pu = placements[e.src]
                pv = placements[e.dst]
                slack = (
                    pu.start + pu.duration + cost(pu.pe, pv.pe, e.volume)
                    - pv.start
                )
                delay = e.delay
                if delay == 0:
                    if slack > 0:
                        return None
                    fresh[key] = 0
                else:
                    fresh[key] = -(-slack // delay)
            for e in graph._succ[n].values():
                key = e.key
                if key in seen:
                    continue
                seen.add(key)
                pu = placements[e.src]
                pv = placements[e.dst]
                slack = (
                    pu.start + pu.duration + cost(pu.pe, pv.pe, e.volume)
                    - pv.start
                )
                delay = e.delay
                if delay == 0:
                    if slack > 0:
                        return None
                    fresh[key] = 0
                else:
                    fresh[key] = -(-slack // delay)
        bounds = self._bounds
        heap = self._heap
        for key, bound in fresh.items():
            if bounds.get(key) != bound:
                bounds[key] = bound
                heappush(heap, (-bound, key))
        return self.projected_length()

    def restore(self, snapshot: dict[tuple[Node, Node], int]) -> None:
        """Re-install bounds saved by :meth:`snapshot`."""
        bounds = self._bounds
        heap = self._heap
        for key, bound in snapshot.items():
            if bounds.get(key) != bound:
                bounds[key] = bound
                heappush(heap, (-bound, key))

    def projected_length(self) -> int:
        """``max(makespan, all edge bounds, 1)`` — identical to
        :func:`projected_schedule_length` for a complete, conflict-free
        placement set.

        The maximum bound comes from the lazy-deletion heap: tops whose
        recorded value no longer matches ``_bounds`` are popped (their
        key was updated since the entry was pushed — the fresh entry
        sits further down), so the read is O(stale entries) instead of
        O(edges)."""
        heap = self._heap
        bounds = self._bounds
        bound = 0
        while heap:
            neg, key = heap[0]
            if bounds.get(key) == -neg:
                bound = -neg
                break
            heappop(heap)
        makespan = self.schedule.makespan
        if makespan > bound:
            bound = makespan
        return bound if bound > 1 else 1
