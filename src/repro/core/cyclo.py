"""Cyclo-compaction scheduling — the paper's Algorithm Cyclo-Compact.

Drives repeated rotation (implicit retiming / loop pipelining) and
communication-sensitive remapping passes over an initial schedule,
keeping the best schedule encountered::

    S <- Start-Up-Schedule(G);  Q <- S
    for n in 1..z:
        (G, S) <- Rotate-Remap(G, S)
        if length(S) < length(Q): Q <- S
    return Q

*Remapping without relaxation* rolls a pass back whenever it would
lengthen the schedule (Theorem 4.4: lengths are monotonically
non-increasing); since a rolled-back pass would repeat identically, the
driver stops there.  *Remapping with relaxation* lets intermediate
schedules grow and relies on the best-seen bookkeeping.

Hardened budgets (``repro.resilience``): the loop honours a wall-clock
``deadline_seconds`` and, with ``recover_on_error``, an exception
inside a pass — instead of propagating — stops the loop and returns
the best legal schedule found before it.  Both paths go through the
same best-schedule bookkeeping, so budget exhaustion can never hand
back a half-mutated table.  The final *working* state (schedule,
retimed graph, retiming, stall counter) rides along on the result so
:mod:`repro.resilience.checkpoint` can serialize an interrupted run
and resume it exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.arch.cache import CommCostCache
from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.core.psl import PSLTracker
from repro.core.remapping import remap_nodes
from repro.core.rotation import rotate_schedule, undo_rotation
from repro.core.startup import start_up_schedule
from repro.core.trace import CompactionTrace, IterationRecord
from repro.errors import ScheduleValidationError, SchedulingError
from repro.obs import metrics, span
from repro.graph.csdfg import CSDFG, Node
from repro.graph.validation import topological_order_zero_delay
from repro.retiming.basic import apply_retiming
from repro.schedule.table import ScheduleTable
from repro.schedule.validate import collect_violations

__all__ = ["CycloResult", "cyclo_compact"]


@dataclass
class CycloResult:
    """Output of :func:`cyclo_compact`.

    Attributes
    ----------
    schedule:
        The best (shortest) legal schedule found.
    graph:
        The retimed CSDFG matching ``schedule`` (the original input
        graph is never mutated).
    retiming:
        Cumulative retiming mapping the input graph to ``graph``
        (``graph == apply_retiming(input, retiming)``).
    initial_schedule:
        The start-up schedule the optimisation began from.
    trace:
        Per-pass records (lengths, rotated sets, accept/reject).
    stop_reason:
        Why the loop ended: ``"completed"`` (pass budget spent),
        ``"converged"`` (a monotone pass was rejected),
        ``"patience"`` (no improvement streak), ``"deadline"``
        (wall-clock budget exhausted) or ``"error"`` (a pass raised and
        ``recover_on_error`` was set).
    final_schedule / final_graph / final_retiming / final_stall:
        The *working* optimiser state when the loop stopped — what a
        checkpoint must capture to resume the run exactly (the best-*
        fields alone are not enough: the working schedule may be longer
        than the best one).
    """

    schedule: ScheduleTable
    graph: CSDFG
    retiming: dict[Node, int]
    initial_schedule: ScheduleTable
    trace: CompactionTrace
    stop_reason: str = "completed"
    final_schedule: ScheduleTable | None = None
    final_graph: CSDFG | None = None
    final_retiming: dict[Node, int] = field(default_factory=dict)
    final_stall: int = 0

    @property
    def initial_length(self) -> int:
        return self.initial_schedule.length

    @property
    def final_length(self) -> int:
        return self.schedule.length


@dataclass
class _LoopState:
    """Mutable optimiser state threaded through the pass loop (and
    restored verbatim by a checkpoint resume)."""

    working: CSDFG
    schedule: ScheduleTable
    retiming: dict[Node, int]
    best_schedule: ScheduleTable
    # None = copy-on-write: the best graph is materialised from
    # best_retiming only when the result is built (the working graph
    # differs from it purely by retiming counts)
    best_graph: CSDFG | None
    best_retiming: dict[Node, int]
    initial_schedule: ScheduleTable
    trace: CompactionTrace
    stall: int = 0
    next_index: int = 1


def _zero_delay_flipped(graph: CSDFG, rotated: list[Node]) -> bool:
    """Whether the last rotation changed the zero-delay subgraph.

    Rotation draws one delay from each edge entering the rotated set
    and pushes one onto each edge leaving it (edges internal to the
    set are untouched), so the zero-delay structure changed iff some
    entering edge just reached delay 0 or some leaving edge sits at
    delay 1 now (0 before).
    """
    rot = set(rotated)
    pred, succ = graph._pred, graph._succ
    for v in rotated:
        for e in pred[v].values():
            if e.delay == 0 and e.src not in rot:
                return True
        for e in succ[v].values():
            if e.delay == 1 and e.dst not in rot:
                return True
    return False


class _TopoRankCache:
    """Cross-pass cache of the zero-delay topological ranks feeding
    :func:`remap_nodes`'s placement order.

    Kahn's walk over the full graph is O(V + E) *per pass*; on
    thousand-node graphs it dominated everything the remapping fast
    path had saved.  The placement order only depends on the zero-delay
    subgraph, which a rotation leaves untouched unless it flips some
    edge's zero-delay status — so the ranks are rebuilt exactly on a
    flip (and dropped when a rollback reverts one) and reused
    otherwise.  Rank uniqueness makes the cached full-graph order sort
    identically to the per-pass restricted order it replaces.
    """

    __slots__ = ("_rank", "_fresh")

    def __init__(self) -> None:
        self._rank: dict[Node, int] | None = None
        self._fresh = False

    def ranks(self, graph: CSDFG, rotated: list[Node]) -> dict[Node, int] | None:
        """Ranks valid for ``graph`` as rotated; ``None`` only when the
        remap cannot need them (fewer than two rotated nodes)."""
        if self._rank is not None and _zero_delay_flipped(graph, rotated):
            self._rank = None
        self._fresh = False
        if len(rotated) <= 1:
            return self._rank
        if self._rank is None:
            metrics.inc("remap.toporank_rebuilds")
            self._rank = {
                v: i
                for i, v in enumerate(topological_order_zero_delay(graph))
            }
            self._fresh = True
        else:
            metrics.inc("remap.toporank_reuses")
        return self._rank

    def note_rollback(self) -> None:
        """A rejected pass undid its rotation: ranks built from the
        rotated graph no longer match the restored one."""
        if self._fresh:
            self._rank = None


def cyclo_compact(
    graph: CSDFG,
    arch: Architecture,
    *,
    config: CycloConfig | None = None,
    initial: ScheduleTable | None = None,
    comm: CommCostCache | None = None,
) -> CycloResult:
    """Run cyclo-compaction scheduling of ``graph`` on ``arch``.

    Parameters
    ----------
    config:
        Optimiser options (defaults to relaxed remapping, ``3 * |V|``
        passes).
    initial:
        Optional starting schedule (defaults to the paper's start-up
        schedule).  It must be legal for ``graph`` on ``arch``.
    comm:
        Optional pre-built :class:`CommCostCache` pricing this run —
        the hook the contention-aware pipeline uses to schedule under
        surcharged (frozen-occupancy) prices.  Defaults to the plain
        contention-free cache when ``cfg.fast_path`` is on.  Every
        in-run consumer (start-up, remapping, PSL, validation) prices
        through it, so the returned schedule is legal w.r.t. exactly
        this cache's cost function.

    The input graph is copied, never mutated.
    """
    cfg = config if config is not None else CycloConfig()
    with span("cyclo_compact", workload=graph.name, arch=arch.name) as sp:
        # edge volumes are copy- and retiming-invariant, so one cache
        # built from the input graph serves the whole run
        if comm is None:
            comm = CommCostCache.for_graph(arch, graph) if cfg.fast_path else None
        state = _initial_state(graph, arch, cfg, initial, comm=comm)
        result = _run_passes(state, graph, arch, cfg, comm=comm)
        sp.add(
            initial_length=result.initial_length,
            final_length=result.final_length,
            passes=len(result.trace.records),
            stop_reason=result.stop_reason,
        )
        # publish the hot-subsystem tallies exactly once per run (the
        # working table carries the probe/shift counts; best/initial
        # copies start from fresh zeros)
        if comm is not None:
            comm.publish_stats()
        if result.final_schedule is not None:
            result.final_schedule.publish_stats()
    return result


def _initial_state(
    graph: CSDFG,
    arch: Architecture,
    cfg: CycloConfig,
    initial: ScheduleTable | None,
    *,
    comm: CommCostCache | None = None,
) -> _LoopState:
    working = graph.copy()
    if comm is None and cfg.fast_path:
        comm = CommCostCache.for_graph(arch, working)
    if initial is None:
        schedule = start_up_schedule(
            working, arch, pipelined_pes=cfg.pipelined_pes, comm=comm
        )
    else:
        violations = collect_violations(
            working, arch, initial, pipelined_pes=cfg.pipelined_pes, comm=comm
        )
        if violations:
            raise ScheduleValidationError(
                ["initial schedule is illegal"] + violations
            )
        schedule = initial.copy()
    retiming = {v: 0 for v in working.nodes()}
    return _LoopState(
        working=working,
        schedule=schedule,
        retiming=retiming,
        best_schedule=schedule.copy(),
        best_graph=None,
        best_retiming=dict(retiming),
        initial_schedule=schedule.copy(),
        trace=CompactionTrace(initial_length=schedule.length),
    )


def _run_passes(
    state: _LoopState,
    graph: CSDFG,
    arch: Architecture,
    cfg: CycloConfig,
    *,
    comm: CommCostCache | None = None,
) -> CycloResult:
    """Drive passes ``state.next_index .. z``, honouring every budget."""
    started = time.monotonic()  # repro-lint: disable=RL102,RD103 (deadline budget, result-neutral)
    stop_reason = "completed"
    total = cfg.iterations_for(state.working.num_nodes)

    tracker: PSLTracker | None = None
    if cfg.fast_path and total >= state.next_index:
        # the tracker is seeded from the (legal) working schedule and
        # updated incrementally by each remapping pass
        if comm is None:
            comm = CommCostCache.for_graph(arch, state.working)
        tracker = PSLTracker(
            state.working,
            arch,
            state.schedule,
            comm=comm,
            pipelined_pes=cfg.pipelined_pes,
        )

    topo_cache = _TopoRankCache()
    for index in range(state.next_index, total + 1):
        if (
            cfg.deadline_seconds is not None
            and time.monotonic() - started >= cfg.deadline_seconds  # repro-lint: disable=RL102,RD103 (deadline budget, result-neutral)
        ):
            metrics.inc("cyclo.deadline_stops")
            stop_reason = "deadline"
            break
        try:
            outcome_reason = _one_pass(
                state,
                arch,
                cfg,
                index,
                comm=comm,
                tracker=tracker,
                topo_cache=topo_cache,
            )
        except Exception:  # repro-lint: disable=RL105 (recover_on_error boundary)
            if not cfg.recover_on_error:
                raise
            # the working table may be half-mutated; the best-* fields
            # are clean validated copies, which is what we return
            metrics.inc("cyclo.recovered_errors")
            stop_reason = "error"
            break
        state.next_index = index + 1
        if outcome_reason is not None:
            stop_reason = outcome_reason
            break

    best_graph = state.best_graph
    if best_graph is None:
        # copy-on-write: materialise the best graph from the retiming
        # (same name the eager working.copy() used to carry)
        best_graph = apply_retiming(
            graph, state.best_retiming, name=graph.name
        )
    return CycloResult(
        schedule=state.best_schedule,
        graph=best_graph,
        retiming=state.best_retiming,
        initial_schedule=state.initial_schedule,
        trace=state.trace,
        stop_reason=stop_reason,
        final_schedule=state.schedule,
        final_graph=state.working,
        final_retiming=dict(state.retiming),
        final_stall=state.stall,
    )


def _one_pass(
    state: _LoopState,
    arch: Architecture,
    cfg: CycloConfig,
    index: int,
    *,
    comm: CommCostCache | None = None,
    tracker: PSLTracker | None = None,
    topo_cache: _TopoRankCache | None = None,
) -> str | None:
    """One rotate+remap pass; a stop reason string ends the loop."""
    working, schedule, retiming = state.working, state.schedule, state.retiming
    with span("pass", index=index) as pass_span:
        metrics.inc("cyclo.passes")
        previous_length = schedule.length
        with span("rotate", index=index):
            rotated, old_placements = rotate_schedule(working, schedule)
        for node in rotated:
            retiming[node] += 1
        topo_rank = (
            topo_cache.ranks(working, rotated)
            if topo_cache is not None
            else None
        )
        with span("remap", index=index, nodes=len(rotated)):
            outcome = remap_nodes(
                working,
                arch,
                schedule,
                rotated,
                previous_length=previous_length,
                relaxation=cfg.relaxation,
                pipelined_pes=cfg.pipelined_pes,
                strategy=cfg.remap_strategy,
                comm=comm,
                psl=tracker,
                topo_rank=topo_rank,
                debug_check=cfg.validate_each_step,
            )
        if not outcome.accepted:
            metrics.inc("cyclo.rejected")
            metrics.inc("cyclo.rollbacks")
            if topo_cache is not None:
                topo_cache.note_rollback()
            undo_rotation(
                working, schedule, rotated, old_placements, previous_length
            )
            for node in rotated:
                retiming[node] -= 1
            state.trace.records.append(
                IterationRecord(
                    index=index,
                    rotated=tuple(rotated),
                    accepted=False,
                    length_after=schedule.length,
                    best_so_far=state.best_schedule.length,
                )
            )
            pass_span.add(accepted=False, length=schedule.length)
            # a rejected pass would repeat identically: stop here
            return "converged"

        metrics.inc("cyclo.accepted")
        if cfg.validate_each_step:
            violations = collect_violations(
                working, arch, schedule, pipelined_pes=cfg.pipelined_pes,
                comm=comm,
            )
            if violations:  # pragma: no cover - internal invariant
                raise SchedulingError(
                    "cyclo-compaction produced an illegal intermediate "
                    "schedule: " + "; ".join(violations)
                )

        improved = schedule.length < state.best_schedule.length
        if improved:
            metrics.inc("cyclo.improved")
            state.best_schedule = schedule.copy()
            state.best_graph = None  # rebuilt from best_retiming on demand
            state.best_retiming = dict(retiming)
            state.stall = 0
        else:
            state.stall += 1

        state.trace.records.append(
            IterationRecord(
                index=index,
                rotated=tuple(rotated),
                accepted=True,
                length_after=schedule.length,
                best_so_far=state.best_schedule.length,
            )
        )
        pass_span.add(accepted=True, length=schedule.length)
        if cfg.patience is not None and state.stall >= cfg.patience:
            return "patience"
    return None
