"""Cyclo-compaction scheduling — the paper's Algorithm Cyclo-Compact.

Drives repeated rotation (implicit retiming / loop pipelining) and
communication-sensitive remapping passes over an initial schedule,
keeping the best schedule encountered::

    S <- Start-Up-Schedule(G);  Q <- S
    for n in 1..z:
        (G, S) <- Rotate-Remap(G, S)
        if length(S) < length(Q): Q <- S
    return Q

*Remapping without relaxation* rolls a pass back whenever it would
lengthen the schedule (Theorem 4.4: lengths are monotonically
non-increasing); since a rolled-back pass would repeat identically, the
driver stops there.  *Remapping with relaxation* lets intermediate
schedules grow and relies on the best-seen bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.core.remapping import remap_nodes
from repro.core.rotation import rotate_schedule, undo_rotation
from repro.core.startup import start_up_schedule
from repro.core.trace import CompactionTrace, IterationRecord
from repro.errors import ScheduleValidationError, SchedulingError
from repro.obs import metrics, span
from repro.graph.csdfg import CSDFG, Node
from repro.schedule.table import ScheduleTable
from repro.schedule.validate import collect_violations

__all__ = ["CycloResult", "cyclo_compact"]


@dataclass
class CycloResult:
    """Output of :func:`cyclo_compact`.

    Attributes
    ----------
    schedule:
        The best (shortest) legal schedule found.
    graph:
        The retimed CSDFG matching ``schedule`` (the original input
        graph is never mutated).
    retiming:
        Cumulative retiming mapping the input graph to ``graph``
        (``graph == apply_retiming(input, retiming)``).
    initial_schedule:
        The start-up schedule the optimisation began from.
    trace:
        Per-pass records (lengths, rotated sets, accept/reject).
    """

    schedule: ScheduleTable
    graph: CSDFG
    retiming: dict[Node, int]
    initial_schedule: ScheduleTable
    trace: CompactionTrace

    @property
    def initial_length(self) -> int:
        return self.initial_schedule.length

    @property
    def final_length(self) -> int:
        return self.schedule.length


def cyclo_compact(
    graph: CSDFG,
    arch: Architecture,
    *,
    config: CycloConfig | None = None,
    initial: ScheduleTable | None = None,
) -> CycloResult:
    """Run cyclo-compaction scheduling of ``graph`` on ``arch``.

    Parameters
    ----------
    config:
        Optimiser options (defaults to relaxed remapping, ``3 * |V|``
        passes).
    initial:
        Optional starting schedule (defaults to the paper's start-up
        schedule).  It must be legal for ``graph`` on ``arch``.

    The input graph is copied, never mutated.
    """
    cfg = config if config is not None else CycloConfig()
    with span("cyclo_compact", workload=graph.name, arch=arch.name) as sp:
        result = _cyclo_compact(graph, arch, cfg, initial)
        sp.add(
            initial_length=result.initial_length,
            final_length=result.final_length,
            passes=len(result.trace.records),
        )
    return result


def _cyclo_compact(
    graph: CSDFG,
    arch: Architecture,
    cfg: CycloConfig,
    initial: ScheduleTable | None,
) -> CycloResult:
    working = graph.copy()
    if initial is None:
        schedule = start_up_schedule(
            working, arch, pipelined_pes=cfg.pipelined_pes
        )
    else:
        violations = collect_violations(
            working, arch, initial, pipelined_pes=cfg.pipelined_pes
        )
        if violations:
            raise ScheduleValidationError(
                ["initial schedule is illegal"] + violations
            )
        schedule = initial.copy()

    initial_schedule = schedule.copy()
    retiming: dict[Node, int] = {v: 0 for v in working.nodes()}

    best_schedule = schedule.copy()
    best_graph = working.copy()
    best_retiming = dict(retiming)

    trace = CompactionTrace(initial_length=schedule.length)
    stall = 0

    for index in range(1, cfg.iterations_for(working.num_nodes) + 1):
        with span("pass", index=index) as pass_span:
            metrics.inc("cyclo.passes")
            previous_length = schedule.length
            with span("rotate", index=index):
                rotated, old_placements = rotate_schedule(working, schedule)
            for node in rotated:
                retiming[node] += 1
            with span("remap", index=index, nodes=len(rotated)):
                outcome = remap_nodes(
                    working,
                    arch,
                    schedule,
                    rotated,
                    previous_length=previous_length,
                    relaxation=cfg.relaxation,
                    pipelined_pes=cfg.pipelined_pes,
                    strategy=cfg.remap_strategy,
                )
            if not outcome.accepted:
                metrics.inc("cyclo.rejected")
                metrics.inc("cyclo.rollbacks")
                undo_rotation(
                    working, schedule, rotated, old_placements, previous_length
                )
                for node in rotated:
                    retiming[node] -= 1
                trace.records.append(
                    IterationRecord(
                        index=index,
                        rotated=tuple(rotated),
                        accepted=False,
                        length_after=schedule.length,
                        best_so_far=best_schedule.length,
                    )
                )
                pass_span.add(accepted=False, length=schedule.length)
                # a rejected pass would repeat identically: stop here
                break

            metrics.inc("cyclo.accepted")
            if cfg.validate_each_step:
                violations = collect_violations(
                    working, arch, schedule, pipelined_pes=cfg.pipelined_pes
                )
                if violations:  # pragma: no cover - internal invariant
                    raise SchedulingError(
                        "cyclo-compaction produced an illegal intermediate "
                        "schedule: " + "; ".join(violations)
                    )

            improved = schedule.length < best_schedule.length
            if improved:
                metrics.inc("cyclo.improved")
                best_schedule = schedule.copy()
                best_graph = working.copy()
                best_retiming = dict(retiming)
                stall = 0
            else:
                stall += 1

            trace.records.append(
                IterationRecord(
                    index=index,
                    rotated=tuple(rotated),
                    accepted=True,
                    length_after=schedule.length,
                    best_so_far=best_schedule.length,
                )
            )
            pass_span.add(accepted=True, length=schedule.length)
            if cfg.patience is not None and stall >= cfg.patience:
                break

    return CycloResult(
        schedule=best_schedule,
        graph=best_graph,
        retiming=best_retiming,
        initial_schedule=initial_schedule,
        trace=trace,
    )
