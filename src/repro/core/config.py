"""Configuration for the cyclo-compaction optimiser."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.comm import (
    CONTENTION_MODELS,
    ContentionModel,
    make_contention_model,
)
from repro.errors import SchedulingError

__all__ = ["CycloConfig"]


@dataclass(frozen=True)
class CycloConfig:
    """Tuning knobs of :func:`repro.core.cyclo.cyclo_compact`.

    Attributes
    ----------
    relaxation:
        Remapping policy (Definition 4.2).  ``True`` allows intermediate
        schedules to grow (the best schedule seen is returned);
        ``False`` enforces the paper's Theorem 4.4 monotonicity — an
        iteration that would lengthen the schedule is rolled back.
    max_iterations:
        Number of rotation+remapping passes (the paper's ``z``).
        ``None`` picks ``3 * |V|``, comfortably past the convergence
        points observed in the paper's examples.
    patience:
        Stop early after this many consecutive passes without improving
        the best length.  ``None`` disables early stopping.
    validate_each_step:
        Run the full schedule validator after every pass (cheap for the
        paper-scale graphs; disable for large sweeps).
    pipelined_pes:
        Schedule for pipelined processing elements (paper §2): a task
        blocks its processor for a single control step while its result
        latency stays ``t(v)``.
    remap_strategy:
        Slot search of the remapping phase.  ``"implied"`` (default)
        scores every free slot by its implied schedule length — the
        stronger search this implementation contributes.
        ``"first-fit"`` reproduces the paper's procedure literally:
        earliest available slot at or after the anticipation function's
        value, minimised across processors.
    deadline_seconds:
        Wall-clock budget for the compaction loop.  When it runs out
        the optimiser stops *between* passes and returns the best legal
        schedule found so far (``stop_reason == "deadline"``); the
        passes already done are never lost.  ``None`` disables the
        deadline.  The pass budget itself is ``max_iterations``.
    recover_on_error:
        When true, an exception thrown inside a compaction pass does
        not propagate: the optimiser stops and returns the best legal
        schedule seen before the failing pass
        (``stop_reason == "error"``).  The best-schedule bookkeeping
        only ever copies validated tables, so the returned schedule is
        unaffected by whatever state the failing pass left behind.
        Default false: internal invariant violations stay loud.
    fast_path:
        Use the fast-path engine: a per-(graph, architecture)
        communication-cost cache and incremental projected-schedule-
        length bounds (see ``docs/performance.md``).  Produces schedules
        identical to the unoptimised path (pinned by the equivalence
        suite); disable only to benchmark against the reference
        behaviour.  With ``validate_each_step`` on, every pass
        cross-checks the incremental PSL against the full rescan.
    contention_model:
        Opt-in contention-aware pricing for the two-phase pipeline
        (``contention_aware_schedule``): ``None`` (default) keeps the
        paper's contention-free model — every baseline bit-identical —
        while ``"serialized"`` / ``"scaled"`` name a
        :class:`~repro.arch.comm.ContentionModel` that charges
        transfers for the traffic already queued on their route.
    contention_weight:
        Control steps charged per queued data unit by the chosen
        contention model.
    contention_rounds:
        Reprice-and-reschedule rounds of the two-phase pipeline (each
        round freezes the previous schedule's link occupancy and
        re-runs compaction under the surcharged prices).
    """

    relaxation: bool = True
    max_iterations: int | None = None
    patience: int | None = None
    validate_each_step: bool = True
    pipelined_pes: bool = False
    remap_strategy: str = "implied"
    deadline_seconds: float | None = None
    recover_on_error: bool = False
    fast_path: bool = True
    contention_model: str | None = None
    contention_weight: int = 1
    contention_rounds: int = 2

    def __post_init__(self) -> None:
        if self.max_iterations is not None and self.max_iterations < 0:
            raise SchedulingError(
                f"max_iterations must be >= 0, got {self.max_iterations}"
            )
        if self.patience is not None and self.patience < 1:
            raise SchedulingError(f"patience must be >= 1, got {self.patience}")
        if self.remap_strategy not in ("implied", "first-fit"):
            raise SchedulingError(
                f"remap_strategy must be 'implied' or 'first-fit', got "
                f"{self.remap_strategy!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise SchedulingError(
                f"deadline_seconds must be >= 0, got {self.deadline_seconds}"
            )
        if (
            self.contention_model is not None
            and self.contention_model not in CONTENTION_MODELS
        ):
            raise SchedulingError(
                f"contention_model must be None or one of "
                f"{sorted(CONTENTION_MODELS)}, got {self.contention_model!r}"
            )
        if self.contention_weight < 1:
            raise SchedulingError(
                f"contention_weight must be >= 1, got {self.contention_weight}"
            )
        if self.contention_rounds < 1:
            raise SchedulingError(
                f"contention_rounds must be >= 1, got {self.contention_rounds}"
            )

    def resolve_contention(self) -> ContentionModel | None:
        """Materialise the configured contention model (``None`` = off)."""
        if self.contention_model is None:
            return None
        return make_contention_model(
            self.contention_model, weight=self.contention_weight
        )

    def iterations_for(self, num_nodes: int) -> int:
        """Resolve ``max_iterations`` for a graph of ``num_nodes``."""
        if self.max_iterations is not None:
            return self.max_iterations
        return 3 * max(1, num_nodes)

    def to_dict(self) -> dict:
        """JSON-safe snapshot (used by compaction checkpoints)."""
        return {
            "relaxation": self.relaxation,
            "max_iterations": self.max_iterations,
            "patience": self.patience,
            "validate_each_step": self.validate_each_step,
            "pipelined_pes": self.pipelined_pes,
            "remap_strategy": self.remap_strategy,
            "deadline_seconds": self.deadline_seconds,
            "recover_on_error": self.recover_on_error,
            "fast_path": self.fast_path,
            "contention_model": self.contention_model,
            "contention_weight": self.contention_weight,
            "contention_rounds": self.contention_rounds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CycloConfig":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        return cls(**data)
