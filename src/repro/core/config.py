"""Configuration for the cyclo-compaction optimiser."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError

__all__ = ["CycloConfig"]


@dataclass(frozen=True)
class CycloConfig:
    """Tuning knobs of :func:`repro.core.cyclo.cyclo_compact`.

    Attributes
    ----------
    relaxation:
        Remapping policy (Definition 4.2).  ``True`` allows intermediate
        schedules to grow (the best schedule seen is returned);
        ``False`` enforces the paper's Theorem 4.4 monotonicity — an
        iteration that would lengthen the schedule is rolled back.
    max_iterations:
        Number of rotation+remapping passes (the paper's ``z``).
        ``None`` picks ``3 * |V|``, comfortably past the convergence
        points observed in the paper's examples.
    patience:
        Stop early after this many consecutive passes without improving
        the best length.  ``None`` disables early stopping.
    validate_each_step:
        Run the full schedule validator after every pass (cheap for the
        paper-scale graphs; disable for large sweeps).
    pipelined_pes:
        Schedule for pipelined processing elements (paper §2): a task
        blocks its processor for a single control step while its result
        latency stays ``t(v)``.
    remap_strategy:
        Slot search of the remapping phase.  ``"implied"`` (default)
        scores every free slot by its implied schedule length — the
        stronger search this implementation contributes.
        ``"first-fit"`` reproduces the paper's procedure literally:
        earliest available slot at or after the anticipation function's
        value, minimised across processors.
    """

    relaxation: bool = True
    max_iterations: int | None = None
    patience: int | None = None
    validate_each_step: bool = True
    pipelined_pes: bool = False
    remap_strategy: str = "implied"

    def __post_init__(self) -> None:
        if self.max_iterations is not None and self.max_iterations < 0:
            raise SchedulingError(
                f"max_iterations must be >= 0, got {self.max_iterations}"
            )
        if self.patience is not None and self.patience < 1:
            raise SchedulingError(f"patience must be >= 1, got {self.patience}")
        if self.remap_strategy not in ("implied", "first-fit"):
            raise SchedulingError(
                f"remap_strategy must be 'implied' or 'first-fit', got "
                f"{self.remap_strategy!r}"
            )

    def iterations_for(self, num_nodes: int) -> int:
        """Resolve ``max_iterations`` for a graph of ``num_nodes``."""
        if self.max_iterations is not None:
            return self.max_iterations
        return 3 * max(1, num_nodes)
