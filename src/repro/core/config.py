"""Configuration for the cyclo-compaction optimiser."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError

__all__ = ["CycloConfig"]


@dataclass(frozen=True)
class CycloConfig:
    """Tuning knobs of :func:`repro.core.cyclo.cyclo_compact`.

    Attributes
    ----------
    relaxation:
        Remapping policy (Definition 4.2).  ``True`` allows intermediate
        schedules to grow (the best schedule seen is returned);
        ``False`` enforces the paper's Theorem 4.4 monotonicity — an
        iteration that would lengthen the schedule is rolled back.
    max_iterations:
        Number of rotation+remapping passes (the paper's ``z``).
        ``None`` picks ``3 * |V|``, comfortably past the convergence
        points observed in the paper's examples.
    patience:
        Stop early after this many consecutive passes without improving
        the best length.  ``None`` disables early stopping.
    validate_each_step:
        Run the full schedule validator after every pass (cheap for the
        paper-scale graphs; disable for large sweeps).
    pipelined_pes:
        Schedule for pipelined processing elements (paper §2): a task
        blocks its processor for a single control step while its result
        latency stays ``t(v)``.
    remap_strategy:
        Slot search of the remapping phase.  ``"implied"`` (default)
        scores every free slot by its implied schedule length — the
        stronger search this implementation contributes.
        ``"first-fit"`` reproduces the paper's procedure literally:
        earliest available slot at or after the anticipation function's
        value, minimised across processors.
    deadline_seconds:
        Wall-clock budget for the compaction loop.  When it runs out
        the optimiser stops *between* passes and returns the best legal
        schedule found so far (``stop_reason == "deadline"``); the
        passes already done are never lost.  ``None`` disables the
        deadline.  The pass budget itself is ``max_iterations``.
    recover_on_error:
        When true, an exception thrown inside a compaction pass does
        not propagate: the optimiser stops and returns the best legal
        schedule seen before the failing pass
        (``stop_reason == "error"``).  The best-schedule bookkeeping
        only ever copies validated tables, so the returned schedule is
        unaffected by whatever state the failing pass left behind.
        Default false: internal invariant violations stay loud.
    fast_path:
        Use the fast-path engine: a per-(graph, architecture)
        communication-cost cache and incremental projected-schedule-
        length bounds (see ``docs/performance.md``).  Produces schedules
        identical to the unoptimised path (pinned by the equivalence
        suite); disable only to benchmark against the reference
        behaviour.  With ``validate_each_step`` on, every pass
        cross-checks the incremental PSL against the full rescan.
    """

    relaxation: bool = True
    max_iterations: int | None = None
    patience: int | None = None
    validate_each_step: bool = True
    pipelined_pes: bool = False
    remap_strategy: str = "implied"
    deadline_seconds: float | None = None
    recover_on_error: bool = False
    fast_path: bool = True

    def __post_init__(self) -> None:
        if self.max_iterations is not None and self.max_iterations < 0:
            raise SchedulingError(
                f"max_iterations must be >= 0, got {self.max_iterations}"
            )
        if self.patience is not None and self.patience < 1:
            raise SchedulingError(f"patience must be >= 1, got {self.patience}")
        if self.remap_strategy not in ("implied", "first-fit"):
            raise SchedulingError(
                f"remap_strategy must be 'implied' or 'first-fit', got "
                f"{self.remap_strategy!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise SchedulingError(
                f"deadline_seconds must be >= 0, got {self.deadline_seconds}"
            )

    def iterations_for(self, num_nodes: int) -> int:
        """Resolve ``max_iterations`` for a graph of ``num_nodes``."""
        if self.max_iterations is not None:
            return self.max_iterations
        return 3 * max(1, num_nodes)

    def to_dict(self) -> dict:
        """JSON-safe snapshot (used by compaction checkpoints)."""
        return {
            "relaxation": self.relaxation,
            "max_iterations": self.max_iterations,
            "patience": self.patience,
            "validate_each_step": self.validate_each_step,
            "pipelined_pes": self.pipelined_pes,
            "remap_strategy": self.remap_strategy,
            "deadline_seconds": self.deadline_seconds,
            "recover_on_error": self.recover_on_error,
            "fast_path": self.fast_path,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CycloConfig":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        return cls(**data)
