"""The rotation phase (Definition 4.1).

One rotation deallocates the schedule's first row — every node with
``CB = 1`` — retimes those nodes by +1 (drawing a delay from each edge
entering the set, pushing one onto each edge leaving it) and renumbers
the remaining table one control step earlier.  Lemma 4.1: rotation by
itself never changes the schedule length; the deallocated nodes are
conceptually parked at the freed last row until the remapping phase
re-places them.

For any schedule that is legal under the communication-aware criterion,
rotation is always *legal*: a first-row node cannot have a zero-delay
predecessor (it would have to finish before control step 1), so every
entering edge carries at least one delay.
"""

from __future__ import annotations

from repro.arch.topology import Architecture
from repro.graph.csdfg import CSDFG, Node
from repro.obs import metrics
from repro.retiming.incremental import rotate_nodes, unrotate_nodes
from repro.schedule.table import Placement, ScheduleTable

__all__ = ["rotate_schedule", "undo_rotation"]


def rotate_schedule(
    graph: CSDFG, schedule: ScheduleTable
) -> tuple[list[Node], list[Placement]]:
    """Rotate ``schedule`` once, mutating ``graph`` and ``schedule``.

    Returns the rotated node set ``J`` (in PE order) and their former
    placements (for :func:`undo_rotation`).  After the call the rotated
    nodes are *unplaced*; the caller must remap them.

    Raises :class:`~repro.errors.IllegalRetimingError` when some node in
    the first row cannot legally be retimed — impossible for legal
    schedules, but the precondition is still enforced.
    """
    rotated = schedule.first_row()
    rotate_nodes(graph, rotated)  # raises before any mutation if illegal
    old_placements = [schedule.remove(node) for node in rotated]
    schedule.shift_all(-1)
    metrics.inc("rotation.rotations")
    metrics.inc("rotation.nodes_rotated", len(rotated))
    return rotated, old_placements


def undo_rotation(
    graph: CSDFG,
    schedule: ScheduleTable,
    rotated: list[Node],
    old_placements: list[Placement],
    original_length: int,
) -> None:
    """Exactly invert :func:`rotate_schedule`.

    ``schedule`` must hold no placement for the rotated nodes (any
    trial remapping must be removed first).
    """
    for node in rotated:
        if node in schedule:
            schedule.remove(node)
    schedule.shift_all(+1)
    for placement in old_placements:
        schedule.place(
            placement.node,
            placement.pe,
            placement.start,
            placement.duration,
            placement.occupancy,
        )
    schedule.trim()
    schedule.set_length(max(original_length, schedule.makespan))
    unrotate_nodes(graph, rotated)
