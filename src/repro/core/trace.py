"""Execution traces of the cyclo-compaction optimiser.

Each rotation+remapping pass appends an :class:`IterationRecord`; the
full :class:`CompactionTrace` feeds the convergence benchmarks, the
examples' progress printouts, and the observability exporters
(:mod:`repro.obs`) via the :meth:`CompactionTrace.to_dict` /
:meth:`CompactionTrace.from_dict` round-trip.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.graph.csdfg import Node

__all__ = ["IterationRecord", "CompactionTrace"]


@dataclass(frozen=True)
class IterationRecord:
    """One pass of the optimiser.

    Attributes
    ----------
    index:
        1-based pass number.
    rotated:
        The first-row node set ``J`` that was rotated.
    accepted:
        Whether the remapping was kept (always true with relaxation).
    length_after:
        Schedule length after the pass (== before, when rejected).
    best_so_far:
        Best length seen up to and including this pass.
    """

    index: int
    rotated: tuple[Node, ...]
    accepted: bool
    length_after: int
    best_so_far: int


@dataclass
class CompactionTrace:
    """The whole optimisation trajectory."""

    initial_length: int
    records: list[IterationRecord] = field(default_factory=list)

    @property
    def lengths(self) -> list[int]:
        """Schedule length after each pass (prefixed by the initial)."""
        return [self.initial_length] + [r.length_after for r in self.records]

    @property
    def best_length(self) -> int:
        return min(self.lengths)

    @property
    def passes_to_best(self) -> int:
        """1-based index of the first pass reaching the best length.

        **Convention**: the result is 0 exactly when the optimiser
        never *strictly* improved on the initial schedule — both when
        every pass was worse and when some passes merely tied the
        initial length (a tie is not an improvement, so convergence is
        credited to pass 0, the start-up schedule).  A non-zero result
        therefore always denotes a pass that shortened the schedule
        below ``initial_length``.
        """
        best = self.best_length
        if best == self.initial_length:
            return 0
        for record in self.records:
            if record.length_after == best:
                return record.index
        return 0  # pragma: no cover - best always comes from a record

    def improvement(self) -> int:
        """Control steps shaved off the initial schedule."""
        return self.initial_length - self.best_length

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe for string/number node labels).

        The inverse is :meth:`from_dict`; the pair is the single
        serialisation shared by the convergence benchmarks and the
        observability trace exporters.
        """
        return {
            "initial_length": self.initial_length,
            "records": [
                {
                    "index": r.index,
                    "rotated": list(r.rotated),
                    "accepted": r.accepted,
                    "length_after": r.length_after,
                    "best_so_far": r.best_so_far,
                }
                for r in self.records
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompactionTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        trace = cls(initial_length=data["initial_length"])
        for r in data["records"]:
            trace.records.append(
                IterationRecord(
                    index=r["index"],
                    rotated=tuple(r["rotated"]),
                    accepted=r["accepted"],
                    length_after=r["length_after"],
                    best_so_far=r["best_so_far"],
                )
            )
        return trace

    def to_json(self, **dumps_kwargs) -> str:
        """JSON text of :meth:`to_dict` (``dumps_kwargs`` pass through)."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "CompactionTrace":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
