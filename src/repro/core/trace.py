"""Execution traces of the cyclo-compaction optimiser.

Each rotation+remapping pass appends an :class:`IterationRecord`; the
full :class:`CompactionTrace` feeds the convergence benchmarks and the
examples' progress printouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.csdfg import Node

__all__ = ["IterationRecord", "CompactionTrace"]


@dataclass(frozen=True)
class IterationRecord:
    """One pass of the optimiser.

    Attributes
    ----------
    index:
        1-based pass number.
    rotated:
        The first-row node set ``J`` that was rotated.
    accepted:
        Whether the remapping was kept (always true with relaxation).
    length_after:
        Schedule length after the pass (== before, when rejected).
    best_so_far:
        Best length seen up to and including this pass.
    """

    index: int
    rotated: tuple[Node, ...]
    accepted: bool
    length_after: int
    best_so_far: int


@dataclass
class CompactionTrace:
    """The whole optimisation trajectory."""

    initial_length: int
    records: list[IterationRecord] = field(default_factory=list)

    @property
    def lengths(self) -> list[int]:
        """Schedule length after each pass (prefixed by the initial)."""
        return [self.initial_length] + [r.length_after for r in self.records]

    @property
    def best_length(self) -> int:
        return min(self.lengths)

    @property
    def passes_to_best(self) -> int:
        """Index of the first pass reaching the best length (0 == the
        initial schedule was never improved)."""
        best = self.best_length
        for record in self.records:
            if record.length_after == best:
                return record.index
        return 0

    def improvement(self) -> int:
        """Control steps shaved off the initial schedule."""
        return self.initial_length - self.best_length
