"""The start-up priority function PF (Definition 3.6).

``PF(v) = max_i { m_i - (cs_cur - (CE(u_i) + 1)) - MB(v) }`` over the
already-scheduled zero-delay predecessors ``u_i`` of ``v`` with edge
data volumes ``m_i``:

* a large pending data volume raises priority (get the receiver placed
  before its data goes stale / the producer's processor fills up),
* ``cs_cur - (CE(u_i) + 1)`` is how long ``v`` has already been
  deferred past its producer — the volume's influence decays with it,
* mobility is subtracted: nodes that *can* wait, wait.

Root nodes (no zero-delay predecessor) score ``-MB(v)``, i.e. pure
inverse mobility.  Alternative priorities used by the ablation bench
(:mod:`repro.analysis.ablation`) are defined alongside.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.mobility import mobility
from repro.graph.csdfg import CSDFG, Node

__all__ = [
    "paper_priority",
    "mobility_only_priority",
    "fifo_priority",
    "volume_only_priority",
    "PriorityFn",
]

#: Signature shared by all start-up priority functions:
#: ``(graph, alap, finish_times, node, cs_cur) -> score`` (higher first).
PriorityFn = Callable[[CSDFG, Mapping[Node, int], Mapping[Node, int], Node, int], float]


def paper_priority(
    graph: CSDFG,
    alap: Mapping[Node, int],
    finish: Mapping[Node, int],
    node: Node,
    cs_cur: int,
) -> float:
    """The paper's PF (Definition 3.6)."""
    # no defensive copy: mobility() only reads, and this runs once per
    # ready node per control step — a copy here is O(V) per evaluation
    mb = mobility(alap, node, cs_cur)
    best: float | None = None
    for e in graph.in_edges(node):
        if e.delay != 0 or e.src not in finish:
            continue
        deferred = cs_cur - (finish[e.src] + 1)
        score = e.volume - deferred - mb
        if best is None or score > best:
            best = score
    if best is None:
        return float(-mb)
    return float(best)


def mobility_only_priority(
    graph: CSDFG,
    alap: Mapping[Node, int],
    finish: Mapping[Node, int],
    node: Node,
    cs_cur: int,
) -> float:
    """Classic list scheduling: least mobility first (ablation)."""
    return float(-mobility(alap, node, cs_cur))


def fifo_priority(
    graph: CSDFG,
    alap: Mapping[Node, int],
    finish: Mapping[Node, int],
    node: Node,
    cs_cur: int,
) -> float:
    """No prioritisation at all — ready order (ablation strawman)."""
    return 0.0


def volume_only_priority(
    graph: CSDFG,
    alap: Mapping[Node, int],
    finish: Mapping[Node, int],
    node: Node,
    cs_cur: int,
) -> float:
    """Largest pending inbound data volume first (ablation)."""
    volumes = [
        e.volume
        for e in graph.in_edges(node)
        if e.delay == 0 and e.src in finish
    ]
    return float(max(volumes, default=0))
