"""Start-up scheduling (paper §3): communication-aware list scheduling.

The algorithm walks control steps ``cs = 1, 2, ...`` keeping a ready
list of nodes whose zero-delay predecessors are all scheduled, ordered
by the priority function PF.  A ready node is placed at ``cs`` on the
processor minimising ``cm = max_i (CE(pred_i) + M(PE(pred_i), p; c))``
— the latest data-arrival over its predecessors — provided ``cm < cs``
(the data is there) and the processor is free for the node's full
duration.  Nodes that fit nowhere are deferred to the next control
step.

Delayed (loop-carried) edges are invisible to the placement loop (the
paper feeds the algorithm the graph "with no feedback edges") but still
constrain the initiation interval: the final schedule length is the
projected schedule length of the resulting placements, which may pad
empty control steps at the end of the table.
"""

from __future__ import annotations

from repro.arch.cache import CommCostCache
from repro.arch.topology import Architecture
from repro.core.mobility import mobility_map
from repro.core.priority import PriorityFn, paper_priority
from repro.core.psl import projected_schedule_length
from repro.errors import SchedulingError
from repro.graph.csdfg import CSDFG, Node
from repro.obs import metrics, span
from repro.graph.validation import topological_order_zero_delay
from repro.schedule.table import ScheduleTable

__all__ = ["start_up_schedule"]


def start_up_schedule(
    graph: CSDFG,
    arch: Architecture,
    *,
    priority: PriorityFn = paper_priority,
    pad_for_delayed_edges: bool = True,
    pipelined_pes: bool = False,
    comm: CommCostCache | None = None,
) -> ScheduleTable:
    """Compute the paper's initial schedule for ``graph`` on ``arch``.

    Parameters
    ----------
    priority:
        Start-up priority function; defaults to the paper's PF.  The
        ablation suite passes the alternatives from
        :mod:`repro.core.priority`.
    pad_for_delayed_edges:
        Grow the schedule length to the projected schedule length so
        loop-carried cross-processor dependences are met (on by
        default; disable only to inspect the raw makespan).
    pipelined_pes:
        Treat every PE as pipelined (§2): a task blocks its processor
        for one control step only, while its results still take
        ``t(v)`` control steps to appear.
    comm:
        Optional precomputed communication-cost cache (see
        :class:`repro.arch.cache.CommCostCache`); placement decisions
        are identical with or without it.

    Returns
    -------
    A legal :class:`~repro.schedule.table.ScheduleTable`.
    """
    if graph.num_nodes == 0:
        raise SchedulingError("cannot schedule an empty graph")
    # verifies legality (zero-delay subgraph acyclic) as a side effect
    topological_order_zero_delay(graph)

    with span(
        "startup", workload=graph.name, arch=arch.name
    ) as startup_span:
        alap = mobility_map(graph)
        schedule = ScheduleTable(
            arch.num_pes, name=f"{graph.name}@{arch.name}:startup"
        )
        finish: dict[Node, int] = {}

        pending_preds: dict[Node, int] = {
            v: sum(1 for e in graph.in_edges(v) if e.delay == 0)
            for v in graph.nodes()
        }
        # static zero-delay in-degrees (pending_preds decays to 0):
        # nodes without zero-delay producers share the placement-failure
        # memo below
        no_zero_preds = {v for v, k in pending_preds.items() if k == 0}
        ready: list[Node] = [v for v, k in pending_preds.items() if k == 0]
        remaining = graph.num_nodes

        # any legal schedule fits in total work plus total possible comm
        max_comm = arch.diameter * sum(e.volume for e in graph.edges())
        cs_limit = graph.total_work() + max_comm + 1

        pf_evaluations = 0
        placements_made = 0
        deferrals = 0

        cs = 1
        while remaining > 0:
            if cs > cs_limit:
                raise SchedulingError(
                    f"start-up scheduling did not converge by cs {cs_limit}"
                )
            pf_evaluations += len(ready)
            ready.sort(
                key=lambda v: (-priority(graph, alap, finish, v, cs), str(v))
            )
            deferred: list[Node] = []
            newly_ready: list[Node] = []
            # failure memo for nodes *without* zero-delay producers:
            # their _best_processor outcome depends only on (cs, base
            # execution time, schedule occupancy), so one failure rules
            # out every same-duration node until the next placement
            # mutates the table.  Exact — all-ready families (rings)
            # would otherwise rescan every PE for thousands of deferred
            # nodes at every control step.
            fail_gen: dict[int, int] = {}
            for node in ready:
                memo_key = (
                    graph.time(node) if node in no_zero_preds else None
                )
                if (
                    memo_key is not None
                    and fail_gen.get(memo_key) == placements_made
                ):
                    deferred.append(node)
                    deferrals += 1
                    continue
                choice = _best_processor(
                    graph, arch, schedule, finish, node, cs, pipelined_pes,
                    comm=comm,
                )
                if choice is None:
                    if memo_key is not None:
                        fail_gen[memo_key] = placements_made
                    deferred.append(node)
                    deferrals += 1
                    continue
                pe, duration = choice
                occupancy = 1 if pipelined_pes else duration
                placement = schedule.place(node, pe, cs, duration, occupancy)
                finish[node] = placement.finish
                remaining -= 1
                placements_made += 1
                for e in graph.out_edges(node):
                    if e.delay == 0:
                        pending_preds[e.dst] -= 1
                        if pending_preds[e.dst] == 0:
                            newly_ready.append(e.dst)
            ready = deferred + newly_ready
            cs += 1

        schedule.trim()
        if pad_for_delayed_edges:
            schedule.set_length(
                projected_schedule_length(
                    graph, arch, schedule, pipelined_pes=pipelined_pes,
                    comm=comm,
                )
            )
        metrics.inc("startup.placements", placements_made)
        metrics.inc("startup.deferrals", deferrals)
        metrics.inc("startup.pf_evaluations", pf_evaluations)
        metrics.inc("startup.control_steps", cs - 1)
        startup_span.add(
            length=schedule.length,
            placements=placements_made,
            deferrals=deferrals,
            pf_evaluations=pf_evaluations,
        )
    return schedule


def _best_processor(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    finish: dict[Node, int],
    node: Node,
    cs: int,
    pipelined_pes: bool,
    *,
    comm: CommCostCache | None = None,
) -> tuple[int, int] | None:
    """The ``(processor, duration)`` where ``node`` may start at ``cs``.

    Minimises the execution time on the PE (heterogeneous machines),
    then the data-arrival bound ``cm``; ``None`` when no processor
    qualifies."""
    cost = comm.cost if comm is not None else arch.comm_cost
    # hoist per-node state out of the PE loop: the zero-delay producer
    # constraints and the base execution time do not depend on the PE
    zero_preds: list[tuple[int, int, int]] = []  # (src_pe, finish, volume)
    for e in graph.in_edges(node):
        if e.delay == 0:
            zero_preds.append(
                (schedule.processor(e.src), finish[e.src], e.volume)
            )
    base_time = graph.time(node)
    best: tuple[int, int, int] | None = None  # (duration, cm, pe)
    for pe in arch.processors:
        cm = 0
        feasible = True
        for src_pe, finish_u, vol in zero_preds:
            arrival = finish_u + cost(src_pe, pe, vol)
            if arrival > cm:
                cm = arrival
            if arrival >= cs:  # paper: need cm < cs
                feasible = False
                break
        if not feasible:
            continue
        duration = arch.execution_time(pe, base_time)
        occupancy = 1 if pipelined_pes else duration
        if not schedule.is_free(pe, cs, occupancy):
            continue
        key = (duration, cm, pe)
        if best is None or key < best:
            best = key
    if best is None:
        return None
    return best[2], best[0]
