"""The anticipation function AN (Definition 4.3 / Lemma 4.2).

When the remapping phase re-places a rotated node ``v`` on a candidate
processor ``p``, every incoming edge ``u -> v`` (with its *retimed*
delay ``dr`` and the producer ``u`` already placed) constrains the
earliest start, assuming the final schedule length will be
``L_target``::

    CB(v) + dr * L_target  >=  CE(u) + M(PE(u), p; c) + 1
    =>  CB(v)  >=  CE(u) + M + 1 - dr * L_target

``AN(v, p)`` is the max of these bounds clamped to control step 1.
With ``L_target = L - 1`` this is term-for-term the paper's
``M - (dr*(L-1) - CE(u)) + 1``.  Because the bound *decreases* in
``L_target``, checking a placement against a smaller assumed length
than the one finally realised is always safe (DESIGN.md §2).

The dual :func:`latest_finish` bounds ``CE(v)`` through v's *outgoing*
edges to already-placed consumers — the paper enforces this implicitly
via its "``PSL(v) <= length(S)`` for all v" remapping side condition.
"""

from __future__ import annotations

from typing import Container

from repro.arch.topology import Architecture
from repro.graph.csdfg import CSDFG, Node
from repro.schedule.table import ScheduleTable

__all__ = ["anticipated_start", "latest_finish"]

#: Sentinel for "no upper bound" from :func:`latest_finish`.
_NO_BOUND = 10**12


def anticipated_start(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    node: Node,
    pe: int,
    target_length: int,
) -> int:
    """Earliest legal ``CB(node)`` on ``pe`` assuming final length
    ``target_length``.

    Only incoming edges whose producers are currently placed
    contribute; producers that are themselves awaiting remapping are
    handled by the projected-schedule-length check afterwards.
    """
    bound = 1
    for e in graph.in_edges(node):
        if e.src == node or e.src not in schedule:
            continue
        placement = schedule.placement(e.src)
        comm = arch.comm_cost(placement.pe, pe, e.volume)
        need = placement.finish + comm + 1 - e.delay * target_length
        if need > bound:
            bound = need
    return bound


def latest_finish(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    node: Node,
    pe: int,
    target_length: int,
    *,
    unbounded: Container[int] = (),
) -> int:
    """Latest legal ``CE(node)`` on ``pe`` w.r.t. placed consumers,
    assuming final length ``target_length``.

    For each outgoing edge ``node -> x`` with retimed delay ``dr`` and
    ``x`` placed: ``CE(node) <= CB(x) + dr * target_length - M - 1``.
    Returns a very large sentinel when nothing constrains the node.

    ``unbounded`` suppresses the delayed-edge bounds (used by the
    relaxed remapping phase that lets the projected schedule length
    float); pass the set ``{1}`` meaning "delays >= 1 are unbounded".
    """
    bound = _NO_BOUND
    for e in graph.out_edges(node):
        if e.dst == node or e.dst not in schedule:
            continue
        if e.delay >= 1 and 1 in unbounded:
            continue
        placement = schedule.placement(e.dst)
        comm = arch.comm_cost(pe, placement.pe, e.volume)
        limit = placement.start + e.delay * target_length - comm - 1
        if limit < bound:
            bound = limit
    return bound
