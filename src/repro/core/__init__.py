"""The paper's contribution: start-up scheduling + cyclo-compaction.

High-level entry points:

* :func:`repro.core.startup.start_up_schedule` — the §3
  communication-aware list scheduler,
* :func:`repro.core.cyclo.cyclo_compact` — the §4 optimiser (rotation +
  remapping with/without relaxation).
"""

from repro.core.anticipation import anticipated_start, latest_finish
from repro.core.config import CycloConfig
from repro.core.cyclo import CycloResult, cyclo_compact
from repro.core.mobility import mobility, mobility_map
from repro.core.pipeline import (
    ContentionResult,
    OptimizeResult,
    contention_aware_schedule,
    optimize,
)
from repro.core.priority import (
    PriorityFn,
    fifo_priority,
    mobility_only_priority,
    paper_priority,
    volume_only_priority,
)
from repro.core.psl import projected_schedule_length, psl_edge_bound
from repro.core.refine import RefineResult, refine_schedule
from repro.core.remapping import RemapOutcome, remap_nodes
from repro.core.rotation import rotate_schedule, undo_rotation
from repro.core.startup import start_up_schedule
from repro.core.trace import CompactionTrace, IterationRecord

__all__ = [
    "CompactionTrace",
    "ContentionResult",
    "CycloConfig",
    "CycloResult",
    "IterationRecord",
    "OptimizeResult",
    "PriorityFn",
    "RefineResult",
    "RemapOutcome",
    "anticipated_start",
    "contention_aware_schedule",
    "cyclo_compact",
    "fifo_priority",
    "latest_finish",
    "mobility",
    "mobility_map",
    "mobility_only_priority",
    "optimize",
    "paper_priority",
    "projected_schedule_length",
    "psl_edge_bound",
    "refine_schedule",
    "remap_nodes",
    "rotate_schedule",
    "start_up_schedule",
    "undo_rotation",
    "volume_only_priority",
]
