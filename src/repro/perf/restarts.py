"""Sharded best-of-N compaction restarts (``repro schedule --restarts``).

Cyclo-compaction is deterministic, so re-running it buys nothing — but
its outcome depends on the start-up schedule, and the start-up schedule
depends on the priority function.  :func:`best_of_restarts` runs ``N``
restarts whose priorities are deterministically jittered per restart
index (restart 0 is the plain paper priority, so the best-of-N result
is never worse than the single run) and returns the shortest schedule
found.

Restarts are sharded across :func:`repro.perf.run_parallel` workers in
**synchronized stages** of ``stage_passes`` compaction passes each: a
worker runs its restart up to the stage boundary, freezes it into a
:class:`~repro.resilience.checkpoint.CompactionCheckpoint`, and ships
the checkpoint home; the parent then broadcasts the best length known
so far into the next stage's pruning decisions.  Because stage
boundaries are fixed by ``(seed, restarts, stage_passes)`` alone and
``run_parallel`` returns results in item order, the outcome is
**identical for every ``jobs`` value** — the worker count changes only
wall-clock time, never the winner (pinned in
``tests/unit/test_restarts.py``).

Pruning, between stages:

* a restart stops naturally when its compaction run converges, runs out
  of patience, or spends the pass budget (its length is final);
* a still-running restart is dropped (``stop_reason == "pruned"``) when
  it sits strictly above the best known length *and* made no progress
  during the last stage — it is stalled above an incumbent it would
  have to beat;
* everything stops (``"lower-bound"``) once the best known length
  reaches ``schedule_bounds(graph, arch).lower`` — no restart can beat
  the analytic bound, so finishing the others is wasted work.

Both prunings read only stage-boundary lengths, so they are as
deterministic as the engine itself.  Wall-clock deadlines are stripped
from the per-stage configs — a deadline would make stage outcomes
depend on machine speed, which is exactly what the jobs-invariance
guarantee forbids.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

from repro.arch.topology import Architecture
from repro.baselines import schedule_bounds
from repro.core.config import CycloConfig
from repro.core.cyclo import cyclo_compact
from repro.core.priority import paper_priority
from repro.core.startup import start_up_schedule
from repro.errors import SchedulingError
from repro.graph.csdfg import CSDFG, Node
from repro.obs import metrics, span
from repro.perf.parallel import run_parallel
from repro.resilience.checkpoint import CompactionCheckpoint, resume_compaction
from repro.retiming.basic import apply_retiming
from repro.schedule.io import schedule_from_json
from repro.schedule.table import ScheduleTable

__all__ = [
    "JitteredPriority",
    "RestartOutcome",
    "RestartReport",
    "best_of_restarts",
]


class JitteredPriority:
    """The paper priority plus a deterministic per-node jitter in
    ``[0, 1)`` — enough to shuffle ties and near-ties in the start-up
    ready queue, which is what diversifies the restarts.

    The jitter comes from ``crc32`` over ``seed:index:node`` (never
    python's ``hash``, which is salted per process and would break the
    jobs-invariance guarantee).  Instances are picklable, so the
    priority travels to worker processes.
    """

    __slots__ = ("seed", "index")

    def __init__(self, seed: int, index: int):
        self.seed = seed
        self.index = index

    def __call__(self, graph, alap, finish, node, cs_cur) -> float:
        base = paper_priority(graph, alap, finish, node, cs_cur)
        digest = zlib.crc32(f"{self.seed}:{self.index}:{node}".encode())
        return base + digest / 2**32

    def __reduce__(self):
        return (JitteredPriority, (self.seed, self.index))


@dataclass(frozen=True)
class RestartOutcome:
    """Where one restart ended up.

    ``stop_reason`` is the engine's reason (``completed`` /
    ``converged`` / ``patience``) or the shard driver's (``pruned`` /
    ``lower-bound``).  ``length`` is the restart's best length at the
    moment it stopped — for pruned restarts, a valid but abandoned
    schedule length.
    """

    index: int
    length: int
    initial_length: int
    passes: int
    stop_reason: str


@dataclass
class RestartReport:
    """Result of :func:`best_of_restarts`.

    ``schedule``/``graph``/``retiming`` reproduce the winning restart's
    best schedule exactly (same invariants as
    :class:`~repro.core.cyclo.CycloResult`); ``outcomes`` records every
    restart, winner first not guaranteed — they come in restart order.
    """

    schedule: ScheduleTable
    graph: CSDFG
    retiming: dict[Node, int]
    winner: RestartOutcome
    outcomes: list[RestartOutcome]
    seed: int
    restarts: int
    jobs: int
    stages: int
    lower_bound: int

    @property
    def final_length(self) -> int:
        return self.schedule.length


def _run_stage(payload: tuple) -> dict:
    """One restart, advanced to the next stage boundary (worker side)."""
    graph, arch, stage_cfg, seed, index, ckpt_dict = payload
    if ckpt_dict is None:
        priority = (
            paper_priority if index == 0 else JitteredPriority(seed, index)
        )
        initial = start_up_schedule(
            graph,
            arch,
            priority=priority,
            pipelined_pes=stage_cfg.pipelined_pes,
        )
        result = cyclo_compact(graph, arch, config=stage_cfg, initial=initial)
    else:
        ckpt = CompactionCheckpoint.from_dict(ckpt_dict)
        result = resume_compaction(graph, arch, ckpt, config=stage_cfg)
    return {
        "index": index,
        "length": result.final_length,
        "initial_length": result.initial_length,
        "passes": len(result.trace.records),
        "stop_reason": result.stop_reason,
        "checkpoint": CompactionCheckpoint.capture(
            result, graph, arch, stage_cfg
        ).to_dict(),
    }


def best_of_restarts(
    graph: CSDFG,
    arch: Architecture,
    config: CycloConfig | None = None,
    *,
    restarts: int,
    jobs: int = 1,
    seed: int = 0,
    stage_passes: int = 8,
) -> RestartReport:
    """Best schedule over ``restarts`` jittered compaction restarts.

    Parameters
    ----------
    restarts:
        How many restarts to run (>= 1).  Restart 0 uses the plain
        paper priority, so the report is never worse than a single
        :func:`~repro.core.cyclo.cyclo_compact` run of the same config.
    jobs:
        Worker processes for each stage (forwarded to
        :func:`repro.perf.run_parallel`).  Changes wall-clock only —
        the winner, lengths and placements are jobs-invariant.
    seed:
        Seeds the per-restart priority jitter.
    stage_passes:
        Compaction passes per synchronization stage.  Part of the
        deterministic key: the same ``(seed, restarts, stage_passes)``
        always produces the same report.

    The config's ``deadline_seconds`` is ignored (stages must not
    depend on wall clock); apply an outer budget around this call
    instead.  Node labels must be strings (the checkpoint round-trip's
    convention).
    """
    if restarts < 1:
        raise SchedulingError(f"restarts must be >= 1, got {restarts}")
    if stage_passes < 1:
        raise SchedulingError(
            f"stage_passes must be >= 1, got {stage_passes}"
        )
    cfg = config if config is not None else CycloConfig()
    total = cfg.iterations_for(graph.num_nodes)
    lower = schedule_bounds(graph, arch).lower

    with span(
        "best_of_restarts",
        workload=graph.name,
        arch=arch.name,
        restarts=restarts,
        jobs=jobs,
    ) as sp:
        # per-restart shard state, updated at every stage boundary
        ckpts: list[dict | None] = [None] * restarts
        lengths: list[int | None] = [None] * restarts
        initials: list[int] = [0] * restarts
        passes: list[int] = [0] * restarts
        reasons: list[str | None] = [None] * restarts
        active = list(range(restarts))
        stages = 0
        stage_start = 1

        while active and stage_start <= total:
            stage_end = min(stage_start + stage_passes - 1, total)
            stage_cfg = replace(
                cfg, max_iterations=stage_end, deadline_seconds=None
            )
            payloads = [
                (graph, arch, stage_cfg, seed, i, ckpts[i]) for i in active
            ]
            rows = run_parallel(_run_stage, payloads, jobs=jobs)
            stages += 1
            for row in rows:
                i = row["index"]
                row["prev"] = lengths[i]
                ckpts[i] = row["checkpoint"]
                lengths[i] = row["length"]
                initials[i] = row["initial_length"]
                passes[i] = row["passes"]
                if row["stop_reason"] != "completed" or stage_end == total:
                    # the run ended inside the stage (converged /
                    # patience) or spent the full pass budget
                    reasons[i] = row["stop_reason"]
            best = min(v for v in lengths if v is not None)
            metrics.set_gauge("perf.restarts.best_length", best)
            if best <= lower:
                # the analytic bound is met; nothing left to beat
                for i in active:
                    if reasons[i] is None:
                        reasons[i] = "lower-bound"
                        metrics.inc("perf.restarts.lower_bound_stops")
                break
            survivors = []
            for row in rows:
                i = row["index"]
                if reasons[i] is not None:
                    continue  # finished naturally this stage
                stalled = row["prev"] is not None and row["prev"] == row["length"]
                if row["length"] > best and stalled:
                    reasons[i] = "pruned"
                    metrics.inc("perf.restarts.pruned")
                    continue
                survivors.append(i)
            active = survivors
            stage_start = stage_end + 1

        # every restart ran at least one stage (total >= 1 because
        # iterations_for never returns less than the node count floor),
        # so lengths/ckpts are fully populated
        winner_index = min(
            range(restarts), key=lambda i: (lengths[i], i)
        )
        winner_ckpt = CompactionCheckpoint.from_dict(ckpts[winner_index])
        best_schedule = schedule_from_json(winner_ckpt.best_schedule)
        best_retiming = {
            v: winner_ckpt.best_retiming[str(v)] for v in graph.nodes()
        }
        best_graph = apply_retiming(graph, best_retiming, name=graph.name)
        outcomes = [
            RestartOutcome(
                index=i,
                length=lengths[i],
                initial_length=initials[i],
                passes=passes[i],
                stop_reason=reasons[i] or "completed",
            )
            for i in range(restarts)
        ]
        sp.add(
            winner=winner_index,
            final_length=best_schedule.length,
            stages=stages,
        )
        metrics.inc("perf.restarts.runs")
    return RestartReport(
        schedule=best_schedule,
        graph=best_graph,
        retiming=best_retiming,
        winner=outcomes[winner_index],
        outcomes=outcomes,
        seed=seed,
        restarts=restarts,
        jobs=jobs,
        stages=stages,
        lower_bound=lower,
    )
