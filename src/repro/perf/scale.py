"""The thousand-node benchmark tier (``repro scale``).

The speedup benchmark pins small-graph latency; this tier pins
*scaling*: seeded exact-size instances of the :mod:`repro.qa`
structural families (1k–10k nodes, byte-stable per ``(family, size,
seed)``) pushed through full cyclo-compaction on 16–64-PE machines,
with every cell profiled through :mod:`repro.obs` and recorded as a
``scale`` run in the history store.  The headline figure per cell is
**nodes per second** — graph nodes divided by the wall-clock of the
whole compaction run (start-up schedule included) — so future engine
changes are judged on how they scale, not just on small-graph latency.

Cells are independent, so :func:`run_scale_matrix` shards them across
:func:`repro.perf.run_parallel` workers; measurements are taken inside
the worker, history is written by the parent (the history store is a
single-writer design).  ``quick=True`` trims to the first cell plus
the contended Cayley cell — the CI ``scale-smoke`` job's mode.

The per-cell pass budgets are part of the matrix: large cells run
fewer passes so one full matrix stays in tens of seconds, and
nodes-per-second stays comparable across history because the budget is
pinned per cell.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.aggregate import phase_totals
from repro.obs.history import HistoryStore, RunRecord
from repro.obs.metrics import REGISTRY
from repro.obs import metrics as metrics_mod
from repro.obs.runtime import sink_installed
from repro.obs.sinks import InMemorySink
from repro.perf.parallel import run_parallel

__all__ = [
    "SCALE_MATRIX",
    "ScaleCell",
    "cache_hit_rate",
    "run_scale_cell",
    "run_scale_matrix",
]


@dataclass(frozen=True)
class ScaleCell:
    """One scale-tier measurement: an exact-size family instance on a
    fixed machine with a pinned pass budget.

    ``contention`` > 0 switches the cell to the two-phase
    contention-aware pipeline (serialised-link model at that weight,
    one reprice round), so the tier also pins the cost of occupancy-
    surcharged comm-cache rows at the thousand-node scale.
    """

    family: str
    size: int
    arch_kind: str
    num_pes: int
    passes: int
    seed: int = 11
    contention: int = 0

    @property
    def label(self) -> str:
        suffix = f"+c{self.contention}" if self.contention else ""
        return (
            f"{self.family}-{self.size}"
            f"@{self.arch_kind}{self.num_pes}{suffix}"
        )


#: The pinned scale cells: four structural families, four sizes
#: (1k/2k/5k/10k nodes), six topology kinds, one wide (64-PE)
#: machine to exercise the batched per-PE fold kernels, plus one
#: contended Cayley cell (circulant machine, serialised links) that
#: runs the two-phase pipeline.  Pass budgets keep one full matrix
#: under ~10 s while every cell still accepts multiple compaction
#: passes.
SCALE_MATRIX: tuple[ScaleCell, ...] = (
    ScaleCell("layered", 1000, "mesh", 16, 40),
    ScaleCell("fork-join", 2000, "hypercube", 16, 12),
    ScaleCell("ring", 5000, "torus", 16, 10),
    ScaleCell("chain", 10000, "ring", 16, 6),
    ScaleCell("layered", 1000, "complete", 64, 25),
    ScaleCell("layered", 1000, "circulant", 16, 12, contention=2),
)


def run_scale_cell(cell: ScaleCell) -> dict:
    """Measure one cell with full instrumentation (worker side).

    Returns a plain dict (picklable): timings, lengths, per-phase
    second totals and the metrics counters of the run — everything the
    parent needs to write history and the benchmark report.
    """
    from repro.arch import make_architecture
    from repro.core import CycloConfig, contention_aware_schedule, cyclo_compact
    from repro.qa import sample_sized_graph

    graph = sample_sized_graph(cell.family, cell.size, seed=cell.seed)
    arch = make_architecture(cell.arch_kind, cell.num_pes)
    cfg = CycloConfig(
        max_iterations=cell.passes,
        validate_each_step=False,
        contention_model="serialized" if cell.contention else None,
        contention_weight=cell.contention if cell.contention else 1,
        contention_rounds=1,
    )
    sink = InMemorySink()
    metrics_mod.reset()
    extra: dict = {}
    with sink_installed(sink):
        started = time.perf_counter()
        if cell.contention:
            contended = contention_aware_schedule(graph, arch, config=cfg)
            result = contended.blind if contended.comm is None else contended.aware
            extra = {
                "contention": cell.contention,
                "blind_cost": contended.blind_cost,
                "final_cost": contended.final_cost,
            }
        else:
            result = cyclo_compact(graph, arch, config=cfg)
        duration = time.perf_counter() - started
    counters = REGISTRY.snapshot()["counters"]
    metrics_mod.reset()
    return {
        "family": cell.family,
        "size": cell.size,
        "arch": f"{cell.arch_kind}{cell.num_pes}",
        "workload": graph.name,
        "passes": cell.passes,
        "seed": cell.seed,
        "config": cfg.to_dict(),
        "duration_seconds": duration,
        "nodes_per_second": cell.size / duration if duration > 0 else 0.0,
        "initial_length": result.initial_length,
        "final_length": result.final_length,
        "stop_reason": result.stop_reason,
        "phases": phase_totals(sink.events),
        "counters": counters,
        **extra,
    }


def cache_hit_rate(counters: dict) -> float:
    """Warm comm-cost hit rate of a cell from its published tallies
    (``arch.cache.hits`` / ``arch.cache.misses``; 0.0 when the cell
    recorded no lookups)."""
    hits = counters.get("arch.cache.hits", 0)
    misses = counters.get("arch.cache.misses", 0)
    lookups = hits + misses
    return hits / lookups if lookups else 0.0


def run_scale_matrix(
    history_dir: str | Path | None = None,
    *,
    matrix: Sequence[ScaleCell] = SCALE_MATRIX,
    quick: bool = False,
    jobs: int = 1,
    clock: Callable[[], float] = time.time,
) -> tuple[list[dict], list[RunRecord]]:
    """Run the scale tier; optionally append ``scale`` history records.

    Returns ``(rows, records)`` in matrix order — ``rows`` are the
    per-cell measurement dicts from :func:`run_scale_cell`, ``records``
    the appended history records (empty when ``history_dir`` is None).
    ``quick=True`` keeps the first cell plus every contended cell (CI
    smoke mode: one blind baseline and one contention-aware pipeline
    run); ``jobs`` shards cells across worker processes without
    changing any measured cell (each worker times only its own cell).
    """
    if quick:
        cells = list(matrix[:1]) + [c for c in matrix[1:] if c.contention]
    else:
        cells = list(matrix)
    rows = run_parallel(run_scale_cell, cells, jobs=jobs)
    records: list[RunRecord] = []
    if history_dir is not None:
        store = HistoryStore(history_dir, clock=clock)
        for row in rows:
            records.append(
                store.record(
                    "scale",
                    workload=row["workload"],
                    arch=row["arch"],
                    config=row["config"],
                    duration_seconds=row["duration_seconds"],
                    phases=row["phases"],
                    counters=row["counters"],
                    attrs={
                        "family": row["family"],
                        "size": row["size"],
                        "passes": row["passes"],
                        "nodes_per_second": round(
                            row["nodes_per_second"], 3
                        ),
                        "initial_length": row["initial_length"],
                        "final_length": row["final_length"],
                        "stop_reason": row["stop_reason"],
                        "cache_hit_rate": round(
                            cache_hit_rate(row["counters"]), 6
                        ),
                    },
                )
            )
    return rows, records
