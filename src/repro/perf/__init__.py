"""Performance infrastructure: parallel sweep driver + reference engine.

Two halves:

* :mod:`repro.perf.parallel` — :func:`run_parallel`, a deterministic
  seeded process-pool map for embarrassingly-parallel workloads (random
  suites, benchmark sweeps, resilience chaos campaigns), with
  per-worker observability metrics merged back into the parent
  registry.
* :mod:`repro.perf.restarts` — :func:`best_of_restarts`, sharded
  best-of-N priority-jittered compaction restarts with best-known-length
  pruning between stages, deterministic for a fixed ``(seed, restarts)``
  regardless of the worker count.
* :mod:`repro.perf.scale` — the thousand-node benchmark tier
  (``repro scale``): seeded structural families from :mod:`repro.qa`
  pushed through full compaction with nodes-per-second accounting.
* :mod:`repro.perf.reference` — the *pre-optimisation* scheduling
  engine, preserved verbatim: the naive cell-dict
  :class:`~repro.perf.reference.ReferenceScheduleTable`, the per-slot
  communication-cost slot search, and the full projected-schedule-
  length rescan.  :func:`~repro.perf.reference.reference_cyclo_compact`
  runs cyclo-compaction on it — the baseline the equivalence suite and
  ``benchmarks/test_bench_speedup.py`` pin the fast path against.

See ``docs/performance.md``.
"""

from repro.perf.parallel import run_parallel
from repro.perf.reference import ReferenceScheduleTable, reference_cyclo_compact
from repro.perf.restarts import RestartOutcome, RestartReport, best_of_restarts

__all__ = [
    "ReferenceScheduleTable",
    "RestartOutcome",
    "RestartReport",
    "best_of_restarts",
    "reference_cyclo_compact",
    "run_parallel",
]
