"""Deterministic process-pool map for sweeps and campaigns.

:func:`run_parallel` is the one fan-out primitive the repo uses for
embarrassingly-parallel work: parameter sweeps
(:mod:`repro.analysis.sweep`), chaos campaigns
(:mod:`repro.resilience.chaos`) and the speedup benchmark.  Guarantees:

* **Determinism** — results come back in *item order* regardless of
  which worker finished first, so a parallel sweep is byte-identical to
  the serial one (the scheduler itself is seeded per item, never by
  worker identity).
* **Observability** — when the parent process has observability
  enabled (:func:`repro.obs.runtime.enabled`), each worker records its
  metrics into a fresh registry and ships a snapshot home; the parent
  merges them (counters add, histograms combine) so campaign-level
  statistics such as ``resilience.chaos.trial_seconds`` percentiles
  cover every trial no matter where it ran.
* **Budgets** — ``time_budget_seconds`` stops dispatching new items
  once the wall-clock budget is spent; completed items are returned (a
  prefix of the item list), never partial results.
* **Typed failure** — a worker process dying abruptly (killed, OOMed,
  interpreter crash) raises :class:`repro.errors.WorkerCrashedError`
  carrying the in-item-order prefix of results completed before the
  crash, instead of leaking ``concurrent.futures``' raw
  ``BrokenProcessPool``.  Ordinary exceptions *raised by* ``fn``
  propagate unchanged.

``fn`` and every item must be picklable for ``jobs > 1`` (plain
functions and the repo's graphs/architectures/configs all are).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from repro.errors import WorkerCrashedError
from repro.obs import metrics, runtime
from repro.obs.sinks import InMemorySink

__all__ = ["run_parallel"]


def _worker(payload: tuple) -> tuple[Any, dict | None]:
    """Run one item in a worker process.

    Returns ``(result, metrics_snapshot)``; the snapshot is ``None``
    unless the parent asked for metrics.  A fresh in-memory sink flips
    the worker's observability flag on so the instrumented hot paths
    actually record — the event stream itself is discarded, only the
    metrics registry travels back.  ``submitted`` is the parent's
    ``time.monotonic()`` at dispatch (system-wide on the platforms the
    repo targets), so ``queue_wait_seconds`` measures how long the item
    sat waiting for a worker slot.
    """
    fn, item, collect, submitted = payload
    if not collect:
        return fn(item), None
    metrics.reset()
    with runtime.sink_installed(InMemorySink()):
        begun = time.monotonic()
        if submitted is not None:
            metrics.observe(
                "perf.parallel.queue_wait_seconds",
                max(0.0, begun - submitted),
            )
        result = fn(item)
        metrics.inc("perf.parallel.tasks")
        metrics.observe(
            "perf.parallel.task_seconds", time.monotonic() - begun
        )
        snap = metrics.snapshot()
    return result, snap


def run_parallel(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    jobs: int = 1,
    time_budget_seconds: float | None = None,
) -> list:
    """Map ``fn`` over ``items``, optionally across processes.

    Parameters
    ----------
    fn:
        Callable applied to each item.  Must be picklable (module-level)
        when ``jobs > 1``.
    items:
        Work items; consumed eagerly so the result order is fixed.
    jobs:
        Worker process count.  ``jobs <= 1`` runs serially in-process
        (no pickling requirement, exceptions propagate directly).
    time_budget_seconds:
        Soft wall-clock budget: once exceeded, no further item is
        *started*; already-running items finish and are included.  The
        returned list is always a prefix of ``items``' results.

    Returns
    -------
    list
        ``[fn(item) for item in items]`` (possibly truncated by the
        budget), in item order.
    """
    work: Sequence[Any] = list(items)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    deadline = (
        time.perf_counter() + time_budget_seconds
        if time_budget_seconds is not None
        else None
    )

    if jobs == 1 or len(work) <= 1:
        observing = runtime.enabled()
        results = []
        for item in work:
            if deadline is not None and time.perf_counter() >= deadline:
                break
            if observing:
                begun = time.monotonic()
                results.append(fn(item))
                metrics.inc("perf.parallel.tasks")
                metrics.observe(
                    "perf.parallel.task_seconds", time.monotonic() - begun
                )
                metrics.observe("perf.parallel.queue_wait_seconds", 0.0)
            else:
                results.append(fn(item))
        return results

    collect = runtime.enabled()
    results = []
    width = min(jobs, len(work))
    with ProcessPoolExecutor(max_workers=width) as pool:
        # keep at most `jobs` items in flight so the budget check gates
        # every dispatch, not just the initial burst
        pending: deque = deque()
        next_index = 0
        while next_index < len(work) and len(pending) < width:
            pending.append(pool.submit(
                _worker,
                (fn, work[next_index], collect, time.monotonic()),
            ))
            next_index += 1
        try:
            while pending:
                result, snap = pending.popleft().result()
                results.append(result)
                if snap is not None:
                    metrics.merge_snapshot(snap)
                if next_index < len(work) and (
                    deadline is None or time.perf_counter() < deadline
                ):
                    pending.append(pool.submit(
                        _worker,
                        (fn, work[next_index], collect, time.monotonic()),
                    ))
                    next_index += 1
        except BrokenProcessPool as exc:
            metrics.inc("perf.parallel.worker_crashes")
            raise WorkerCrashedError(
                f"worker process died after {len(results)} of "
                f"{len(work)} items completed (killed, out of memory, "
                "or interpreter crash)",
                completed=results,
            ) from exc
    return results
