"""The pre-optimisation scheduling engine, preserved verbatim.

This module is the *denominator* of every speedup claim and the oracle
of the fast-path equivalence suite.  It keeps the original
implementations that the fast-path engine replaced:

* :class:`ReferenceScheduleTable` — the naive per-cell dict table
  (``earliest_slot`` probes cell by cell, ``shift_all`` re-places every
  task, ``busy_cells``/``row`` scan the whole cell dict);
* :func:`reference_find_spot` — the remapping slot search that calls
  ``arch.comm_cost`` for every constraint of every scanned slot;
* :func:`reference_cyclo_compact` — cyclo-compaction wired to both of
  the above with ``fast_path=False`` (no communication-cost cache, full
  ``projected_schedule_length`` rescan after every pass).

The behaviour contract: for identical inputs the reference engine and
the fast path produce **identical schedules** — same lengths, same
placements, same accept/reject traces.  ``tests/unit/test_table_index.py``
pins the tables against each other operation by operation and
``tests/integration/test_fastpath_equivalence.py`` pins the end-to-end
engines on every registered workload x topology.  (Only observability
*metrics* such as ``remap.candidate_slots`` may differ: the fast path
prunes slots the reference path scans and rejects.)
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.arch.topology import Architecture
from repro.core import remapping as _remapping_mod
from repro.core import startup as _startup_mod
from repro.core.config import CycloConfig
from repro.core.cyclo import CycloResult, cyclo_compact
from repro.core.remapping import _implied_length
from repro.errors import PlacementConflictError, ScheduleError
from repro.graph.csdfg import CSDFG, Node
from repro.obs import metrics
from repro.schedule.table import Placement, ScheduleTable

__all__ = [
    "ReferenceScheduleTable",
    "reference_find_spot",
    "reference_cyclo_compact",
]


class ReferenceScheduleTable(ScheduleTable):
    """The original cell-dict schedule table, byte-for-byte.

    Every method the interval index replaced is overridden here with
    its pre-optimisation body (including the inherited ``makespan``,
    which the fast table caches); accessors that only read
    ``_placements``/``_length`` are inherited unchanged.  The interval
    index structures initialised by the base constructor are simply
    never consulted.
    """

    def __init__(self, num_pes: int, length: int = 0, name: str = "schedule"):
        super().__init__(num_pes, length, name)
        self._cells: dict[tuple[int, int], Node] = {}

    @property
    def makespan(self) -> int:
        if not self._placements:
            return 0
        return max(p.finish for p in self._placements.values())

    def cell(self, pe: int, cs: int) -> Node | None:
        return self._cells.get((pe, cs))

    def place(
        self,
        node: Node,
        pe: int,
        start: int,
        duration: int,
        occupancy: int | None = None,
    ) -> Placement:
        if node in self._placements:
            raise ScheduleError(f"node {node!r} is already scheduled")
        if not (0 <= pe < self.num_pes):
            raise ScheduleError(f"PE {pe} outside 0..{self.num_pes - 1}")
        placement = Placement(node, pe, start, duration, occupancy)
        for cs in range(start, placement.busy_until + 1):
            occupant = self._cells.get((pe, cs))
            if occupant is not None:
                raise PlacementConflictError(
                    f"(pe{pe + 1}, cs{cs}) already holds {occupant!r}; "
                    f"cannot place {node!r}"
                )
        for cs in range(start, placement.busy_until + 1):
            self._cells[(pe, cs)] = node
        self._placements[node] = placement
        if placement.finish > self._length:
            self._length = placement.finish
        return placement

    def remove(self, node: Node) -> Placement:
        placement = self.placement(node)
        for cs in range(placement.start, placement.busy_until + 1):
            del self._cells[(placement.pe, cs)]
        del self._placements[node]
        return placement

    def shift_all(self, delta: int) -> None:
        if not self._placements and delta:
            self._length = max(0, self._length + delta)
            return
        moved = [p.shifted(delta) for p in self._placements.values()]
        self._placements = {}
        self._cells = {}
        self._length = max(0, self._length + delta)
        for p in moved:
            self.place(p.node, p.pe, p.start, p.duration, p.occupancy)

    def is_free(self, pe: int, start: int, duration: int) -> bool:
        if start < 1:
            return False
        return all(
            (pe, cs) not in self._cells for cs in range(start, start + duration)
        )

    def earliest_slot(
        self, pe: int, not_before: int, duration: int, horizon: int | None = None
    ) -> int | None:
        cs = max(1, not_before)
        limit = horizon if horizon is not None else max(self._length, cs) + duration
        while cs + duration - 1 <= limit:
            conflict = None
            for probe in range(cs, cs + duration):
                if (pe, probe) in self._cells:
                    conflict = probe
            if conflict is None:
                return cs
            cs = conflict + 1
        return None

    def free_slots(
        self, pe: int, not_before: int, duration: int, horizon: int
    ) -> Iterator[int]:
        # expressed through the reference earliest_slot so the naive
        # semantics stay authoritative even for fast-path callers
        cb = self.earliest_slot(pe, not_before, duration, horizon=horizon)
        while cb is not None:
            yield cb
            cb = self.earliest_slot(pe, cb + 1, duration, horizon=horizon)

    def first_row(self) -> list[Node]:
        starters = [p for p in self._placements.values() if p.start == 1]
        starters.sort(key=lambda p: p.pe)
        return [p.node for p in starters]

    def row(self, cs: int) -> list[tuple[int, Node]]:
        return sorted(
            ((pe, node) for (pe, c), node in self._cells.items() if c == cs),
        )

    def pe_tasks(self, pe: int) -> list[Placement]:
        return sorted(
            (p for p in self._placements.values() if p.pe == pe),
            key=lambda p: p.start,
        )

    def busy_cells(self, pe: int) -> int:
        return sum(1 for (p, _cs) in self._cells if p == pe)

    def copy(self, name: str | None = None) -> "ReferenceScheduleTable":
        clone = ReferenceScheduleTable(
            self.num_pes, self._length, name if name is not None else self.name
        )
        clone._placements = dict(self._placements)
        clone._cells = dict(self._cells)
        return clone


def reference_find_spot(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    node: Node,
    *,
    cap: int | None,
    pipelined_pes: bool = False,
    strategy: str = "implied",
    comm=None,  # accepted for signature compatibility; never cached here
) -> tuple[int, int, int] | None:
    """The original remapping slot search: per-slot ``arch.comm_cost``
    calls, no constraint-row hoisting, no zero-delay ceiling pruning."""
    base_time = graph.time(node)
    tail = max(schedule.length, schedule.makespan)

    in_constraints: list[tuple[int, int, int, int]] = []  # (src_pe, CE, dr, vol)
    out_constraints: list[tuple[int, int, int, int]] = []  # (dst_pe, CB, dr, vol)
    self_loops: list[int] = []
    for e in graph.in_edges(node):
        if e.src == node:
            self_loops.append(max(1, e.delay))
            continue
        if e.src in schedule:
            p = schedule.placement(e.src)
            in_constraints.append((p.pe, p.finish, e.delay, e.volume))
    for e in graph.out_edges(node):
        if e.dst == node or e.dst not in schedule:
            continue
        p = schedule.placement(e.dst)
        out_constraints.append((p.pe, p.start, e.delay, e.volume))

    first_fit = strategy == "first-fit"
    best: tuple[int, int, int, int, int] | None = None
    pes_scanned = 0
    slots_scanned = 0
    for pe in arch.processors:
        pes_scanned += 1
        duration = arch.execution_time(pe, base_time)
        occupancy = 1 if pipelined_pes else duration
        self_loop_bound = max(
            (-(-duration // d) for d in self_loops), default=0
        )
        floor = 1
        for src_pe, ce_u, dr, vol in in_constraints:
            if dr == 0:
                need = ce_u + arch.comm_cost(src_pe, pe, vol) + 1
                if need > floor:
                    floor = need
        horizon = cap if cap is not None else max(tail, floor) + duration
        cb = schedule.earliest_slot(pe, floor, occupancy, horizon=horizon)
        while cb is not None:
            slots_scanned += 1
            ce = cb + duration - 1
            implied = _implied_length(
                arch, pe, cb, ce, in_constraints, out_constraints
            )
            if implied is not None:
                implied = max(implied, ce, self_loop_bound)
                if cap is None or implied <= cap:
                    if first_fit:
                        key = (cb, ce, 0, pe, duration)
                    else:
                        key = (implied, ce, cb, pe, duration)
                    if best is None or key < best:
                        best = key
                    if first_fit or implied == ce:
                        break
            cb = schedule.earliest_slot(pe, cb + 1, occupancy, horizon=horizon)
    metrics.inc("remap.candidate_pes", pes_scanned)
    metrics.inc("remap.candidate_slots", slots_scanned)
    if best is None:
        return None
    if first_fit:
        return best[3], best[0], best[4]
    return best[3], best[2], best[4]


def reference_cyclo_compact(
    graph: CSDFG,
    arch: Architecture,
    *,
    config: CycloConfig | None = None,
    initial: ScheduleTable | None = None,
) -> CycloResult:
    """Run cyclo-compaction on the pre-optimisation engine.

    Forces ``fast_path=False`` (no comm-cost cache, no incremental PSL)
    and temporarily swaps in the reference table class and slot search.
    The swap covers the two construction/search sites the optimiser
    uses (``start_up_schedule`` and ``remap_nodes``); it is restored on
    exit, so concurrent use from other threads is not supported.
    """
    cfg = config if config is not None else CycloConfig()
    cfg = dataclasses.replace(cfg, fast_path=False)
    saved_table = _startup_mod.ScheduleTable
    saved_find = _remapping_mod._find_spot
    _startup_mod.ScheduleTable = ReferenceScheduleTable
    _remapping_mod._find_spot = reference_find_spot
    try:
        return cyclo_compact(graph, arch, config=cfg, initial=initial)
    finally:
        _startup_mod.ScheduleTable = saved_table
        _remapping_mod._find_spot = saved_find
