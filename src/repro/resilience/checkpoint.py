"""Checkpoint/resume of cyclo-compaction runs.

A :class:`CompactionCheckpoint` freezes everything an interrupted
optimiser needs to continue exactly where it stopped: the working
schedule and retiming, the best-so-far schedule and retiming, the
:class:`~repro.core.trace.CompactionTrace` so far, the stall counter,
and fingerprints of the (workload, architecture, config) triple.  The
payload is plain JSON, built on the existing
``CompactionTrace.to_dict`` / ``schedule_to_json`` round-trips, so a
deadline-killed run (``stop_reason == "deadline"``) can be persisted
and resumed in another process.

Because the optimiser is deterministic, a resumed run appends exactly
the passes the uninterrupted run would have produced — the acceptance
invariant ``resume(checkpoint(run_k), z) == run_z`` is checked in
``tests/unit/test_checkpoint_resume.py``.  Resuming against the wrong
graph, architecture or config raises
:class:`~repro.errors.CheckpointError` instead of silently diverging.

Node labels must be strings (the convention of every serializer in
this library — see :mod:`repro.schedule.io`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.core.cyclo import CycloResult, _LoopState, _run_passes
from repro.core.trace import CompactionTrace
from repro.errors import CheckpointError
from repro.graph.csdfg import CSDFG
from repro.obs import metrics, span
from repro.retiming.basic import apply_retiming
from repro.schedule.io import schedule_from_json, schedule_to_json

__all__ = ["CompactionCheckpoint", "resume_compaction"]

_FORMAT = "repro-compaction-checkpoint"
_VERSION = 1


@dataclass
class CompactionCheckpoint:
    """A paused compaction run, JSON round-trippable."""

    workload: str
    arch_name: str
    num_nodes: int
    num_pes: int
    config: CycloConfig
    completed_passes: int
    stall: int
    trace: CompactionTrace
    working_schedule: dict
    best_schedule: dict
    initial_schedule: dict
    working_retiming: dict[str, int]
    best_retiming: dict[str, int]

    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        result: CycloResult,
        graph: CSDFG,
        arch: Architecture,
        config: CycloConfig,
    ) -> "CompactionCheckpoint":
        """Checkpoint ``result`` of ``cyclo_compact(graph, arch,
        config=config)`` (typically a deadline-stopped run)."""
        if result.final_schedule is None or result.final_graph is None:
            raise CheckpointError(
                "result carries no final optimiser state; it was not "
                "produced by this library's cyclo_compact"
            )
        return cls(
            workload=graph.name,
            arch_name=arch.name,
            num_nodes=graph.num_nodes,
            num_pes=arch.num_pes,
            config=config,
            completed_passes=len(result.trace.records),
            stall=result.final_stall,
            trace=result.trace,
            working_schedule=schedule_to_json(result.final_schedule),
            best_schedule=schedule_to_json(result.schedule),
            initial_schedule=schedule_to_json(result.initial_schedule),
            working_retiming={
                str(v): r for v, r in result.final_retiming.items()
            },
            best_retiming={str(v): r for v, r in result.retiming.items()},
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": _FORMAT,
            "version": _VERSION,
            "workload": self.workload,
            "arch_name": self.arch_name,
            "num_nodes": self.num_nodes,
            "num_pes": self.num_pes,
            "config": self.config.to_dict(),
            "completed_passes": self.completed_passes,
            "stall": self.stall,
            "trace": self.trace.to_dict(),
            "working_schedule": self.working_schedule,
            "best_schedule": self.best_schedule,
            "initial_schedule": self.initial_schedule,
            "working_retiming": self.working_retiming,
            "best_retiming": self.best_retiming,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompactionCheckpoint":
        if data.get("format") != _FORMAT:
            raise CheckpointError(
                f"not a compaction checkpoint (format "
                f"{data.get('format')!r})"
            )
        if data.get("version") != _VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {data.get('version')!r}"
            )
        return cls(
            workload=data["workload"],
            arch_name=data["arch_name"],
            num_nodes=data["num_nodes"],
            num_pes=data["num_pes"],
            config=CycloConfig.from_dict(data["config"]),
            completed_passes=data["completed_passes"],
            stall=data["stall"],
            trace=CompactionTrace.from_dict(data["trace"]),
            working_schedule=data["working_schedule"],
            best_schedule=data["best_schedule"],
            initial_schedule=data["initial_schedule"],
            working_retiming=dict(data["working_retiming"]),
            best_retiming=dict(data["best_retiming"]),
        )

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "CompactionCheckpoint":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json(indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CompactionCheckpoint":
        return cls.from_json(Path(path).read_text())


def resume_compaction(
    graph: CSDFG,
    arch: Architecture,
    checkpoint: CompactionCheckpoint,
    *,
    config: CycloConfig | None = None,
) -> CycloResult:
    """Continue a checkpointed run of ``cyclo_compact(graph, arch)``.

    ``graph``/``arch`` must be the same workload and architecture the
    checkpoint was captured from (fingerprints are verified);
    ``config`` defaults to the checkpointed config *minus its
    deadline* — resuming with the deadline that killed the original
    run would stop again immediately.  Returns the same
    :class:`CycloResult` the uninterrupted run would have produced.
    """
    _verify(graph, arch, checkpoint)
    cfg = config if config is not None else CycloConfig.from_dict(
        {**checkpoint.config.to_dict(), "deadline_seconds": None}
    )

    try:
        working_retiming = {
            v: checkpoint.working_retiming[str(v)] for v in graph.nodes()
        }
        best_retiming = {
            v: checkpoint.best_retiming[str(v)] for v in graph.nodes()
        }
    except KeyError as missing:
        raise CheckpointError(
            f"checkpoint retiming is missing node {missing}; was it "
            f"captured from a different workload?"
        ) from None

    with span(
        "resume_compaction", workload=graph.name, arch=arch.name
    ) as sp:
        state = _LoopState(
            working=apply_retiming(graph, working_retiming),
            schedule=schedule_from_json(checkpoint.working_schedule),
            retiming=working_retiming,
            best_schedule=schedule_from_json(checkpoint.best_schedule),
            best_graph=apply_retiming(graph, best_retiming),
            best_retiming=best_retiming,
            initial_schedule=schedule_from_json(checkpoint.initial_schedule),
            trace=CompactionTrace(
                initial_length=checkpoint.trace.initial_length,
                records=list(checkpoint.trace.records),
            ),
            stall=checkpoint.stall,
            next_index=checkpoint.completed_passes + 1,
        )
        metrics.inc("cyclo.resumes")
        result = _run_passes(state, graph, arch, cfg)
        sp.add(
            resumed_at=checkpoint.completed_passes + 1,
            passes=len(result.trace.records),
            final_length=result.final_length,
        )
    return result


def _verify(
    graph: CSDFG, arch: Architecture, checkpoint: CompactionCheckpoint
) -> None:
    problems = []
    if graph.name != checkpoint.workload:
        problems.append(
            f"workload {graph.name!r} != checkpointed "
            f"{checkpoint.workload!r}"
        )
    if graph.num_nodes != checkpoint.num_nodes:
        problems.append(
            f"{graph.num_nodes} nodes != checkpointed {checkpoint.num_nodes}"
        )
    if arch.name != checkpoint.arch_name:
        problems.append(
            f"architecture {arch.name!r} != checkpointed "
            f"{checkpoint.arch_name!r}"
        )
    if arch.num_pes != checkpoint.num_pes:
        problems.append(
            f"{arch.num_pes} PEs != checkpointed {checkpoint.num_pes}"
        )
    if problems:
        raise CheckpointError("; ".join(problems))
