"""Degraded-topology schedule repair.

Given a legal schedule and a set of faults, repair proceeds locally
first: the tasks stranded on failed PEs are *evacuated* and re-placed
by the communication-sensitive remapping pass
(:func:`repro.core.remapping.remap_nodes`) onto the surviving PEs of a
:class:`~repro.arch.degraded.DegradedTopology`; edges re-routed over
longer surviving paths are absorbed by padding the schedule length to
:func:`~repro.schedule.validate.minimum_feasible_length`.  When a
zero-delay dependence cannot be padded away, the evacuation set grows
(the violated consumers join it) and the round repeats — a bounded
escalation, never a loop.

The repaired schedule is re-validated with ``collect_violations`` on
the degraded machine, so a repair can never *silently* hand back an
illegal schedule.  When local repair regresses past
``max_regression`` times the pre-fault length — or escalation exhausts
its rounds — a full :func:`~repro.core.cyclo.cyclo_compact`
re-optimisation on the degraded topology takes over; if even that
cannot produce a legal schedule the caller receives a typed
:class:`~repro.errors.InfeasibleScheduleError`.  A disconnected
surviving network raises
:class:`~repro.errors.DisconnectedTopologyError` before any repair is
attempted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.arch.cache import CommCostCache
from repro.arch.comm import ContentionModel
from repro.arch.contention import LinkOccupancy
from repro.arch.degraded import DegradedTopology
from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.core.cyclo import cyclo_compact
from repro.core.remapping import remap_nodes
from repro.errors import InfeasibleScheduleError, ReproError
from repro.graph.csdfg import CSDFG, Node
from repro.obs import metrics, span
from repro.resilience.faults import Fault, FaultCampaign, LinkFault, PEFault
from repro.schedule.table import ScheduleTable
from repro.schedule.validate import (
    collect_violations,
    minimum_feasible_length,
)

__all__ = ["RepairResult", "degrade", "repair_schedule"]


@dataclass
class RepairResult:
    """Outcome of one successful repair.

    Attributes
    ----------
    schedule:
        The repaired schedule, validated legal on ``degraded``.
    graph:
        The CSDFG ``schedule`` is legal for.  Local repair keeps the
        input graph; the full re-optimisation fallback returns the
        retimed graph :func:`~repro.core.cyclo.cyclo_compact` produced
        — callers must carry this graph forward, not the input one.
    degraded:
        The surviving topology the schedule is legal on.
    moved:
        ``node -> (pe, cb)`` for every task that changed placement.
    original_length:
        Pre-fault schedule length.
    repaired_length:
        Post-repair schedule length.
    strategy:
        ``"noop"`` (fault did not touch the schedule), ``"local"``
        (evacuate + remap), or ``"reoptimized"`` (full cyclo-compaction
        fallback).
    rounds:
        Evacuation rounds the local repair needed.
    comm:
        When repairing under a contention model, the contended
        :class:`CommCostCache` the repaired schedule was priced *and*
        validated against — the frozen occupancy snapshot the repair
        steered by, on the degraded machine, so rerouted hops carry
        the congestion surcharge of the traffic that shares the
        surviving links.  ``None`` for contention-free repairs.
    """

    schedule: ScheduleTable
    graph: CSDFG
    degraded: DegradedTopology
    moved: dict[Node, tuple[int, int]] = field(default_factory=dict)
    original_length: int = 0
    repaired_length: int = 0
    strategy: str = "local"
    rounds: int = 0
    comm: CommCostCache | None = None

    @property
    def regression(self) -> float:
        """Length regression ratio (1.0 == no regression)."""
        if self.original_length == 0:
            return 1.0
        return self.repaired_length / self.original_length


def degrade(
    arch: Architecture,
    faults: FaultCampaign | Iterable[Fault],
) -> DegradedTopology:
    """The surviving topology after every fault in ``faults``.

    Transient faults are treated as down (callers repairing mid-outage
    see the degraded machine; the simulator re-degrades on heal).
    Raises :class:`~repro.errors.DisconnectedTopologyError` when the
    survivors are split.
    """
    failed_pes = [f.pe for f in faults if isinstance(f, PEFault)]
    failed_links = [f.link for f in faults if isinstance(f, LinkFault)]
    if isinstance(arch, DegradedTopology):
        return arch.degrade(failed_pes=failed_pes, failed_links=failed_links)
    return DegradedTopology(
        arch, failed_pes=failed_pes, failed_links=failed_links
    )


def repair_schedule(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    faults: FaultCampaign | Iterable[Fault] | DegradedTopology,
    *,
    max_regression: float = 1.5,
    max_rounds: int = 4,
    pipelined_pes: bool = False,
    reoptimize_config: CycloConfig | None = None,
    contention: ContentionModel | None = None,
) -> RepairResult:
    """Repair ``schedule`` after ``faults``, or raise a typed error.

    ``faults`` may be a campaign/iterable of fault events or an
    already-built :class:`DegradedTopology`.  The result's schedule
    always passes ``collect_violations`` on the degraded machine —
    that check runs inside this function, unconditionally.

    With ``contention`` set, every legality check and remap prices
    communication through a contended cache whose link-occupancy
    snapshot is frozen from the surviving placements at the start of
    each repair round: hops rerouted around the failures are charged
    for the traffic that shares the surviving links, not the stale
    contention-free rows of the healthy machine.  The final validation
    runs under the same frozen cache the repair was priced with
    (returned as ``result.comm``) — the two-phase freeze-then-certify
    contract of ``contention_aware_schedule``.

    Raises
    ------
    DisconnectedTopologyError
        When the surviving network is split (before any repair).
    InfeasibleScheduleError
        When neither local repair nor full re-optimisation produces a
        legal schedule on the surviving machine.
    """
    if isinstance(faults, DegradedTopology):
        degraded = faults
    else:
        degraded = degrade(arch, faults)

    with span(
        "repair", workload=graph.name, arch=degraded.name
    ) as repair_span:
        result = _repair(
            graph,
            degraded,
            schedule,
            max_regression=max_regression,
            max_rounds=max_rounds,
            pipelined_pes=pipelined_pes,
            reoptimize_config=reoptimize_config,
            contention=contention,
        )
        metrics.inc("resilience.repair.calls")
        metrics.inc(f"resilience.repair.{result.strategy}")
        metrics.inc("resilience.repair.moved_nodes", len(result.moved))
        metrics.set_gauge(
            "resilience.repair.regression", round(result.regression, 4)
        )
        repair_span.add(
            strategy=result.strategy,
            moved=len(result.moved),
            length_before=result.original_length,
            length_after=result.repaired_length,
        )
    return result


def _repair(
    graph: CSDFG,
    degraded: DegradedTopology,
    schedule: ScheduleTable,
    *,
    max_regression: float,
    max_rounds: int,
    pipelined_pes: bool,
    reoptimize_config: CycloConfig | None,
    contention: ContentionModel | None = None,
) -> RepairResult:
    original_length = schedule.length
    local = _local_repair(
        graph,
        degraded,
        schedule,
        max_rounds=max_rounds,
        pipelined_pes=pipelined_pes,
        contention=contention,
    )
    if local is not None:
        local.original_length = original_length
        local.repaired_length = local.schedule.length
        if (
            original_length == 0
            or local.schedule.length <= max_regression * original_length
        ):
            return local
        # regressed past the threshold: try a full re-optimisation and
        # keep whichever schedule is shorter
        metrics.inc("resilience.repair.regression_fallbacks")

    reopt = _reoptimize(
        graph,
        degraded,
        pipelined_pes=pipelined_pes,
        config=reoptimize_config,
        contention=contention,
    )
    if reopt is None and local is None:
        raise InfeasibleScheduleError(
            f"no legal schedule for {graph.name!r} on {degraded.name!r}: "
            f"local repair failed after {max_rounds} round(s) and "
            f"re-optimisation found no legal schedule on the "
            f"{degraded.num_alive} surviving PE(s)"
        )
    if reopt is not None and (
        local is None or reopt[0].length < local.schedule.length
    ):
        reopt_schedule, reopt_graph, reopt_comm = reopt
        moved = {
            node: (
                reopt_schedule.placement(node).pe,
                reopt_schedule.placement(node).start,
            )
            for node in reopt_schedule.nodes()
            if node not in schedule
            or schedule.placement(node).pe
            != reopt_schedule.placement(node).pe
            or schedule.placement(node).start
            != reopt_schedule.placement(node).start
        }
        return RepairResult(
            schedule=reopt_schedule,
            graph=reopt_graph,
            degraded=degraded,
            moved=moved,
            original_length=original_length,
            repaired_length=reopt_schedule.length,
            strategy="reoptimized",
            comm=reopt_comm,
        )
    assert local is not None
    return local


def _contended_cache(
    graph: CSDFG,
    degraded: DegradedTopology,
    schedule: ScheduleTable,
    contention: ContentionModel | None,
) -> CommCostCache | None:
    """Contended pricing frozen from the schedule's current placements.

    Only survivors count: nodes stranded on dead PEs (or not placed at
    all) contribute no occupancy — their traffic is exactly what the
    repair is about to move.  ``None`` when repairing contention-free.
    """
    if contention is None:
        return None
    assignment = {}
    for node in schedule.nodes():
        pe = schedule.placement(node).pe
        if pe < degraded.num_pes and degraded.is_alive(pe):
            assignment[node] = pe
    occupancy = LinkOccupancy.from_assignment(graph, degraded, assignment)
    return CommCostCache.for_graph(
        degraded, graph, contention=contention, occupancy=occupancy
    )


def _local_repair(
    graph: CSDFG,
    degraded: DegradedTopology,
    schedule: ScheduleTable,
    *,
    max_rounds: int,
    pipelined_pes: bool,
    contention: ContentionModel | None = None,
) -> RepairResult | None:
    """Evacuate-and-remap repair; ``None`` when escalation gives up."""
    repaired = schedule.copy(name=f"{schedule.name}:repaired")
    stranded: set[Node] = {
        node
        for node in repaired.nodes()
        if repaired.placement(node).pe >= degraded.num_pes
        or not degraded.is_alive(repaired.placement(node).pe)
    }
    comm = _contended_cache(graph, degraded, repaired, contention)
    broken = _violated_edges(
        graph, degraded, repaired, pipelined_pes=pipelined_pes, comm=comm
    )
    # zero-delay edges broken by re-routing cannot be padded away: their
    # consumers must move too; delayed edges pad via the implied length
    evacuate = stranded | {e.dst for e in broken if e.delay == 0}
    if not evacuate and not broken:
        # the fault missed this schedule entirely (e.g. an unused link)
        if collect_violations(
            graph, degraded, repaired, pipelined_pes=pipelined_pes, comm=comm
        ):  # pragma: no cover - defensive, _violated_edges covers edges
            return None
        return RepairResult(
            schedule=repaired,
            graph=graph,
            degraded=degraded,
            strategy="noop",
            comm=comm,
        )

    moved: dict[Node, tuple[int, int]] = {}
    for round_index in range(1, max_rounds + 1):
        for node in evacuate:
            if node in repaired:
                repaired.remove(node)
        # price the remap against the survivors' occupancy: the
        # evacuees are unplaced, so their traffic no longer pins the
        # links it used before the fault
        comm = _contended_cache(graph, degraded, repaired, contention)
        outcome = remap_nodes(
            graph,
            degraded,
            repaired,
            sorted(evacuate, key=str),
            previous_length=max(repaired.length, 1),
            relaxation=True,
            pipelined_pes=pipelined_pes,
            comm=comm,
        )
        if not outcome.accepted:
            # some evacuated node has no admissible slot against its
            # still-placed zero-delay neighbours: evacuate those too
            grown = _grow_evacuation(graph, repaired, evacuate)
            if grown == evacuate:
                metrics.inc("resilience.repair.local_failures")
                return None
            evacuate = grown
            continue
        moved.update(outcome.placements)

        # legality is certified under the same frozen snapshot the
        # remap was priced with (the two-phase contract): re-freezing
        # from the post-remap placements could demand a schedule that
        # accommodates congestion it was never charged for, which is
        # unsatisfiable when a zero-delay edge crosses a link the
        # repair itself loaded
        bad_edges = _violated_edges(
            graph, degraded, repaired, pipelined_pes=pipelined_pes, comm=comm
        )
        if bad_edges:
            # delayed-edge violations pad away; zero-delay ones cannot
            feasible_length = minimum_feasible_length(
                graph, degraded, repaired, pipelined_pes=pipelined_pes,
                comm=comm,
            )
            if feasible_length is not None:
                repaired.set_length(max(feasible_length, repaired.length))
                bad_edges = _violated_edges(
                    graph, degraded, repaired, pipelined_pes=pipelined_pes,
                    comm=comm,
                )
        if bad_edges:
            evacuate = evacuate | {e.dst for e in bad_edges}
            continue

        violations = collect_violations(
            graph, degraded, repaired, pipelined_pes=pipelined_pes, comm=comm
        )
        if violations:
            metrics.inc("resilience.repair.local_failures")
            return None
        return RepairResult(
            schedule=repaired,
            graph=graph,
            degraded=degraded,
            moved=moved,
            strategy="local",
            rounds=round_index,
            comm=comm,
        )
    metrics.inc("resilience.repair.local_failures")
    return None


def _grow_evacuation(
    graph: CSDFG, schedule: ScheduleTable, evacuate: set[Node]
) -> set[Node]:
    """Evacuation set plus the placed zero-delay neighbours of its
    members (the constraints that pinned the failed remap)."""
    grown = set(evacuate)
    for node in evacuate:
        for e in graph.out_edges(node):
            if e.delay == 0 and e.dst in schedule:
                grown.add(e.dst)
        for e in graph.in_edges(node):
            if e.delay == 0 and e.src in schedule:
                grown.add(e.src)
    return grown


def _violated_edges(
    graph: CSDFG,
    degraded: DegradedTopology,
    schedule: ScheduleTable,
    *,
    pipelined_pes: bool = False,
    comm: CommCostCache | None = None,
) -> list:
    """Edges whose dependence inequality fails on ``degraded`` (both
    endpoints placed on alive PEs; others are someone else's problem).
    ``comm`` overrides the pricing (contended repair rounds pass the
    re-frozen cache; the default is the contention-free cost)."""
    del pipelined_pes  # the dependence rule is identical for pipelined PEs
    cost = comm.cost if comm is not None else degraded.comm_cost
    bad = []
    L = schedule.length
    for edge in graph.edges():
        if edge.src not in schedule or edge.dst not in schedule:
            continue
        pu = schedule.placement(edge.src)
        pv = schedule.placement(edge.dst)
        if not (
            pu.pe < degraded.num_pes
            and pv.pe < degraded.num_pes
            and degraded.is_alive(pu.pe)
            and degraded.is_alive(pv.pe)
        ):
            continue
        M = cost(pu.pe, pv.pe, edge.volume)
        if pv.start + edge.delay * L < pu.finish + M + 1:
            bad.append(edge)
    return bad


def _reoptimize(
    graph: CSDFG,
    degraded: DegradedTopology,
    *,
    pipelined_pes: bool,
    config: CycloConfig | None,
    contention: ContentionModel | None = None,
) -> tuple[ScheduleTable, CSDFG, CommCostCache | None] | None:
    """From-scratch cyclo-compaction on the surviving machine as
    ``(schedule, matching retimed graph, contended cache)``, or
    ``None`` when it cannot produce a legal schedule.

    Under contention this is the two-phase flow in miniature: a blind
    compaction seeds a frozen occupancy snapshot, a second compaction
    runs under the surcharged cache, and the result is certified
    against that same cache (delayed-edge shortfalls are absorbed by
    padding to the contended :func:`minimum_feasible_length`)."""
    cfg = config if config is not None else CycloConfig(
        pipelined_pes=pipelined_pes, validate_each_step=False
    )
    try:
        result = cyclo_compact(graph, degraded, config=cfg)
    except ReproError:
        metrics.inc("resilience.repair.reoptimize_failures")
        return None
    schedule = result.schedule
    comm = _contended_cache(result.graph, degraded, schedule, contention)
    if comm is not None:
        # two-phase: freeze the blind run's occupancy, then compact
        # again under the surcharged prices — the engine schedules
        # against the contended cache, so the result is legal under it
        # by construction
        try:
            aware = cyclo_compact(graph, degraded, config=cfg, comm=comm)
        except ReproError:
            metrics.inc("resilience.repair.reoptimize_failures")
            return None
        result = aware
        schedule = aware.schedule
        if collect_violations(
            result.graph, degraded, schedule,
            pipelined_pes=cfg.pipelined_pes, comm=comm,
        ):
            # delayed-edge shortfall under the carried prices: pad
            feasible = minimum_feasible_length(
                result.graph, degraded, schedule,
                pipelined_pes=cfg.pipelined_pes, comm=comm,
            )
            if feasible is None:
                metrics.inc("resilience.repair.reoptimize_failures")
                return None
            schedule = schedule.copy()
            schedule.set_length(max(feasible, schedule.length))
    if collect_violations(
        result.graph, degraded, schedule,
        pipelined_pes=cfg.pipelined_pes, comm=comm,
    ):
        metrics.inc("resilience.repair.reoptimize_failures")
        return None
    return schedule, result.graph, comm
