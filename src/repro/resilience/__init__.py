"""``repro.resilience`` — fault injection, schedule repair, chaos.

The paper's schedules are *architecture-dependent*: when the
architecture degrades (a PE dies, a link is cut) the static schedule is
invalid and must be remapped.  This package closes that loop:

* **fault model** (:mod:`repro.resilience.faults`) — typed
  :class:`PEFault` / :class:`LinkFault` events, permanent or transient,
  grouped into deterministic seeded :class:`FaultCampaign` s;
* **schedule repair** (:mod:`repro.resilience.repair`) — evacuate
  tasks hit by a fault and re-place them with the
  communication-sensitive remapping pass on the surviving PEs
  (:class:`~repro.arch.degraded.DegradedTopology`), falling back to a
  full re-optimisation when local repair regresses too far;
* **checkpoint/resume** (:mod:`repro.resilience.checkpoint`) —
  JSON round-trip of an interrupted compaction run, verified replay on
  resume;
* **fault-injecting simulator** (:mod:`repro.resilience.simfault`) —
  executes a schedule while a campaign kills PEs/links mid-run,
  repairing at iteration boundaries under a progress watchdog;
* **chaos harness** (:mod:`repro.resilience.chaos`) — randomized
  campaigns over the workload/topology registries asserting the
  invariant: *every run ends in a validated-legal degraded schedule or
  a typed error — never a silent corrupt schedule or a hang*.

See ``docs/resilience.md``.
"""

from repro.resilience.chaos import ChaosReport, ChaosTrial, run_chaos_campaign
from repro.resilience.checkpoint import (
    CompactionCheckpoint,
    resume_compaction,
)
from repro.resilience.faults import (
    FaultCampaign,
    LinkFault,
    PEFault,
    random_campaign,
)
from repro.resilience.repair import RepairResult, degrade, repair_schedule
from repro.resilience.simfault import (
    FaultOutcome,
    FaultSimulationResult,
    simulate_with_faults,
)

__all__ = [
    "ChaosReport",
    "ChaosTrial",
    "CompactionCheckpoint",
    "FaultCampaign",
    "FaultOutcome",
    "FaultSimulationResult",
    "LinkFault",
    "PEFault",
    "RepairResult",
    "degrade",
    "random_campaign",
    "repair_schedule",
    "resume_compaction",
    "run_chaos_campaign",
    "simulate_with_faults",
]
