"""Typed fault events and deterministic seeded fault campaigns.

A fault names the hardware it kills (:class:`PEFault` a processor,
:class:`LinkFault` an undirected link), when it strikes (``at_step``, a
global control step of the simulated execution), and for how long
(``duration=None`` means permanent; a transient fault heals after
``duration`` control steps).  A :class:`FaultCampaign` is an ordered,
JSON round-trippable list of faults — the unit consumed by the repair
engine, the fault-injecting simulator and the chaos harness.

Campaigns are *deterministic*: :func:`random_campaign` derives every
choice from a seed, so a failing campaign can be replayed bit-for-bit
from its seed alone.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.arch.topology import Architecture
from repro.errors import ArchitectureError

__all__ = ["PEFault", "LinkFault", "FaultCampaign", "random_campaign"]


@dataclass(frozen=True)
class PEFault:
    """Processor ``pe`` stops executing at control step ``at_step``.

    ``duration=None`` is a permanent (fail-stop) fault; otherwise the
    PE returns to service ``duration`` control steps later.
    """

    pe: int
    at_step: int = 1
    duration: int | None = None

    def __post_init__(self) -> None:
        if self.pe < 0:
            raise ArchitectureError(f"negative PE id {self.pe}")
        if self.at_step < 1:
            raise ArchitectureError(
                f"faults strike at control step >= 1, got {self.at_step}"
            )
        if self.duration is not None and self.duration < 1:
            raise ArchitectureError(
                f"transient duration must be >= 1, got {self.duration}"
            )

    @property
    def permanent(self) -> bool:
        return self.duration is None

    def describe(self) -> str:
        kind = "permanent" if self.permanent else f"{self.duration}-step"
        return f"{kind} failure of pe{self.pe + 1} at cs {self.at_step}"

    def to_dict(self) -> dict:
        return {
            "kind": "pe",
            "pe": self.pe,
            "at_step": self.at_step,
            "duration": self.duration,
        }


@dataclass(frozen=True)
class LinkFault:
    """Undirected link ``(a, b)`` goes down at control step ``at_step``."""

    a: int
    b: int
    at_step: int = 1
    duration: int | None = None

    def __post_init__(self) -> None:
        if self.a < 0 or self.b < 0 or self.a == self.b:
            raise ArchitectureError(f"bad link ({self.a}, {self.b})")
        if self.a > self.b:  # canonical a < b, matching Architecture.links
            a, b = self.a, self.b
            object.__setattr__(self, "a", b)
            object.__setattr__(self, "b", a)
        if self.at_step < 1:
            raise ArchitectureError(
                f"faults strike at control step >= 1, got {self.at_step}"
            )
        if self.duration is not None and self.duration < 1:
            raise ArchitectureError(
                f"transient duration must be >= 1, got {self.duration}"
            )

    @property
    def link(self) -> tuple[int, int]:
        return (self.a, self.b)

    @property
    def permanent(self) -> bool:
        return self.duration is None

    def describe(self) -> str:
        kind = "permanent" if self.permanent else f"{self.duration}-step"
        return (
            f"{kind} failure of link pe{self.a + 1}-pe{self.b + 1} "
            f"at cs {self.at_step}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": "link",
            "a": self.a,
            "b": self.b,
            "at_step": self.at_step,
            "duration": self.duration,
        }


Fault = PEFault | LinkFault


@dataclass
class FaultCampaign:
    """An ordered list of faults plus the seed that produced it."""

    faults: list[Fault] = field(default_factory=list)
    seed: int | None = None
    name: str = "campaign"

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def ordered(self) -> list[Fault]:
        """Faults by strike time (stable for equal times)."""
        return sorted(self.faults, key=lambda f: f.at_step)

    def pe_faults(self) -> list[PEFault]:
        return [f for f in self.faults if isinstance(f, PEFault)]

    def link_faults(self) -> list[LinkFault]:
        return [f for f in self.faults if isinstance(f, LinkFault)]

    def describe(self) -> str:
        head = f"campaign {self.name!r}"
        if self.seed is not None:
            head += f" (seed {self.seed})"
        if not self.faults:
            return head + ": no faults"
        lines = [head + ":"]
        for fault in self.ordered():
            lines.append(f"  - {fault.describe()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultCampaign":
        faults: list[Fault] = []
        for f in data.get("faults", []):
            if f["kind"] == "pe":
                faults.append(
                    PEFault(f["pe"], f["at_step"], f.get("duration"))
                )
            elif f["kind"] == "link":
                faults.append(
                    LinkFault(f["a"], f["b"], f["at_step"], f.get("duration"))
                )
            else:
                raise ArchitectureError(f"unknown fault kind {f['kind']!r}")
        return cls(
            faults=faults,
            seed=data.get("seed"),
            name=data.get("name", "campaign"),
        )

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FaultCampaign":
        return cls.from_dict(json.loads(text))


def random_campaign(
    arch: Architecture,
    *,
    seed: int,
    num_faults: int = 1,
    horizon: int = 50,
    link_fraction: float = 0.5,
    transient_fraction: float = 0.0,
    name: str | None = None,
) -> FaultCampaign:
    """A deterministic seeded campaign against ``arch``.

    Never kills the last surviving PE; faults may still disconnect the
    network (that is the point — the repair layer must turn it into a
    typed error).  ``link_fraction`` of the faults target links,
    ``transient_fraction`` are transient with a random duration.
    """
    if num_faults < 0:
        raise ArchitectureError(f"num_faults must be >= 0, got {num_faults}")
    rng = random.Random(seed)
    faults: list[Fault] = []
    alive = [pe for pe in arch.processors]
    links = list(arch.links)
    for _ in range(num_faults):
        at_step = rng.randint(1, max(1, horizon))
        duration = None
        if transient_fraction > 0 and rng.random() < transient_fraction:
            duration = rng.randint(1, max(1, horizon // 2))
        want_link = links and rng.random() < link_fraction
        if want_link:
            a, b = rng.choice(links)
            faults.append(LinkFault(a, b, at_step, duration))
            links.remove((min(a, b), max(a, b)))
        elif len(alive) > 1:
            pe = rng.choice(alive)
            faults.append(PEFault(pe, at_step, duration))
            alive.remove(pe)
            links = [l for l in links if pe not in l]
        # else: one PE left and no links to cut — campaign saturates
    return FaultCampaign(
        faults=faults,
        seed=seed,
        name=name if name is not None else f"random-{arch.name}-s{seed}",
    )
