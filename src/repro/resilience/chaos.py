"""Randomized chaos harness over the resilience stack.

Runs many seeded trials, each: build a (workload, topology) pair, take
a legal start-up schedule, generate a deterministic random fault
campaign against it, and execute under fault injection
(:func:`~repro.resilience.simfault.simulate_with_faults`).  The
harness asserts the subsystem's core invariant on every trial:

    every run ends in a validated-legal schedule on the surviving
    topology, or in a typed error — never a silent corrupt schedule
    and never a hang.

Accepted typed endings are
:class:`~repro.errors.DisconnectedTopologyError`,
:class:`~repro.errors.InfeasibleScheduleError` and
:class:`~repro.errors.StallDetectedError`.  Anything else — an
unexpected exception, or a "completed" run whose final schedule fails
``collect_violations`` — is an invariant breach and flips
``ChaosReport.invariant_holds``.

Trials are reproducible: a trial is fully determined by
``(seed, index)``, so a breach can be replayed in isolation with
:func:`run_chaos_trial`.
"""

from __future__ import annotations

import random
import time
import traceback
from dataclasses import dataclass, field

from repro.arch.registry import make_architecture
from repro.core.startup import start_up_schedule
from repro.errors import (
    DisconnectedTopologyError,
    InfeasibleScheduleError,
    StallDetectedError,
)
from repro.obs import metrics, span
from repro.resilience.faults import random_campaign
from repro.resilience.simfault import simulate_with_faults
from repro.schedule.validate import collect_violations
from repro.workloads.registry import make_workload

__all__ = [
    "ChaosReport",
    "ChaosTrial",
    "run_chaos_campaign",
    "run_chaos_trial",
]

# topology kinds valid at any even PE count >= 4 used by the harness
DEFAULT_TOPOLOGIES = ("linear", "ring", "mesh", "hypercube")
DEFAULT_WORKLOADS = ("figure1", "biquad2", "diffeq")

# outcomes that satisfy the invariant
_TYPED_ENDINGS = {
    DisconnectedTopologyError: "disconnected",
    InfeasibleScheduleError: "infeasible",
    StallDetectedError: "stalled",
}


@dataclass
class ChaosTrial:
    """One seeded trial and how it ended.

    ``outcome`` is ``"survived"`` (all iterations completed on a
    validated schedule), a typed ending (``"disconnected"``,
    ``"infeasible"``, ``"stalled"``) — all of which satisfy the
    invariant — or a breach: ``"illegal"`` (a run completed on a
    schedule that fails validation) / ``"unexpected"`` (an untyped
    exception escaped).
    """

    index: int
    seed: int
    topology: str
    workload: str
    num_faults: int
    outcome: str
    campaign: dict = field(default_factory=dict)
    iterations: int = 0
    makespan: int = 0
    reconfigurations: int = 0
    regression: float = 1.0
    elapsed_seconds: float = 0.0
    error: str = ""

    @property
    def invariant_holds(self) -> bool:
        return self.outcome not in ("illegal", "unexpected")

    def describe(self) -> str:
        head = (
            f"trial {self.index} (seed {self.seed}): {self.workload} on "
            f"{self.topology}, {self.num_faults} fault(s) -> {self.outcome}"
        )
        if self.outcome == "survived":
            head += (
                f" ({self.iterations} iteration(s), "
                f"{self.reconfigurations} reconfiguration(s), "
                f"regression {self.regression:.2f}x)"
            )
        elif self.error:
            head += f" ({self.error.splitlines()[0]})"
        return head


@dataclass
class ChaosReport:
    """Aggregate of a chaos campaign."""

    seed: int
    trials: list[ChaosTrial] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def invariant_holds(self) -> bool:
        return all(t.invariant_holds for t in self.trials)

    @property
    def breaches(self) -> list[ChaosTrial]:
        return [t for t in self.trials if not t.invariant_holds]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for t in self.trials:
            out[t.outcome] = out.get(t.outcome, 0) + 1
        return dict(sorted(out.items()))

    def trial_seconds_percentile(self, q: float) -> float:
        """Nearest-rank percentile of per-trial wall-clock seconds."""
        if not self.trials:
            return 0.0
        if not 0 < q <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        ordered = sorted(t.elapsed_seconds for t in self.trials)
        rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def describe(self) -> str:
        verdict = "INVARIANT HOLDS" if self.invariant_holds else "BREACHED"
        lines = [
            f"chaos campaign (seed {self.seed}): {len(self.trials)} "
            f"trial(s) in {self.elapsed_seconds:.1f}s — {verdict}",
            "  outcomes: "
            + ", ".join(f"{k}={v}" for k, v in self.counts().items()),
        ]
        if self.trials:
            lines.append(
                "  trial wall-clock: "
                f"p50={self.trial_seconds_percentile(50) * 1000:.1f}ms, "
                f"p95={self.trial_seconds_percentile(95) * 1000:.1f}ms"
            )
        for t in self.breaches:
            lines.append("  BREACH " + t.describe())
            if t.error:
                lines.extend("    " + line for line in t.error.splitlines())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "trials": len(self.trials),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "invariant_holds": self.invariant_holds,
            "outcomes": self.counts(),
            "trial_seconds_p50": round(self.trial_seconds_percentile(50), 4),
            "trial_seconds_p95": round(self.trial_seconds_percentile(95), 4),
            "breaches": [t.describe() for t in self.breaches],
        }


def run_chaos_trial(
    seed: int,
    index: int,
    *,
    topologies: tuple[str, ...] = DEFAULT_TOPOLOGIES,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    num_pes: int = 8,
    iterations: int = 4,
    max_faults: int = 3,
    transient_fraction: float = 0.25,
) -> ChaosTrial:
    """Run the single trial ``(seed, index)`` deterministically."""
    trial_seed = seed * 1_000_003 + index
    rng = random.Random(trial_seed)
    topology = topologies[index % len(topologies)]
    workload = workloads[(index // len(topologies)) % len(workloads)]

    graph = make_workload(workload)
    arch = make_architecture(topology, num_pes)
    schedule = start_up_schedule(graph, arch)
    campaign = random_campaign(
        arch,
        seed=trial_seed,
        num_faults=rng.randint(1, max_faults),
        horizon=max(1, schedule.length * (iterations - 1)),
        link_fraction=0.5,
        transient_fraction=transient_fraction,
        name=f"chaos-{index}",
    )

    started = time.monotonic()
    trial = ChaosTrial(
        index=index,
        seed=trial_seed,
        topology=topology,
        workload=workload,
        num_faults=len(campaign),
        outcome="survived",
        campaign=campaign.to_dict(),
    )
    try:
        result = simulate_with_faults(
            graph, arch, schedule, iterations, campaign
        )
    except tuple(_TYPED_ENDINGS) as exc:
        trial.outcome = next(
            label
            for klass, label in _TYPED_ENDINGS.items()
            if isinstance(exc, klass)
        )
        trial.error = str(exc)
    except Exception:
        trial.outcome = "unexpected"
        trial.error = traceback.format_exc()
    else:
        trial.iterations = result.iterations
        trial.makespan = result.makespan
        trial.reconfigurations = result.reconfigurations
        final_length = (
            result.final_schedule.length if result.final_schedule else 0
        )
        if schedule.length:
            trial.regression = final_length / schedule.length
        # the invariant's teeth: re-validate the final schedule here,
        # independently of the simulator's own checks
        violations = collect_violations(
            result.final_graph, result.final_topology, result.final_schedule
        )
        if violations:
            trial.outcome = "illegal"
            trial.error = "; ".join(violations)
    trial.elapsed_seconds = time.monotonic() - started
    metrics.observe("resilience.chaos.trial_seconds", trial.elapsed_seconds)
    return trial


def _trial_task(params: tuple) -> ChaosTrial:
    """Picklable per-trial worker for the parallel campaign driver."""
    (
        seed,
        index,
        topologies,
        workloads,
        num_pes,
        iterations,
        max_faults,
        transient_fraction,
    ) = params
    return run_chaos_trial(
        seed,
        index,
        topologies=topologies,
        workloads=workloads,
        num_pes=num_pes,
        iterations=iterations,
        max_faults=max_faults,
        transient_fraction=transient_fraction,
    )


def run_chaos_campaign(
    *,
    trials: int = 50,
    seed: int = 0,
    topologies: tuple[str, ...] = DEFAULT_TOPOLOGIES,
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    num_pes: int = 8,
    iterations: int = 4,
    max_faults: int = 3,
    transient_fraction: float = 0.25,
    time_budget_seconds: float | None = None,
    jobs: int = 1,
) -> ChaosReport:
    """Run ``trials`` seeded chaos trials and aggregate the outcomes.

    ``time_budget_seconds`` stops launching new trials once the budget
    is spent (for CI smoke jobs); the trials that did run are still a
    deterministic prefix of the full campaign.  With ``jobs > 1`` the
    trials run on a process pool (each trial is fully determined by
    ``(seed, index)``, so the outcomes are identical to a serial run);
    worker-side metrics are merged back into this process.
    """
    from repro.perf.parallel import run_parallel

    started = time.monotonic()
    report = ChaosReport(seed=seed)
    with span("chaos_campaign", seed=seed, trials=trials, jobs=jobs) as sp:
        params = [
            (
                seed,
                index,
                topologies,
                workloads,
                num_pes,
                iterations,
                max_faults,
                transient_fraction,
            )
            for index in range(trials)
        ]
        ran = run_parallel(
            _trial_task,
            params,
            jobs=jobs,
            time_budget_seconds=time_budget_seconds,
        )
        if len(ran) < trials:
            metrics.inc("resilience.chaos.budget_stops")
        for trial in ran:
            report.trials.append(trial)
            metrics.inc("resilience.chaos.trials")
            metrics.inc(f"resilience.chaos.outcome.{trial.outcome}")
        report.elapsed_seconds = time.monotonic() - started
        sp.add(
            ran=len(report.trials),
            invariant_holds=report.invariant_holds,
        )
    return report
