"""Fault-injecting execution of static cyclic schedules.

Executes a schedule iteration by iteration while a
:class:`~repro.resilience.faults.FaultCampaign` kills PEs and links
mid-run.  Reconfiguration is *drain-and-switch* (the standard model for
checkpointed streaming reconfiguration): a fault whose strike step
falls inside iteration ``j`` lets iteration ``j`` drain, then the
machine degrades, the schedule is repaired on the surviving topology
(:func:`~repro.resilience.repair.repair_schedule`), and iteration
``j + 1`` launches on the repaired schedule.  Transient faults heal at
``at_step + duration`` — the healed topology is rebuilt from the
remaining active faults and the current schedule (still legal: more
hardware never lengthens a route) keeps running.

Every reconfiguration is re-validated, so the execution can only end in
one of two ways — the invariant the chaos harness asserts:

* all requested iterations completed, each on a schedule that passed
  ``collect_violations`` for its topology, or
* a typed error: :class:`~repro.errors.DisconnectedTopologyError`,
  :class:`~repro.errors.InfeasibleScheduleError`, or
  :class:`~repro.errors.StallDetectedError` from the progress watchdog
  (which fires when reconfigurations stop advancing the iteration
  clock).

Per-fault outcomes are published to the :mod:`repro.obs` metrics
registry (``resilience.sim.*``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.errors import (
    DisconnectedTopologyError,
    InfeasibleScheduleError,
    StallDetectedError,
)
from repro.graph.csdfg import CSDFG
from repro.obs import metrics, span
from repro.resilience.faults import Fault, FaultCampaign
from repro.resilience.repair import degrade, repair_schedule
from repro.schedule.table import ScheduleTable
from repro.schedule.validate import collect_violations
from repro.sim.engine import SimulationError

__all__ = ["FaultOutcome", "FaultSimulationResult", "simulate_with_faults"]


@dataclass(frozen=True)
class FaultOutcome:
    """What happened when one fault event was applied (or healed).

    ``event`` is ``"strike"`` or ``"heal"``; ``outcome`` is the repair
    strategy (``"noop"``, ``"local"``, ``"reoptimized"``, ``"healed"``)
    or the typed failure (``"disconnected"``, ``"infeasible"``).
    """

    fault: Fault
    event: str
    at_iteration: int
    outcome: str
    length_before: int
    length_after: int
    moved: int = 0
    detail: str = ""


@dataclass
class FaultSimulationResult:
    """Execution record of a faulted run.

    ``segments`` lists ``(iterations, schedule_length)`` runs between
    reconfigurations; their dot product is the makespan.
    """

    outcomes: list[FaultOutcome] = field(default_factory=list)
    segments: list[tuple[int, int]] = field(default_factory=list)
    iterations: int = 0
    requested_iterations: int = 0
    final_schedule: ScheduleTable | None = None
    final_graph: CSDFG | None = None
    final_topology: Architecture | None = None

    @property
    def makespan(self) -> int:
        return sum(n * length for n, length in self.segments)

    @property
    def reconfigurations(self) -> int:
        return sum(1 for o in self.outcomes if o.outcome != "noop")

    def throughput(self) -> float:
        if self.makespan == 0:
            return 0.0
        return self.iterations / self.makespan

    def describe(self) -> str:
        lines = [
            f"{self.iterations}/{self.requested_iterations} iterations, "
            f"makespan {self.makespan} cs, "
            f"{self.reconfigurations} reconfiguration(s)"
        ]
        for o in self.outcomes:
            arrow = (
                f"L {o.length_before} -> {o.length_after}"
                if o.length_after
                else "no schedule"
            )
            lines.append(
                f"  [iter {o.at_iteration}] {o.fault.describe()} "
                f"({o.event}): {o.outcome}, {arrow}"
                + (f", moved {o.moved} task(s)" if o.moved else "")
            )
        return "\n".join(lines)


def simulate_with_faults(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    iterations: int,
    campaign: FaultCampaign,
    *,
    max_regression: float = 1.5,
    reoptimize_config: CycloConfig | None = None,
    pipelined_pes: bool = False,
    watchdog_limit: int | None = None,
) -> FaultSimulationResult:
    """Run ``iterations`` loop iterations under ``campaign``.

    Returns the full execution record, or raises the typed error that
    ended the run (after recording its outcome in the metrics
    registry).  ``watchdog_limit`` bounds the number of consecutive
    reconfigurations allowed without completing an iteration (default:
    ``3 * (len(campaign) + 1)``).
    """
    if iterations < 1:
        raise SimulationError(f"iterations must be >= 1, got {iterations}")
    if watchdog_limit is None:
        watchdog_limit = 3 * (len(campaign) + 1)

    with span(
        "simulate_faults",
        workload=graph.name,
        arch=arch.name,
        faults=len(campaign),
    ) as sim_span:
        result = _run(
            graph,
            arch,
            schedule,
            iterations,
            campaign,
            max_regression=max_regression,
            reoptimize_config=reoptimize_config,
            pipelined_pes=pipelined_pes,
            watchdog_limit=watchdog_limit,
        )
        sim_span.add(
            iterations=result.iterations,
            makespan=result.makespan,
            reconfigurations=result.reconfigurations,
        )
    return result


def _record(result: FaultSimulationResult, outcome: FaultOutcome) -> None:
    result.outcomes.append(outcome)
    metrics.inc("resilience.sim.fault_events")
    metrics.inc(f"resilience.sim.outcome.{outcome.outcome}")
    if outcome.length_before:
        metrics.set_gauge(
            "resilience.sim.last_regression",
            round(outcome.length_after / outcome.length_before, 4),
        )


def _run(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    iterations: int,
    campaign: FaultCampaign,
    *,
    max_regression: float,
    reoptimize_config: CycloConfig | None,
    pipelined_pes: bool,
    watchdog_limit: int,
) -> FaultSimulationResult:
    result = FaultSimulationResult(requested_iterations=iterations)
    current_graph = graph
    current_schedule = schedule
    current_arch: Architecture = arch

    pending: list[Fault] = campaign.ordered()
    active: list[Fault] = []  # struck and not yet healed
    heal_at: dict[Fault, int] = {}

    now = 0  # global control step clock
    completed = 0
    segment_iters = 0
    stalls = 0  # reconfigurations since the last completed iteration

    def close_segment() -> None:
        nonlocal segment_iters
        if segment_iters:
            result.segments.append((segment_iters, current_schedule.length))
            segment_iters = 0

    while completed < iterations:
        # 1. apply every fault event due by `now` ----------------------
        due = [f for f in pending if f.at_step <= now] or (
            # time between events is quantised to iteration boundaries;
            # if nothing is due yet but the next iteration would cross a
            # strike step, the fault lands at this boundary (drain model)
            [
                f
                for f in pending
                if f.at_step <= now + current_schedule.length
            ]
            if pending
            else []
        )
        heals = [f for f in active if f in heal_at and heal_at[f] <= now]
        if due or heals:
            stalls += 1
            if stalls > watchdog_limit:
                metrics.inc("resilience.sim.watchdog_fires")
                raise StallDetectedError(
                    f"no forward progress after {stalls} reconfiguration(s) "
                    f"at iteration {completed} (watchdog limit "
                    f"{watchdog_limit})"
                )
        for fault in heals:
            active.remove(fault)
            heal_at.pop(fault, None)
        for fault in due:
            pending.remove(fault)
            active.append(fault)
            if not fault.permanent:
                heal_at[fault] = fault.at_step + fault.duration

        if due or heals:
            close_segment()
            length_before = current_schedule.length
            try:
                degraded = degrade(arch, active)
            except DisconnectedTopologyError as exc:
                for fault in due:
                    _record(result, FaultOutcome(
                        fault=fault,
                        event="strike",
                        at_iteration=completed,
                        outcome="disconnected",
                        length_before=length_before,
                        length_after=0,
                        detail=str(exc),
                    ))
                raise
            try:
                repair = repair_schedule(
                    current_graph,
                    arch,
                    current_schedule,
                    degraded,
                    max_regression=max_regression,
                    pipelined_pes=pipelined_pes,
                    reoptimize_config=reoptimize_config,
                )
            except InfeasibleScheduleError as exc:
                for fault in due:
                    _record(result, FaultOutcome(
                        fault=fault,
                        event="strike",
                        at_iteration=completed,
                        outcome="infeasible",
                        length_before=length_before,
                        length_after=0,
                        detail=str(exc),
                    ))
                raise
            current_schedule = repair.schedule
            current_graph = repair.graph
            current_arch = repair.degraded
            for fault in due:
                _record(result, FaultOutcome(
                    fault=fault,
                    event="strike",
                    at_iteration=completed,
                    outcome=repair.strategy,
                    length_before=length_before,
                    length_after=current_schedule.length,
                    moved=len(repair.moved),
                ))
            for fault in heals:
                _record(result, FaultOutcome(
                    fault=fault,
                    event="heal",
                    at_iteration=completed,
                    outcome="healed",
                    length_before=length_before,
                    length_after=current_schedule.length,
                ))

        # 2. execute one iteration on the (possibly repaired) schedule -
        violations = collect_violations(
            current_graph,
            current_arch,
            current_schedule,
            pipelined_pes=pipelined_pes,
        )
        if violations:  # pragma: no cover - repair validates its output
            raise InfeasibleScheduleError(
                "illegal schedule reached the execution loop: "
                + "; ".join(violations)
            )
        now += current_schedule.length
        completed += 1
        segment_iters += 1
        stalls = 0

    close_segment()
    result.iterations = completed
    result.final_schedule = current_schedule
    result.final_graph = current_graph
    result.final_topology = current_arch
    metrics.inc("resilience.sim.runs")
    metrics.inc("resilience.sim.iterations", completed)
    return result
