"""Retiming substrate: basics, rotation primitive, Leiserson–Saxe,
prologue/epilogue extraction."""

from repro.retiming.basic import (
    apply_retiming,
    compose_retimings,
    is_legal_retiming,
    normalize_retiming,
    retimed_delay,
    zero_retiming,
)
from repro.retiming.incremental import can_rotate, rotate_nodes, unrotate_nodes
from repro.retiming.leiserson_saxe import (
    feasible_retiming_for_period,
    min_period_retiming,
    wd_matrices,
)
from repro.retiming.prologue import Instance, LoopCode, build_loop_code

__all__ = [
    "Instance",
    "LoopCode",
    "apply_retiming",
    "build_loop_code",
    "can_rotate",
    "compose_retimings",
    "feasible_retiming_for_period",
    "is_legal_retiming",
    "min_period_retiming",
    "normalize_retiming",
    "retimed_delay",
    "rotate_nodes",
    "unrotate_nodes",
    "wd_matrices",
    "zero_retiming",
]
