"""Leiserson–Saxe clock-period-minimising retiming.

The paper's rotation phase applies retiming *implicitly*; the classic
explicit algorithm [Leiserson & Saxe, Algorithmica 1991] is implemented
here both as a baseline (what pure retiming achieves with unlimited
processors and free communication) and as a lower-bound oracle for the
tests: no schedule of one loop iteration can beat the minimum
achievable clock period when processors are unlimited.

Terminology mapped onto CSDFGs: the *clock period* of ``G`` is the
maximum total execution time along a zero-delay path —
:func:`repro.graph.properties.critical_path_length`.  The algorithm:

1. ``W(u,v)`` = minimum delay count over all ``u -> v`` paths and
   ``D(u,v)`` = maximum total node time over the minimum-delay paths
   (computed by an all-pairs shortest path over lexicographic weights
   ``(d(e), -t(u))``).
2. A period ``c`` is feasible iff the difference constraints
   ``r(u) - r(v) <= d(e)`` (legality) and ``r(u) - r(v) <= W(u,v) - 1``
   for every pair with ``D(u,v) > c`` admit a solution (Bellman–Ford).
3. Binary-search ``c`` over the sorted distinct values of ``D``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RetimingError
from repro.graph.csdfg import CSDFG, Node

__all__ = ["wd_matrices", "feasible_retiming_for_period", "min_period_retiming"]

_INF = np.iinfo(np.int64).max // 4


def wd_matrices(graph: CSDFG) -> tuple[dict, np.ndarray, np.ndarray]:
    """The W and D matrices of Leiserson–Saxe.

    Returns ``(index, W, D)`` where ``index`` maps nodes to matrix rows.
    ``W[i, j]`` is the minimum path delay from node i to node j
    (``_INF``-like sentinel when unreachable) and ``D[i, j]`` the
    maximum total computation time over those minimum-delay paths
    (including both endpoints).
    """
    nodes = list(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    times = np.array([graph.time(v) for v in nodes], dtype=np.int64)

    # lexicographic weights: minimise (delay, -time-excluding-endpoint)
    w = np.full((n, n), _INF, dtype=np.int64)
    # second component: for a path p, sum of t over nodes of p except dst;
    # stored negated so smaller == more computation
    neg_t = np.full((n, n), _INF, dtype=np.int64)
    for i in range(n):
        w[i, i] = 0
        neg_t[i, i] = 0  # empty path: no delay, no time before the endpoint
    for e in graph.edges():
        i, j = index[e.src], index[e.dst]
        if i == j:
            continue  # a self-loop never lies on a simple u->v path
        cand_w, cand_t = e.delay, -times[i]
        if (cand_w, cand_t) < (w[i, j], neg_t[i, j]):
            w[i, j], neg_t[i, j] = cand_w, cand_t
    # Floyd–Warshall on lexicographic pairs.  The invariant is
    # neg_t[i, j] == -(max time over min-delay i->j paths, excluding j),
    # so concatenating i->k (excl. k) with k->j (incl. k, excl. j) is a
    # plain sum of both components.
    for k in range(n):
        wk_out = w[k, :]
        tk_out = neg_t[k, :]
        for i in range(n):
            if w[i, k] >= _INF:
                continue
            cw = w[i, k] + wk_out
            ct = neg_t[i, k] + tk_out
            reach = wk_out < _INF
            better = reach & (
                (cw < w[i, :]) | ((cw == w[i, :]) & (ct < neg_t[i, :]))
            )
            w[i, better] = cw[better]
            neg_t[i, better] = ct[better]
    # D includes both endpoints: path time = -neg_t + t(dst)
    D = np.where(w < _INF, -neg_t + times[None, :], -_INF)
    return index, w, D


def feasible_retiming_for_period(
    graph: CSDFG, period: int
) -> dict[Node, int] | None:
    """A legal retiming achieving clock period <= ``period``, or None.

    Solves the Leiserson–Saxe difference constraints with Bellman–Ford
    over a constraint graph with a virtual source.
    """
    index, w, D = wd_matrices(graph)
    nodes = list(index)
    n = len(nodes)
    # constraints r(u) - r(v) <= bound  =>  edge v -> u with weight bound
    constraints: dict[tuple[int, int], int] = {}

    def add(u: int, v: int, bound: int) -> None:
        key = (v, u)
        if key not in constraints or bound < constraints[key]:
            constraints[key] = bound

    for e in graph.edges():
        add(index[e.src], index[e.dst], e.delay)
    rows, cols = np.where(D > period)
    for i, j in zip(rows.tolist(), cols.tolist()):
        if w[i, j] >= _INF:
            continue
        add(i, j, int(w[i, j]) - 1)

    dist = [0] * n  # virtual source at distance 0 to all nodes
    edges = [(a, b, bound) for (a, b), bound in constraints.items()]
    for _ in range(n):
        changed = False
        for a, b, bound in edges:
            if dist[a] + bound < dist[b]:
                dist[b] = dist[a] + bound
                changed = True
        if not changed:
            break
    else:
        # n relaxations without fixpoint: check for a negative cycle
        for a, b, bound in edges:
            if dist[a] + bound < dist[b]:
                return None
    # Bellman–Ford solves the Leiserson–Saxe convention
    # (d_r = d + r(v) - r(u)); negate to this library's paper
    # convention (d_r = d + r(u) - r(v), see repro.retiming.basic)
    return {nodes[i]: -dist[i] for i in range(n)}


def min_period_retiming(graph: CSDFG) -> tuple[int, dict[Node, int]]:
    """Minimum achievable clock period and a retiming realising it.

    Binary-searches the sorted distinct entries of ``D``.  Raises
    :class:`RetimingError` for empty graphs.
    """
    if graph.num_nodes == 0:
        raise RetimingError("cannot retime an empty graph")
    _, w, D = wd_matrices(graph)
    candidates = np.unique(D[D > -_INF])
    lo, hi = 0, len(candidates) - 1
    best: tuple[int, dict[Node, int]] | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        period = int(candidates[mid])
        retiming = feasible_retiming_for_period(graph, period)
        if retiming is not None:
            best = (period, retiming)
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise RetimingError(
            "no feasible period found (graph has a zero-delay cycle?)"
        )
    return best
