"""Incremental node-set retiming — the rotation primitive.

The paper's rotation phase (Definition 4.1) retimes the set ``J`` of
first-row nodes by +1: one delay is drawn from every edge *entering*
``J`` and pushed onto every edge *leaving* ``J``; edges internal to
``J`` are unchanged.  This module provides that primitive as an
in-place graph rewrite plus its legality precondition.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import IllegalRetimingError
from repro.graph.csdfg import CSDFG, Node

__all__ = ["can_rotate", "rotate_nodes", "unrotate_nodes"]


def can_rotate(graph: CSDFG, nodes: Iterable[Node]) -> bool:
    """True when every edge entering the node set carries >= 1 delay.

    For the first row of a legal communication-aware schedule this
    always holds: a zero-delay predecessor would have to *finish*
    before control step 1.
    """
    node_set = set(nodes)
    for v in node_set:
        for e in graph.in_edges(v):
            if e.src not in node_set and e.delay < 1:
                return False
    return True


def rotate_nodes(graph: CSDFG, nodes: Iterable[Node], amount: int = 1) -> None:
    """Retime every node of ``nodes`` by ``+amount`` in place.

    Draws ``amount`` delays from each edge entering the set and pushes
    ``amount`` onto each edge leaving it.  Raises
    :class:`IllegalRetimingError` (leaving the graph untouched) when
    any entering edge has fewer than ``amount`` delays.
    """
    if amount < 0:
        raise IllegalRetimingError("rotation amount must be >= 0")
    node_set = set(nodes)
    entering = []
    leaving = []
    for v in node_set:
        for e in graph.in_edges(v):
            if e.src not in node_set:
                if e.delay < amount:
                    raise IllegalRetimingError(
                        f"cannot rotate {sorted(map(str, node_set))}: edge "
                        f"{e.src!r}->{e.dst!r} carries {e.delay} < {amount} delays"
                    )
                entering.append(e)
        for e in graph.out_edges(v):
            if e.dst not in node_set:
                leaving.append(e)
    for e in entering:
        graph.set_delay(e.src, e.dst, e.delay - amount)
    for e in leaving:
        graph.set_delay(e.src, e.dst, e.delay + amount)


def unrotate_nodes(graph: CSDFG, nodes: Iterable[Node], amount: int = 1) -> None:
    """Inverse of :func:`rotate_nodes` (retime the set by ``-amount``).

    Raises :class:`IllegalRetimingError` when some *leaving* edge has
    fewer than ``amount`` delays to give back.
    """
    if amount < 0:
        raise IllegalRetimingError("rotation amount must be >= 0")
    node_set = set(nodes)
    entering = []
    leaving = []
    for v in node_set:
        for e in graph.in_edges(v):
            if e.src not in node_set:
                entering.append(e)
        for e in graph.out_edges(v):
            if e.dst not in node_set:
                if e.delay < amount:
                    raise IllegalRetimingError(
                        f"cannot unrotate {sorted(map(str, node_set))}: edge "
                        f"{e.src!r}->{e.dst!r} carries {e.delay} < {amount} delays"
                    )
                leaving.append(e)
    for e in entering:
        graph.set_delay(e.src, e.dst, e.delay + amount)
    for e in leaving:
        graph.set_delay(e.src, e.dst, e.delay - amount)
