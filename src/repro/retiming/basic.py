"""Retiming fundamentals (Leiserson & Saxe, Algorithmica 1991).

A retiming is a function ``r: V -> Z``; retiming a CSDFG rewrites each
edge ``u -> v`` to carry ``d_r(e) = d(e) + r(u) - r(v)`` delays.

Sign convention: this library uses the ICPP'95 paper's convention —
``r(v)`` counts how many delays are *drawn from every incoming edge* of
``v`` and *pushed onto every outgoing edge* (§2: Figure 1(b) to 1(c) is
``r(A) = 1``).  This is the negative of Leiserson & Saxe's convention;
:mod:`repro.retiming.leiserson_saxe` converts at its boundary.

A retiming is *legal* when every retimed delay stays non-negative;
legality plus unchanged cycle delays are the invariants the property
tests check.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import IllegalRetimingError, RetimingError
from repro.graph.csdfg import CSDFG, Node

__all__ = [
    "retimed_delay",
    "is_legal_retiming",
    "apply_retiming",
    "normalize_retiming",
    "compose_retimings",
    "zero_retiming",
]


def zero_retiming(graph: CSDFG) -> dict[Node, int]:
    """The identity retiming of ``graph``."""
    return {v: 0 for v in graph.nodes()}


def retimed_delay(graph: CSDFG, retiming: Mapping[Node, int], src: Node, dst: Node) -> int:
    """``d_r(src -> dst) = d + r(src) - r(dst)`` (paper convention)."""
    return (
        graph.delay(src, dst)
        + retiming.get(src, 0)
        - retiming.get(dst, 0)
    )


def is_legal_retiming(graph: CSDFG, retiming: Mapping[Node, int]) -> bool:
    """True when every retimed edge delay is non-negative."""
    return all(
        e.delay + retiming.get(e.src, 0) - retiming.get(e.dst, 0) >= 0
        for e in graph.edges()
    )


def apply_retiming(
    graph: CSDFG, retiming: Mapping[Node, int], name: str | None = None
) -> CSDFG:
    """Return the retimed graph ``G_r``.

    Raises :class:`IllegalRetimingError` when some delay would become
    negative; raises :class:`RetimingError` when ``retiming`` mentions
    unknown nodes (catching mismatched graph/retiming pairs early).
    """
    unknown = [v for v in retiming if v not in graph]
    if unknown:
        raise RetimingError(f"retiming mentions unknown nodes: {unknown!r}")
    out = graph.copy(name if name is not None else f"{graph.name}:retimed")
    for e in graph.edges():
        new_delay = e.delay + retiming.get(e.src, 0) - retiming.get(e.dst, 0)
        if new_delay < 0:
            raise IllegalRetimingError(
                f"edge {e.src!r}->{e.dst!r}: retimed delay {new_delay} < 0"
            )
        out.set_delay(e.src, e.dst, new_delay)
    return out


def normalize_retiming(retiming: Mapping[Node, int]) -> dict[Node, int]:
    """Shift ``r`` so its minimum is 0 (retimings are equivalent up to a
    constant offset on weakly connected graphs)."""
    if not retiming:
        return {}
    low = min(retiming.values())
    return {v: r - low for v, r in retiming.items()}


def compose_retimings(
    first: Mapping[Node, int], second: Mapping[Node, int]
) -> dict[Node, int]:
    """The retiming equivalent to applying ``first`` then ``second``.

    Retimings compose additively: ``d_{r1+r2} = (d_{r1})_{r2}``.
    """
    keys = set(first) | set(second)
    return {v: first.get(v, 0) + second.get(v, 0) for v in keys}
