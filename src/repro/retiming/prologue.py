"""Prologue / epilogue extraction for retimed loops.

Retiming by ``r`` shifts node ``v``'s computation ``r(v)`` iterations
earlier.  Before the steady-state (retimed) loop can run, the shifted
instances must be precomputed — the **prologue** (paper §2: "the set of
instructions that must be executed to provide the necessary data for
the iterative process after it has been successfully retimed").  The
**epilogue** completes the trailing instances after the loop exits.

With the retiming normalised so ``min r = 0``:

* prologue: node ``v`` runs for original iterations ``0 .. r(v) - 1``,
* steady state: retimed iteration ``i`` executes instance
  ``(v, i + r(v))`` for ``N - r_max`` iterations,
* epilogue: node ``v`` runs for original iterations
  ``N - r_max + r(v) .. N - 1``.

Together they execute each node exactly ``N`` times — the invariant the
tests check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import RetimingError
from repro.graph.csdfg import CSDFG, Node
from repro.graph.validation import topological_order_zero_delay
from repro.retiming.basic import normalize_retiming

__all__ = ["Instance", "LoopCode", "build_loop_code"]


@dataclass(frozen=True)
class Instance:
    """One execution instance: ``node`` at original iteration
    ``iteration``."""

    node: Node
    iteration: int


@dataclass(frozen=True)
class LoopCode:
    """Prologue / steady-state / epilogue decomposition of ``N``
    iterations of a retimed loop."""

    prologue: tuple[Instance, ...]
    steady_iterations: int
    epilogue: tuple[Instance, ...]
    retiming: dict[Node, int]

    def total_instances(self, graph: CSDFG) -> int:
        """Total node executions across all three phases."""
        return (
            len(self.prologue)
            + self.steady_iterations * graph.num_nodes
            + len(self.epilogue)
        )


def build_loop_code(
    graph: CSDFG, retiming: Mapping[Node, int], iterations: int
) -> LoopCode:
    """Decompose ``iterations`` runs of the loop under ``retiming``.

    The retiming is normalised internally (``min r = 0``).  Requires
    ``iterations >= max r`` so the steady state is non-empty.  Prologue
    instances are emitted in (iteration, zero-delay topological) order,
    so they can be executed sequentially as written.
    """
    if iterations < 0:
        raise RetimingError(f"iterations must be >= 0, got {iterations}")
    r = normalize_retiming({v: retiming.get(v, 0) for v in graph.nodes()})
    r_max = max(r.values(), default=0)
    if iterations < r_max:
        raise RetimingError(
            f"need at least r_max={r_max} iterations, got {iterations}"
        )
    topo = topological_order_zero_delay(graph)

    prologue: list[Instance] = []
    for it in range(r_max):
        for v in topo:
            if r[v] > it:
                prologue.append(Instance(v, it))

    # steady-state retimed iteration i (0 <= i < steady) executes the
    # original instance (v, i + r(v)); the epilogue covers the rest
    steady = iterations - r_max
    topo_index = {v: k for k, v in enumerate(topo)}
    epilogue = [
        Instance(v, orig_it)
        for v in topo
        for orig_it in range(steady + r[v], iterations)
    ]
    epilogue.sort(key=lambda inst: (inst.iteration, topo_index[inst.node]))

    return LoopCode(
        prologue=tuple(prologue),
        steady_iterations=steady,
        epilogue=tuple(epilogue),
        retiming=dict(r),
    )
