"""Precomputed communication-cost tables (the fast-path ``M`` lookup).

The scheduling inner loops evaluate ``M(p_u, p_v; c(e))`` millions of
times, and :meth:`Architecture.comm_cost` pays for two PE bound checks,
a numpy scalar index and a cost-model call on every one of them.  A
:class:`CommCostCache` collapses all of that into a nested-list lookup:
built once per (graph, architecture) pair, it tabulates the cost for
every *distinct edge volume* x *alive PE pair* from the architecture's
dense ``distance_matrix``.  The cost model is consulted only once per
distinct (hop count, volume) combination.

Degraded topologies are handled by construction: only PEs reported by
``arch.processors`` are tabulated, so a lookup touching a failed PE
falls back to ``arch.comm_cost`` — which raises the same typed
``DeadProcessorError`` the uncached path would.

The cache is *read-only* and keyed to the architecture instance it was
built from; build a fresh one after any topology change (e.g. after
injecting faults).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.arch.topology import Architecture

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.csdfg import CSDFG

__all__ = ["CommCostCache"]


class CommCostCache:
    """Dense ``volume -> src PE -> dst PE -> cost`` lookup tables.

    Parameters
    ----------
    arch:
        The architecture to tabulate.  Kept as the fallback for
        volumes or PEs outside the cached tables.
    volumes:
        The edge volumes to precompute (typically the distinct volumes
        of one graph; see :meth:`for_graph`).
    """

    __slots__ = ("arch", "_tables", "_tables_t", "hits", "misses", "entries")

    def __init__(self, arch: Architecture, volumes: Iterable[int]):
        self.arch = arch
        # plain-int tallies (a few thousand increments per run — far
        # cheaper than conditional metric calls on the hot path); the
        # engine publishes them to the metrics registry once per run
        # via :meth:`publish_stats`
        self.hits = 0
        self.misses = 0
        n = arch.num_pes
        alive = list(arch.processors)
        dist = arch.distance_matrix
        model_cost = arch.comm_model.cost
        self._tables: dict[int, list[list[int | None]]] = {}
        self._tables_t: dict[int, list[list[int | None]]] = {}
        for vol in set(volumes):
            by_hops: dict[int, int] = {}
            table: list[list[int | None]] = [[None] * n for _ in range(n)]
            for src in alive:
                dist_row = dist[src]
                out_row = table[src]
                for dst in alive:
                    hops = int(dist_row[dst])
                    cost = by_hops.get(hops)
                    if cost is None:
                        cost = model_cost(hops, vol)
                        by_hops[hops] = cost
                    out_row[dst] = cost
            self._tables[vol] = table
            self._tables_t[vol] = [list(col) for col in zip(*table)]
        self.entries = len(self._tables) * len(alive) * len(alive)

    @classmethod
    def for_graph(cls, arch: Architecture, graph: "CSDFG") -> "CommCostCache":
        """Cache covering every edge volume of ``graph`` on ``arch``."""
        return cls(arch, {e.volume for e in graph.edges()})

    @property
    def volumes(self) -> frozenset[int]:
        """The edge volumes covered by the tables."""
        return frozenset(self._tables)

    def cost(self, src: int, dst: int, volume: int) -> int:
        """The paper's ``M(p_src, p_dst; volume)``.

        One nested-list lookup on the hot path; any miss (uncached
        volume, out-of-range or failed PE) defers to
        ``arch.comm_cost`` so errors and semantics match the uncached
        path exactly.
        """
        try:
            cached = self._tables[volume][src][dst]
        except (KeyError, IndexError):
            self.misses += 1
            return self.arch.comm_cost(src, dst, volume)
        if cached is None or src < 0 or dst < 0:
            self.misses += 1
            return self.arch.comm_cost(src, dst, volume)
        self.hits += 1
        return cached

    def row_from(self, src: int, volume: int) -> list[int | None] | None:
        """Costs ``src -> p`` for every PE id ``p`` (``None`` entries
        for failed PEs), or ``None`` when the volume or source is not
        tabulated.  The returned list must not be mutated."""
        table = self._tables.get(volume)
        if table is None or not (0 <= src < self.arch.num_pes):
            return None
        return table[src]

    def row_to(self, dst: int, volume: int) -> list[int | None] | None:
        """Costs ``p -> dst`` for every PE id ``p`` — the column view
        of :meth:`row_from` (served from a precomputed transpose)."""
        table = self._tables_t.get(volume)
        if table is None or not (0 <= dst < self.arch.num_pes):
            return None
        return table[dst]

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`cost` lookups served from the tables."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Plain-data view of the lookup tallies."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
        }

    def publish_stats(self) -> None:
        """Push the tallies into the metrics registry (no-op while
        observability is off).  Called once per run by the engine —
        counter deltas are not meaningful across publishes, so callers
        publish exactly once, at the end of a run."""
        from repro.obs import metrics

        metrics.inc("arch.cache.hits", self.hits)
        metrics.inc("arch.cache.misses", self.misses)
        metrics.set_gauge("arch.cache.entries", self.entries)
        metrics.set_gauge("arch.cache.hit_rate", round(self.hit_rate, 6))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommCostCache(arch={self.arch.name!r}, "
            f"volumes={sorted(self._tables)})"
        )
