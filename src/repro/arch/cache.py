"""Precomputed communication-cost tables (the fast-path ``M`` lookup).

The scheduling inner loops evaluate ``M(p_u, p_v; c(e))`` millions of
times, and :meth:`Architecture.comm_cost` pays for two PE bound checks,
a numpy scalar index and a cost-model call on every one of them.  A
:class:`CommCostCache` collapses all of that into a nested-list lookup
keyed ``volume -> src PE -> dst PE``.

Rows are built **lazily, one (source PE, volume) band at a time**: the
cache starts empty and materialises a row the first time any lookup
touches it, using the batched row kernel
(:func:`repro.core.kernels.comm_cost_row`) over the architecture's
dense ``distance_matrix``.  On large machines this avoids the
``O(volumes * n^2)`` cold-start the old eager build paid before the
first pass could run — a 10k-node graph on a 64-PE machine touches a
few dozen rows, not all of them.  The cost model is still consulted at
most once per distinct (hop count, volume) combination, shared across
the rows of one volume.

Degraded topologies are handled by construction: only PEs reported by
``arch.processors`` get entries, so a lookup touching a failed PE falls
back to ``arch.comm_cost`` — which raises the same typed
``DeadProcessorError`` the uncached path would.

The cache is *read-only* in effect (row materialisation is invisible to
callers) and keyed to the architecture instance it was built from;
build a fresh one after any topology change (e.g. after injecting
faults).

Contention-aware pricing is an optional dimension on the same tables:
give the constructor a :class:`~repro.arch.comm.ContentionModel` and a
frozen :class:`~repro.arch.contention.LinkOccupancy` snapshot and every
banded row is surcharged ``price(base, load_between(src, dst))`` as it
materialises.  Because the snapshot is frozen, prices remain a pure
function of ``(src, dst, volume)`` — the start-up scheduler, the remap
inner loop and the validator consume the same cache and therefore agree
on every ``M`` by construction.  The default (no model) prices
bit-identically to ``arch.comm_cost``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.arch.comm import ContentionModel
from repro.arch.contention import LinkOccupancy
from repro.arch.topology import Architecture
from repro.errors import ArchitectureError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.csdfg import CSDFG

__all__ = ["CommCostCache"]


class CommCostCache:
    """Lazy ``volume -> src PE -> dst PE -> cost`` lookup tables.

    Parameters
    ----------
    arch:
        The architecture to tabulate.  Kept as the fallback for
        volumes or PEs outside the cached tables.
    volumes:
        The edge volumes the tables cover (typically the distinct
        volumes of one graph; see :meth:`for_graph`).  Lookups for
        other volumes miss to ``arch.comm_cost``.
    contention:
        Optional :class:`~repro.arch.comm.ContentionModel`.  When set,
        every tabulated (and fallback) price is surcharged against the
        frozen ``occupancy`` snapshot:
        ``price(base, occupancy.load_between(src, dst))``.  The
        default ``None`` keeps prices bit-identical to
        ``arch.comm_cost``.
    occupancy:
        The frozen :class:`~repro.arch.contention.LinkOccupancy` the
        surcharge is computed against (defaults to an empty ledger,
        which prices exactly like the contention-free cache).  The
        snapshot must belong to ``arch`` and must not be mutated after
        rows materialise — freeze-then-reprice keeps the price a pure
        function of ``(src, dst, volume)`` for the whole run.
    """

    __slots__ = (
        "arch",
        "_tables",
        "_tables_t",
        "_by_hops",
        "_alive",
        "_contention",
        "_occupancy",
        "hits",
        "misses",
        "entries",
    )

    def __init__(
        self,
        arch: Architecture,
        volumes: Iterable[int],
        *,
        contention: ContentionModel | None = None,
        occupancy: LinkOccupancy | None = None,
    ):
        self.arch = arch
        if contention is None:
            occupancy = None
        elif occupancy is None:
            occupancy = LinkOccupancy(arch)
        elif occupancy.arch is not arch:
            raise ArchitectureError(
                "occupancy snapshot belongs to a different architecture "
                "than the cache"
            )
        self._contention = contention
        self._occupancy = occupancy
        # plain-int tallies (a few thousand increments per run — far
        # cheaper than conditional metric calls on the hot path); the
        # engine publishes them to the metrics registry once per run
        # via :meth:`publish_stats`.  Row materialisation is neither a
        # hit nor a miss: the tallies count lookups, not builds.
        self.hits = 0
        self.misses = 0
        self.entries = 0
        self._alive = tuple(arch.processors)
        n = arch.num_pes
        # rows start unmaterialised (None); _tables holds src -> dst
        # rows, _tables_t holds the column view (dst -> src) built
        # independently so a consumer-side scan does not force the full
        # transpose.  _by_hops memoises the cost model per volume,
        # shared by both orientations.
        self._tables: dict[int, list[list[int | None] | None]] = {
            vol: [None] * n for vol in set(volumes)
        }
        self._tables_t: dict[int, list[list[int | None] | None]] = {
            vol: [None] * n for vol in self._tables
        }
        self._by_hops: dict[int, dict[int, int]] = {
            vol: {} for vol in self._tables
        }

    @classmethod
    def for_graph(
        cls,
        arch: Architecture,
        graph: "CSDFG",
        *,
        contention: ContentionModel | None = None,
        occupancy: LinkOccupancy | None = None,
    ) -> "CommCostCache":
        """Cache covering every edge volume of ``graph`` on ``arch``."""
        return cls(
            arch,
            {e.volume for e in graph.edges()},
            contention=contention,
            occupancy=occupancy,
        )

    @property
    def volumes(self) -> frozenset[int]:
        """The edge volumes covered by the tables."""
        return frozenset(self._tables)

    @property
    def contended(self) -> bool:
        """Whether prices carry a contention surcharge."""
        return self._contention is not None

    @property
    def contention(self) -> ContentionModel | None:
        """The contention model pricing this cache, if any."""
        return self._contention

    @property
    def occupancy(self) -> LinkOccupancy | None:
        """The frozen link-occupancy snapshot, if contended."""
        return self._occupancy

    # ------------------------------------------------------------------
    def _build_row(
        self, table: list, volume: int, pe: int, *, transposed: bool
    ) -> list[int | None] | None:
        """Materialise one (PE, volume) band; ``None`` for dead PEs."""
        arch = self.arch
        if pe not in self._alive:
            return None
        by_hops = self._by_hops[volume]
        model_cost = arch.comm_model.cost

        def cost_of(hops: int) -> int:
            cost = by_hops.get(hops)
            if cost is None:
                cost = model_cost(hops, volume)
                by_hops[hops] = cost
            return cost

        from repro.core.kernels import comm_cost_row

        dist = arch.distance_matrix
        hops_row = dist[:, pe] if transposed else dist[pe]
        row = comm_cost_row(hops_row, self._alive, cost_of, arch.num_pes)
        if self._contention is not None:
            # surcharge the banded row against the frozen occupancy:
            # rows stay plain ints, so the hot-path lookup is unchanged
            price = self._contention.price
            load = self._occupancy.load_between
            row = [
                base if base is None or base == 0
                else price(base, load(p, pe) if transposed else load(pe, p))
                for p, base in enumerate(row)
            ]
        table[pe] = row
        self.entries += len(self._alive)
        return row

    # ------------------------------------------------------------------
    def cost(self, src: int, dst: int, volume: int) -> int:
        """The paper's ``M(p_src, p_dst; volume)``.

        One nested-list lookup on the hot path; any miss (uncached
        volume, out-of-range or failed PE) defers to
        ``arch.comm_cost`` so errors and semantics match the uncached
        path exactly.
        """
        try:
            row = self._tables[volume][src]
            if row is None:
                row = self._build_row(
                    self._tables[volume], volume, src, transposed=False
                )
                if row is None:  # dead source PE
                    self.misses += 1
                    return self._fallback(src, dst, volume)
            cached = row[dst]
        except (KeyError, IndexError):
            self.misses += 1
            return self._fallback(src, dst, volume)
        if cached is None or src < 0 or dst < 0:
            self.misses += 1
            return self._fallback(src, dst, volume)
        self.hits += 1
        return cached

    def _fallback(self, src: int, dst: int, volume: int) -> int:
        """Uncached pricing, contention surcharge included.

        ``arch.comm_cost`` runs first so bound checks and
        ``DeadProcessorError`` semantics match the uncached path."""
        base = self.arch.comm_cost(src, dst, volume)
        if self._contention is None or base == 0:
            return base
        return self._contention.price(
            base, self._occupancy.load_between(src, dst)
        )

    def row_from(self, src: int, volume: int) -> list[int | None] | None:
        """Costs ``src -> p`` for every PE id ``p`` (``None`` entries
        for failed PEs), or ``None`` when the volume or source is not
        tabulated.  The returned list must not be mutated."""
        table = self._tables.get(volume)
        if table is None or not (0 <= src < self.arch.num_pes):
            return None
        row = table[src]
        if row is None:
            row = self._build_row(table, volume, src, transposed=False)
        return row

    def row_to(self, dst: int, volume: int) -> list[int | None] | None:
        """Costs ``p -> dst`` for every PE id ``p`` — the column view
        of :meth:`row_from` (materialised per band from the distance
        column, sharing the per-volume cost-model memo)."""
        table = self._tables_t.get(volume)
        if table is None or not (0 <= dst < self.arch.num_pes):
            return None
        row = table[dst]
        if row is None:
            row = self._build_row(table, volume, dst, transposed=True)
        return row

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`cost` lookups served from the tables."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Plain-data view of the lookup tallies.  ``entries`` counts
        the cache cells actually materialised (grows as bands are
        touched), not the eager full-matrix size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
        }

    def publish_stats(self) -> None:
        """Push the tallies into the metrics registry (no-op while
        observability is off).  Called once per run by the engine —
        counter deltas are not meaningful across publishes, so callers
        publish exactly once, at the end of a run."""
        from repro.obs import metrics

        metrics.inc("arch.cache.hits", self.hits)
        metrics.inc("arch.cache.misses", self.misses)
        metrics.set_gauge("arch.cache.entries", self.entries)
        metrics.set_gauge("arch.cache.hit_rate", round(self.hit_rate, 6))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommCostCache(arch={self.arch.name!r}, "
            f"volumes={sorted(self._tables)})"
        )
