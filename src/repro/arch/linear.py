"""Linear array topology (paper Figure 5(a)).

``N`` PEs in a line joined by ``N - 1`` links; terminal PEs have degree
1, interior PEs degree 2.  Hop distance between ``i`` and ``j`` is
``|i - j|``, so the diameter is ``N - 1`` — the worst communication
behaviour of the paper's five experimental architectures.
"""

from __future__ import annotations

from repro.arch.comm import CommModel
from repro.arch.topology import Architecture

__all__ = ["LinearArray"]


class LinearArray(Architecture):
    """A one-dimensional array of ``num_pes`` processors."""

    def __init__(self, num_pes: int, *, comm_model: CommModel | None = None):
        links = [(i, i + 1) for i in range(num_pes - 1)]
        super().__init__(
            num_pes,
            links,
            name=f"linear{num_pes}",
            comm_model=comm_model,
        )
