"""2-D torus: a mesh with wrap-around links in both dimensions.

Not one of the paper's five experimental architectures, but a natural
extension (the mesh's boundary penalty disappears) used by the
architecture-exploration example and ablations.
"""

from __future__ import annotations

from repro.arch.comm import CommModel
from repro.arch.topology import Architecture
from repro.errors import ArchitectureError, UnknownProcessorError

__all__ = ["Torus2D"]


class Torus2D(Architecture):
    """A ``rows x cols`` torus (each dimension >= 3 so wrap links do
    not duplicate mesh links)."""

    def __init__(
        self, rows: int, cols: int, *, comm_model: CommModel | None = None
    ):
        if rows < 3 or cols < 3:
            raise ArchitectureError(
                f"torus dimensions must be >= 3, got {rows}x{cols}"
            )
        self.rows = rows
        self.cols = cols
        links: list[tuple[int, int]] = []
        for r in range(rows):
            for c in range(cols):
                pe = r * cols + c
                links.append((pe, r * cols + (c + 1) % cols))
                links.append((pe, ((r + 1) % rows) * cols + c))
        canonical = {(min(a, b), max(a, b)) for a, b in links}
        super().__init__(
            rows * cols,
            sorted(canonical),
            name=f"torus{rows}x{cols}",
            comm_model=comm_model,
        )

    def coordinates(self, pe: int) -> tuple[int, int]:
        """Grid coordinates ``(row, col)`` of ``pe``."""
        if not (0 <= pe < self.num_pes):
            raise UnknownProcessorError(f"PE {pe} outside torus {self.name}")
        return divmod(pe, self.cols)
