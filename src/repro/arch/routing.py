"""Routing paths over architectures.

The store-and-forward model only needs hop *counts*, but explicit paths
are useful for visualisation, for the link-contention extension
(:mod:`repro.arch.contention`), and for checking that the specialised
routers agree with BFS:

* :func:`shortest_path` — generic BFS route on any architecture,
* :func:`xy_route` — deterministic dimension-ordered routing on a
  :class:`~repro.arch.mesh.Mesh2D`,
* :func:`ecube_route` — e-cube (ascending-bit) routing on a
  :class:`~repro.arch.hypercube.Hypercube`.
"""

from __future__ import annotations

from collections import deque

from repro.arch.hypercube import Hypercube
from repro.arch.mesh import Mesh2D
from repro.arch.topology import Architecture
from repro.errors import ArchitectureError

__all__ = ["shortest_path", "xy_route", "ecube_route", "route"]


def shortest_path(arch: Architecture, src: int, dst: int) -> list[int]:
    """A shortest PE path ``[src, ..., dst]`` found by BFS.

    Ties are broken toward lower PE ids, so the result is
    deterministic.
    """
    arch._check_pe(src)
    arch._check_pe(dst)
    if src == dst:
        return [src]
    parent: dict[int, int] = {src: src}
    queue: deque[int] = deque([src])
    while queue:
        node = queue.popleft()
        for nb in arch.neighbors(node):
            if nb not in parent:
                parent[nb] = node
                if nb == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    return path[::-1]
                queue.append(nb)
    raise ArchitectureError(f"no path {src} -> {dst} in {arch.name!r}")


def xy_route(mesh: Mesh2D, src: int, dst: int) -> list[int]:
    """Dimension-ordered (X then Y) route on a 2-D mesh.

    Moves along the column dimension first, then along rows; the length
    always equals the Manhattan distance, i.e. ``mesh.hops(src, dst)``.
    """
    r0, c0 = mesh.coordinates(src)
    r1, c1 = mesh.coordinates(dst)
    path = [src]
    r, c = r0, c0
    while c != c1:
        c += 1 if c1 > c else -1
        path.append(mesh.pe_at(r, c))
    while r != r1:
        r += 1 if r1 > r else -1
        path.append(mesh.pe_at(r, c))
    return path


def ecube_route(cube: Hypercube, src: int, dst: int) -> list[int]:
    """E-cube route on a hypercube: fix differing bits from LSB to MSB.

    The length equals the Hamming distance ``cube.hops(src, dst)``.
    """
    cube._check_pe(src)
    cube._check_pe(dst)
    path = [src]
    cur = src
    diff = src ^ dst
    bit = 0
    while diff:
        if diff & 1:
            cur ^= 1 << bit
            path.append(cur)
        diff >>= 1
        bit += 1
    return path


def route(arch: Architecture, src: int, dst: int) -> list[int]:
    """Topology-aware route: XY on meshes, e-cube on hypercubes, BFS
    otherwise."""
    if isinstance(arch, Mesh2D):
        return xy_route(arch, src, dst)
    if isinstance(arch, Hypercube):
        return ecube_route(arch, src, dst)
    return shortest_path(arch, src, dst)
