"""Inter-processor communication cost models.

The paper (Definition 3.5) uses a **store-and-forward** model: shipping a
data volume ``m`` across ``h`` links costs ``M = h * m`` control steps,
with multiple channels so there is no congestion; ``M = 0`` on the same
processor.  Alternative models are provided for ablation studies:

* :class:`WormholeModel` — cut-through routing where per-hop cost is
  paid once for the header (``h + m - 1``), the modern NoC idiom;
* :class:`ConstantLatencyModel` — a flat cost for any remote transfer
  (bus-like interconnect);
* :class:`ZeroCommModel` — free communication, which turns the
  schedulers into their communication-oblivious baselines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ArchitectureError

__all__ = [
    "CommModel",
    "StoreAndForwardModel",
    "WormholeModel",
    "ConstantLatencyModel",
    "ZeroCommModel",
    "ContentionModel",
    "NoContention",
    "SerializedContention",
    "ScaledContention",
    "CONTENTION_MODELS",
    "make_contention_model",
]


class CommModel(ABC):
    """Maps (hop distance, data volume) to a communication cost in
    control steps.

    Implementations must return 0 when ``hops == 0`` (same processor)
    and a non-negative integer otherwise.
    """

    #: Short identifier used in experiment reports.
    name: str = "abstract"

    @abstractmethod
    def cost(self, hops: int, volume: int) -> int:
        """Communication cost in control steps."""

    def _check(self, hops: int, volume: int) -> None:
        if hops < 0:
            raise ArchitectureError(f"negative hop count {hops}")
        if volume < 1:
            raise ArchitectureError(f"volume must be >= 1, got {volume}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class StoreAndForwardModel(CommModel):
    """The paper's model: ``M = hops * volume`` (Definition 3.5)."""

    name = "store-and-forward"

    def cost(self, hops: int, volume: int) -> int:
        self._check(hops, volume)
        return hops * volume


class WormholeModel(CommModel):
    """Cut-through routing: ``hops + volume - 1`` when remote, else 0."""

    name = "wormhole"

    def cost(self, hops: int, volume: int) -> int:
        self._check(hops, volume)
        return 0 if hops == 0 else hops + volume - 1


class ConstantLatencyModel(CommModel):
    """Flat remote-transfer latency (bus / crossbar abstraction)."""

    name = "constant"

    def __init__(self, latency: int = 1):
        if latency < 0:
            raise ArchitectureError(f"latency must be >= 0, got {latency}")
        self.latency = latency

    def cost(self, hops: int, volume: int) -> int:
        self._check(hops, volume)
        return 0 if hops == 0 else self.latency

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConstantLatencyModel(latency={self.latency})"


class ZeroCommModel(CommModel):
    """Free communication — the communication-oblivious baseline."""

    name = "zero"

    def cost(self, hops: int, volume: int) -> int:
        self._check(hops, volume)
        return 0


# --------------------------------------------------------------------
# Contention pricing: base cost x concurrent link load -> contended cost
# --------------------------------------------------------------------


class ContentionModel(ABC):
    """Maps a contention-free base cost and a concurrent link load to a
    contended cost in control steps.

    ``load`` is the data volume already queued on the busiest link of
    the transfer's route (see
    :class:`~repro.arch.contention.LinkOccupancy`).  Implementations
    must satisfy two laws the rest of the engine relies on:

    * **identity at zero load** — ``price(base, 0) == base``, so the
      contention-free default stays bit-identical;
    * **monotonicity** — ``price(base, a) <= price(base, b)`` whenever
      ``a <= b``: more traffic never makes a transfer cheaper.

    Same-processor transfers (``base == 0``) are never contended:
    ``price(0, load) == 0`` for any load.
    """

    #: Short identifier used in configs and experiment reports.
    name: str = "abstract"

    @abstractmethod
    def price(self, base: int, load: int) -> int:
        """Contended communication cost in control steps."""

    def _check(self, base: int, load: int) -> None:
        if base < 0:
            raise ArchitectureError(f"negative base cost {base}")
        if load < 0:
            raise ArchitectureError(f"negative link load {load}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class NoContention(ContentionModel):
    """Infinite per-link bandwidth: the paper's contention-free model."""

    name = "none"

    def price(self, base: int, load: int) -> int:
        self._check(base, load)
        return base


class SerializedContention(ContentionModel):
    """Per-link serialisation: a transfer queues behind the volume
    already reserved on the busiest link of its route, paying ``weight``
    control steps per queued unit (``base + weight * load``)."""

    name = "serialized"

    def __init__(self, weight: int = 1):
        if weight < 1:
            raise ArchitectureError(f"weight must be >= 1, got {weight}")
        self.weight = weight

    def price(self, base: int, load: int) -> int:
        self._check(base, load)
        return base if base == 0 else base + self.weight * load

    def __repr__(self) -> str:  # pragma: no cover
        return f"SerializedContention(weight={self.weight})"


class ScaledContention(ContentionModel):
    """Proportional slowdown: each queued unit stretches the transfer
    by ``weight / 8`` of its base cost (integer arithmetic, floor)."""

    name = "scaled"

    def __init__(self, weight: int = 1):
        if weight < 1:
            raise ArchitectureError(f"weight must be >= 1, got {weight}")
        self.weight = weight

    def price(self, base: int, load: int) -> int:
        self._check(base, load)
        return base + (base * load * self.weight) // 8

    def __repr__(self) -> str:  # pragma: no cover
        return f"ScaledContention(weight={self.weight})"


#: Contention model factories by config name.
CONTENTION_MODELS: dict[str, type[ContentionModel]] = {
    "none": NoContention,
    "serialized": SerializedContention,
    "scaled": ScaledContention,
}


def make_contention_model(name: str, *, weight: int = 1) -> ContentionModel:
    """Build a contention model from its config-level name."""
    try:
        cls = CONTENTION_MODELS[name]
    except KeyError:
        raise ArchitectureError(
            f"unknown contention model {name!r}; "
            f"known: {sorted(CONTENTION_MODELS)}"
        ) from None
    if cls is NoContention:
        return cls()
    return cls(weight=weight)
