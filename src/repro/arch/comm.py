"""Inter-processor communication cost models.

The paper (Definition 3.5) uses a **store-and-forward** model: shipping a
data volume ``m`` across ``h`` links costs ``M = h * m`` control steps,
with multiple channels so there is no congestion; ``M = 0`` on the same
processor.  Alternative models are provided for ablation studies:

* :class:`WormholeModel` — cut-through routing where per-hop cost is
  paid once for the header (``h + m - 1``), the modern NoC idiom;
* :class:`ConstantLatencyModel` — a flat cost for any remote transfer
  (bus-like interconnect);
* :class:`ZeroCommModel` — free communication, which turns the
  schedulers into their communication-oblivious baselines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ArchitectureError

__all__ = [
    "CommModel",
    "StoreAndForwardModel",
    "WormholeModel",
    "ConstantLatencyModel",
    "ZeroCommModel",
]


class CommModel(ABC):
    """Maps (hop distance, data volume) to a communication cost in
    control steps.

    Implementations must return 0 when ``hops == 0`` (same processor)
    and a non-negative integer otherwise.
    """

    #: Short identifier used in experiment reports.
    name: str = "abstract"

    @abstractmethod
    def cost(self, hops: int, volume: int) -> int:
        """Communication cost in control steps."""

    def _check(self, hops: int, volume: int) -> None:
        if hops < 0:
            raise ArchitectureError(f"negative hop count {hops}")
        if volume < 1:
            raise ArchitectureError(f"volume must be >= 1, got {volume}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class StoreAndForwardModel(CommModel):
    """The paper's model: ``M = hops * volume`` (Definition 3.5)."""

    name = "store-and-forward"

    def cost(self, hops: int, volume: int) -> int:
        self._check(hops, volume)
        return hops * volume


class WormholeModel(CommModel):
    """Cut-through routing: ``hops + volume - 1`` when remote, else 0."""

    name = "wormhole"

    def cost(self, hops: int, volume: int) -> int:
        self._check(hops, volume)
        return 0 if hops == 0 else hops + volume - 1


class ConstantLatencyModel(CommModel):
    """Flat remote-transfer latency (bus / crossbar abstraction)."""

    name = "constant"

    def __init__(self, latency: int = 1):
        if latency < 0:
            raise ArchitectureError(f"latency must be >= 0, got {latency}")
        self.latency = latency

    def cost(self, hops: int, volume: int) -> int:
        self._check(hops, volume)
        return 0 if hops == 0 else self.latency

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConstantLatencyModel(latency={self.latency})"


class ZeroCommModel(CommModel):
    """Free communication — the communication-oblivious baseline."""

    name = "zero"

    def cost(self, hops: int, volume: int) -> int:
        self._check(hops, volume)
        return 0
