"""Degraded topologies: a registered architecture minus failed hardware.

A :class:`DegradedTopology` wraps any :class:`~repro.arch.topology.
Architecture` and removes a set of failed PEs and/or links.  PE ids are
*preserved* — the surviving machine keeps the base machine's id space so
existing schedule tables, placements and renderings stay addressable —
but failed PEs disappear from :attr:`processors`, report
``is_alive() == False``, and may not execute tasks or carry traffic.
Hop counts and routes are recomputed over the surviving network only;
if the survivors are split into more than one connected component the
constructor raises :class:`~repro.errors.DisconnectedTopologyError`
(no static schedule can route across a cut network).

This is the architecture-side half of the resilience story: the
communication-sensitive remapping machinery runs unmodified on a
degraded topology because every scheduler iterates
``arch.processors`` and prices communication through ``arch.hops`` —
both of which here reflect the surviving network.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.arch.topology import Architecture
from repro.errors import (
    ArchitectureError,
    DeadProcessorError,
    DisconnectedTopologyError,
)

__all__ = ["DegradedTopology"]


def _canonical_links(links: Iterable[tuple[int, int]]) -> set[tuple[int, int]]:
    return {(min(a, b), max(a, b)) for a, b in links}


class DegradedTopology(Architecture):
    """``base`` with ``failed_pes`` and ``failed_links`` removed.

    Parameters
    ----------
    base:
        The healthy architecture (any registered topology, including
        another :class:`DegradedTopology` — faults compose).
    failed_pes:
        PE ids that no longer execute tasks; every link touching a
        failed PE is removed too.
    failed_links:
        Undirected ``(a, b)`` pairs to remove; each must exist in
        ``base``.

    Raises
    ------
    DisconnectedTopologyError
        When the surviving PEs are not mutually reachable (or none
        survive at all).
    DeadProcessorError
        From :meth:`hops` / :meth:`comm_cost` / :meth:`execution_time`
        when a failed PE is addressed.
    """

    def __init__(
        self,
        base: Architecture,
        *,
        failed_pes: Iterable[int] = (),
        failed_links: Iterable[tuple[int, int]] = (),
    ):
        failed = frozenset(int(p) for p in failed_pes)
        for pe in failed:
            base._check_pe(pe)
        removed = _canonical_links(failed_links)
        base_links = set(base.links)
        for link in sorted(removed):
            if link not in base_links:
                raise ArchitectureError(
                    f"link {link} is not a link of {base.name!r}; "
                    f"links: {list(base.links)}"
                )

        alive = [pe for pe in range(base.num_pes) if pe not in failed]
        if not alive:
            raise DisconnectedTopologyError(
                f"all {base.num_pes} PEs of {base.name!r} failed", []
            )

        surviving = tuple(
            sorted(
                link
                for link in base_links - removed
                if link[0] not in failed and link[1] not in failed
            )
        )

        # mirror Architecture.__init__ but check connectivity over the
        # surviving PEs only (failed PEs are legitimately unreachable)
        self.base = base
        self.name = f"{base.name}-degraded"
        self.num_pes = base.num_pes
        self.comm_model = base.comm_model
        self._time_scales = base.time_scales
        self._failed_pes = failed
        self._failed_links = frozenset(removed)
        adj: list[set[int]] = [set() for _ in range(self.num_pes)]
        for a, b in surviving:
            adj[a].add(b)
            adj[b].add(a)
        self._adjacency = tuple(tuple(sorted(s)) for s in adj)
        self._links = surviving
        self._distance = self._all_pairs_hops()
        self._alive = tuple(alive)
        components = self._components(alive)
        if len(components) > 1:
            raise DisconnectedTopologyError(
                f"removing {sorted(failed) or 'no'} PE(s) and "
                f"{sorted(removed) or 'no'} link(s) disconnects "
                f"{base.name!r}: surviving components {components}",
                components,
            )

    def _components(self, alive: list[int]) -> list[list[int]]:
        """Connected components of the surviving network."""
        components: list[list[int]] = []
        seen: set[int] = set()
        for start in alive:
            if start in seen:
                continue
            comp = [start]
            seen.add(start)
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for nb in self._adjacency[node]:
                    if nb not in seen:
                        seen.add(nb)
                        comp.append(nb)
                        frontier.append(nb)
            components.append(sorted(comp))
        return components

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    @property
    def processors(self) -> Sequence[int]:
        """Surviving PE ids only (schedulers never see failed PEs)."""
        return self._alive

    @property
    def num_alive(self) -> int:
        return len(self._alive)

    @property
    def failed_pes(self) -> frozenset[int]:
        return self._failed_pes

    @property
    def failed_links(self) -> frozenset[tuple[int, int]]:
        return self._failed_links

    def is_alive(self, pe: int) -> bool:
        self._check_pe(pe)
        return pe not in self._failed_pes

    def _check_alive(self, pe: int) -> None:
        self._check_pe(pe)
        if pe in self._failed_pes:
            raise DeadProcessorError(
                f"pe{pe + 1} of {self.name!r} has failed"
            )

    # ------------------------------------------------------------------
    # queries rerouted through the surviving network
    # ------------------------------------------------------------------
    def hops(self, src: int, dst: int) -> int:
        self._check_alive(src)
        self._check_alive(dst)
        return int(self._distance[src, dst])

    def execution_time(self, pe: int, base_time: int) -> int:
        self._check_alive(pe)
        return base_time * self._time_scales[pe]

    @property
    def diameter(self) -> int:
        """Maximum hop distance over surviving PE pairs."""
        alive = np.array(self._alive)
        return int(self._distance[np.ix_(alive, alive)].max())

    @property
    def average_distance(self) -> float:
        """Mean hop distance over ordered distinct surviving pairs."""
        n = len(self._alive)
        if n == 1:
            return 0.0
        alive = np.array(self._alive)
        return float(self._distance[np.ix_(alive, alive)].sum()) / (n * (n - 1))

    # ------------------------------------------------------------------
    def degrade(
        self,
        *,
        failed_pes: Iterable[int] = (),
        failed_links: Iterable[tuple[int, int]] = (),
    ) -> "DegradedTopology":
        """A further-degraded copy (faults accumulate against ``base``)."""
        return DegradedTopology(
            self.base,
            failed_pes=self._failed_pes | frozenset(failed_pes),
            failed_links=self._failed_links | _canonical_links(failed_links),
        )

    def with_comm_model(self, comm_model) -> "DegradedTopology":
        return DegradedTopology(
            self.base.with_comm_model(comm_model),
            failed_pes=self._failed_pes,
            failed_links=self._failed_links,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DegradedTopology(base={self.base.name!r}, "
            f"failed_pes={sorted(self._failed_pes)}, "
            f"failed_links={sorted(self._failed_links)}, "
            f"alive={len(self._alive)}/{self.num_pes})"
        )
