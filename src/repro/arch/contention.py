"""Link-contention accounting and contention-aware pricing.

The paper assumes "the communication channels are multiple so that there
is no congestion" (§3).  This module quantifies how optimistic that
assumption is for a *given* schedule — it routes every cross-processor
transfer along its deterministic path (:func:`repro.arch.routing.route`)
and reports per-link load (:func:`link_loads`) — and, beyond analysis,
provides the machinery that lets the scheduler be *charged* for the
congestion it creates:

* :class:`LinkOccupancy` — a per-link reservation ledger for one
  steady-state iteration of an assignment, with deterministic route
  memoisation.  ``load_between(src, dst)`` is the volume already queued
  on the busiest link of the ``src -> dst`` route.
* :func:`contended_cost` — re-prices every cross-PE dependence of an
  assignment under a :class:`~repro.arch.comm.ContentionModel`, each
  transfer seeing the load of the *other* transfers on its route
  (self-exclusive, so the metric is independent of edge order).

Pricing during scheduling uses a **frozen** occupancy snapshot attached
to a :class:`~repro.arch.cache.CommCostCache`: within a run the price
of a transfer is a pure function of ``(src, dst, volume)``, so the
start-up scheduler, ``_find_spot``, the PSL tracker and the validator
all agree by construction (see ``contention_aware_schedule`` in
:mod:`repro.core.pipeline` for the two-phase flow that refreshes the
snapshot between runs).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

from repro.arch.comm import ContentionModel
from repro.arch.routing import route
from repro.arch.topology import Architecture
from repro.errors import ArchitectureError
from repro.graph.csdfg import CSDFG

__all__ = [
    "LinkLoadReport",
    "link_loads",
    "LinkOccupancy",
    "ContendedCostReport",
    "contended_cost",
]


@dataclass
class LinkLoadReport:
    """Per-link traffic of one steady-state iteration of a schedule.

    Attributes
    ----------
    loads:
        Data volume crossing each canonical undirected link per
        iteration.
    max_load:
        Largest per-link load (the congestion hotspot).
    total_traffic:
        Sum of ``volume * hops`` over all remote transfers — the total
        store-and-forward work per iteration.
    num_remote_edges:
        How many dependence edges cross processors.
    """

    loads: dict[tuple[int, int], int] = field(default_factory=dict)
    max_load: int = 0
    total_traffic: int = 0
    num_remote_edges: int = 0

    def hotspots(self, top: int = 3) -> list[tuple[tuple[int, int], int]]:
        """The ``top`` most loaded links, descending."""
        return sorted(self.loads.items(), key=lambda kv: (-kv[1], kv[0]))[:top]


def link_loads(
    graph: CSDFG,
    arch: Architecture,
    assignment: dict,
) -> LinkLoadReport:
    """Route every cross-PE dependence and accumulate per-link volume.

    Parameters
    ----------
    assignment:
        Mapping node -> PE id (e.g. ``schedule.processor_map()``).
    """
    counter: Counter[tuple[int, int]] = Counter()
    total = 0
    remote = 0
    for edge in graph.edges():
        src_pe = assignment[edge.src]
        dst_pe = assignment[edge.dst]
        if src_pe == dst_pe:
            continue
        remote += 1
        path = route(arch, src_pe, dst_pe)
        total += (len(path) - 1) * edge.volume
        for a, b in zip(path, path[1:]):
            counter[(min(a, b), max(a, b))] += edge.volume
    return LinkLoadReport(
        loads=dict(counter),
        max_load=max(counter.values(), default=0),
        total_traffic=total,
        num_remote_edges=remote,
    )


class LinkOccupancy:
    """Per-link data-volume reservations of one steady-state iteration.

    Tracks, for every canonical undirected link, the total volume the
    deterministic router sends across it, and answers
    ``load_between(src, dst)``: the heaviest reservation on any link of
    the ``src -> dst`` route — the queue a new transfer on that route
    would wait behind.  Routes are memoised per ordered PE pair, so a
    warm occupancy answers load queries without re-running the router.
    """

    __slots__ = ("arch", "_loads", "_paths")

    def __init__(self, arch: Architecture):
        self.arch = arch
        self._loads: Counter[tuple[int, int]] = Counter()
        self._paths: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}

    @classmethod
    def from_assignment(
        cls,
        graph: CSDFG,
        arch: Architecture,
        assignment: Mapping,
    ) -> "LinkOccupancy":
        """Occupancy of one iteration of ``assignment``.

        Edges whose endpoints are missing from ``assignment`` (e.g.
        evacuated nodes during fault repair) contribute nothing.
        """
        occ = cls(arch)
        for edge in graph.edges():
            src_pe = assignment.get(edge.src)
            dst_pe = assignment.get(edge.dst)
            if src_pe is None or dst_pe is None or src_pe == dst_pe:
                continue
            occ.add(src_pe, dst_pe, edge.volume)
        return occ

    def _route_links(self, src: int, dst: int) -> tuple[tuple[int, int], ...]:
        key = (src, dst)
        links = self._paths.get(key)
        if links is None:
            path = route(self.arch, src, dst)
            links = tuple(
                (min(a, b), max(a, b)) for a, b in zip(path, path[1:])
            )
            self._paths[key] = links
        return links

    def add(self, src: int, dst: int, volume: int) -> None:
        """Reserve ``volume`` on every link of the ``src -> dst`` route."""
        if volume < 1:
            raise ArchitectureError(f"volume must be >= 1, got {volume}")
        if src == dst:
            return
        for link in self._route_links(src, dst):
            self._loads[link] += volume

    def remove(self, src: int, dst: int, volume: int) -> None:
        """Release a reservation made by :meth:`add`."""
        if volume < 1:
            raise ArchitectureError(f"volume must be >= 1, got {volume}")
        if src == dst:
            return
        for link in self._route_links(src, dst):
            left = self._loads[link] - volume
            if left < 0:
                raise ArchitectureError(
                    f"releasing {volume} from link {link} holding "
                    f"{self._loads[link]}"
                )
            if left == 0:
                del self._loads[link]
            else:
                self._loads[link] = left

    def load_on(self, a: int, b: int) -> int:
        """Reserved volume on the (canonical) link ``a - b``."""
        return self._loads.get((min(a, b), max(a, b)), 0)

    def load_between(self, src: int, dst: int) -> int:
        """Heaviest reservation on the ``src -> dst`` route (0 on-PE)."""
        if src == dst:
            return 0
        links = self._route_links(src, dst)
        if not links:
            return 0
        return max(self._loads.get(link, 0) for link in links)

    @property
    def loads(self) -> dict[tuple[int, int], int]:
        """Snapshot of the per-link reservations."""
        return dict(self._loads)

    @property
    def max_load(self) -> int:
        """The heaviest single-link reservation."""
        return max(self._loads.values(), default=0)


@dataclass
class ContendedCostReport:
    """Contended re-pricing of one iteration of an assignment.

    ``base_cost`` sums the contention-free prices of all cross-PE
    transfers; ``contended_cost`` re-prices each transfer with the
    load of the *other* transfers sharing its route (self-exclusive,
    so the total does not depend on edge enumeration order).
    """

    base_cost: int = 0
    contended_cost: int = 0
    max_link_load: int = 0
    num_remote_edges: int = 0
    loads: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def congestion_penalty(self) -> int:
        """Extra control steps the contention model charges."""
        return self.contended_cost - self.base_cost

    def hotspots(self, top: int = 3) -> list[tuple[tuple[int, int], int]]:
        """The ``top`` most loaded links, descending."""
        return sorted(self.loads.items(), key=lambda kv: (-kv[1], kv[0]))[:top]


def contended_cost(
    graph: CSDFG,
    arch: Architecture,
    assignment: Mapping,
    model: ContentionModel,
) -> ContendedCostReport:
    """Evaluate an assignment's communication bill under contention.

    Each cross-PE dependence is priced by ``model`` against the volume
    the remaining traffic reserves on the busiest link of its route.
    This is the objective the contention-aware pipeline minimises and
    the acceptance metric the benchmarks pin.
    """
    occ = LinkOccupancy.from_assignment(graph, arch, assignment)
    base_total = 0
    contended_total = 0
    remote = 0
    for edge in graph.edges():
        src_pe = assignment.get(edge.src)
        dst_pe = assignment.get(edge.dst)
        if src_pe is None or dst_pe is None or src_pe == dst_pe:
            continue
        remote += 1
        base = arch.comm_cost(src_pe, dst_pe, edge.volume)
        links = occ._route_links(src_pe, dst_pe)
        others = max(
            (occ._loads.get(link, 0) - edge.volume for link in links),
            default=0,
        )
        base_total += base
        contended_total += model.price(base, others)
    return ContendedCostReport(
        base_cost=base_total,
        contended_cost=contended_total,
        max_link_load=occ.max_load,
        num_remote_edges=remote,
        loads=occ.loads,
    )
