"""Optional link-contention accounting (extension beyond the paper).

The paper assumes "the communication channels are multiple so that there
is no congestion" (§3).  This module quantifies how optimistic that
assumption is for a *given* schedule: it routes every cross-processor
transfer along its deterministic path (:func:`repro.arch.routing.route`)
and reports per-link load, the maximum congestion, and a lower bound on
the extra control steps a single-channel interconnect would need.

It does **not** change scheduling decisions — it is an analysis tool
used by the ablation benchmarks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.arch.routing import route
from repro.arch.topology import Architecture
from repro.graph.csdfg import CSDFG

__all__ = ["LinkLoadReport", "link_loads"]


@dataclass
class LinkLoadReport:
    """Per-link traffic of one steady-state iteration of a schedule.

    Attributes
    ----------
    loads:
        Data volume crossing each canonical undirected link per
        iteration.
    max_load:
        Largest per-link load (the congestion hotspot).
    total_traffic:
        Sum of ``volume * hops`` over all remote transfers — the total
        store-and-forward work per iteration.
    num_remote_edges:
        How many dependence edges cross processors.
    """

    loads: dict[tuple[int, int], int] = field(default_factory=dict)
    max_load: int = 0
    total_traffic: int = 0
    num_remote_edges: int = 0

    def hotspots(self, top: int = 3) -> list[tuple[tuple[int, int], int]]:
        """The ``top`` most loaded links, descending."""
        return sorted(self.loads.items(), key=lambda kv: (-kv[1], kv[0]))[:top]


def link_loads(
    graph: CSDFG,
    arch: Architecture,
    assignment: dict,
) -> LinkLoadReport:
    """Route every cross-PE dependence and accumulate per-link volume.

    Parameters
    ----------
    assignment:
        Mapping node -> PE id (e.g. ``schedule.processor_map()``).
    """
    counter: Counter[tuple[int, int]] = Counter()
    total = 0
    remote = 0
    for edge in graph.edges():
        src_pe = assignment[edge.src]
        dst_pe = assignment[edge.dst]
        if src_pe == dst_pe:
            continue
        remote += 1
        path = route(arch, src_pe, dst_pe)
        total += (len(path) - 1) * edge.volume
        for a, b in zip(path, path[1:]):
            counter[(min(a, b), max(a, b))] += edge.volume
    return LinkLoadReport(
        loads=dict(counter),
        max_load=max(counter.values(), default=0),
        total_traffic=total,
        num_remote_edges=remote,
    )
