"""n-cube (hypercube) topology (paper Figure 5(e)).

``2**n`` PEs; PEs are adjacent iff their ids differ in exactly one bit,
so the hop distance is the Hamming distance and the diameter is ``n``.
The paper's fifth experimental architecture is the 3-cube (8 PEs).

As a Cayley graph this is the boolean group ``Z_2^n`` (PE ids under
XOR) with the unit bit-flips as connection set; each flip is its own
inverse, so the set is trivially symmetric.
"""

from __future__ import annotations

from repro.arch.cayley import CayleyTopology
from repro.arch.comm import CommModel
from repro.errors import ArchitectureError

__all__ = ["Hypercube"]


class Hypercube(CayleyTopology):
    """An ``n``-dimensional binary hypercube (``2**n`` processors)."""

    def __init__(self, dimension: int, *, comm_model: CommModel | None = None):
        if dimension < 0:
            raise ArchitectureError(f"dimension must be >= 0, got {dimension}")
        if dimension > 16:
            raise ArchitectureError(
                f"dimension {dimension} would create {2**dimension} PEs"
            )
        self.dimension = dimension
        n = 1 << dimension
        super().__init__(
            range(n),
            lambda x, g: x ^ g,
            0,
            [1 << bit for bit in range(dimension)],
            name=f"{dimension}-cube",
            comm_model=comm_model,
        )

    def bit_label(self, pe: int) -> str:
        """Binary-string label of ``pe`` (``dimension`` bits wide)."""
        self._check_pe(pe)
        return format(pe, f"0{max(1, self.dimension)}b")
