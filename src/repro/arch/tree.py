"""Balanced-tree topology.

A complete ``branching``-ary tree with ``height`` levels of links; the
root is PE 0 and children of PE ``i`` are ``i*b + 1 .. i*b + b``.  Used
by the architecture-exploration example as a hierarchical interconnect.
"""

from __future__ import annotations

from repro.arch.comm import CommModel
from repro.arch.topology import Architecture
from repro.errors import ArchitectureError

__all__ = ["BalancedTree"]


class BalancedTree(Architecture):
    """A complete ``branching``-ary tree of depth ``height``.

    ``num_pes = (b**(h+1) - 1) / (b - 1)`` for branching ``b > 1``.
    """

    def __init__(
        self, branching: int, height: int, *, comm_model: CommModel | None = None
    ):
        if branching < 2:
            raise ArchitectureError(f"branching must be >= 2, got {branching}")
        if height < 0:
            raise ArchitectureError(f"height must be >= 0, got {height}")
        self.branching = branching
        self.height = height
        num = (branching ** (height + 1) - 1) // (branching - 1)
        links = []
        for parent in range(num):
            for k in range(1, branching + 1):
                child = parent * branching + k
                if child < num:
                    links.append((parent, child))
        super().__init__(
            num,
            links,
            name=f"tree{branching}^{height}",
            comm_model=comm_model,
        )

    @property
    def root(self) -> int:
        """The root processor id."""
        return 0

    def parent(self, pe: int) -> int | None:
        """Parent PE of ``pe`` (``None`` for the root)."""
        self._check_pe(pe)
        return None if pe == 0 else (pe - 1) // self.branching
