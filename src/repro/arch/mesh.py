"""2-D mesh topology (paper Figure 5(d)).

``rows x cols`` PEs on a grid with 4-neighbour links; interior nodes
have degree 4, edges 3, corners 2.  Hop distance is the Manhattan
distance between grid coordinates.  PE ids are row-major:
``pe = r * cols + c``.
"""

from __future__ import annotations

from repro.arch.comm import CommModel
from repro.arch.topology import Architecture
from repro.errors import ArchitectureError, UnknownProcessorError

__all__ = ["Mesh2D"]


class Mesh2D(Architecture):
    """A ``rows x cols`` two-dimensional mesh."""

    def __init__(
        self, rows: int, cols: int, *, comm_model: CommModel | None = None
    ):
        if rows < 1 or cols < 1:
            raise ArchitectureError(f"mesh dimensions must be >= 1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        links: list[tuple[int, int]] = []
        for r in range(rows):
            for c in range(cols):
                pe = r * cols + c
                if c + 1 < cols:
                    links.append((pe, pe + 1))
                if r + 1 < rows:
                    links.append((pe, pe + cols))
        super().__init__(
            rows * cols,
            links,
            name=f"mesh{rows}x{cols}",
            comm_model=comm_model,
        )

    def coordinates(self, pe: int) -> tuple[int, int]:
        """Grid coordinates ``(row, col)`` of ``pe``."""
        if not (0 <= pe < self.num_pes):
            raise UnknownProcessorError(f"PE {pe} outside mesh {self.name}")
        return divmod(pe, self.cols)

    def pe_at(self, row: int, col: int) -> int:
        """PE id at grid position ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise UnknownProcessorError(f"({row},{col}) outside mesh {self.name}")
        return row * self.cols + col
