"""Custom architectures from explicit link lists or adjacency mappings.

Lets users model irregular interconnects (multi-chip boards, partially
populated meshes).  Includes a small serialization format so custom
architectures can live next to workload files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.arch.comm import (
    CommModel,
    ConstantLatencyModel,
    StoreAndForwardModel,
    WormholeModel,
    ZeroCommModel,
)
from repro.arch.topology import Architecture
from repro.errors import ArchitectureError

__all__ = [
    "CustomArchitecture",
    "from_adjacency",
    "save_architecture",
    "load_architecture",
]


class CustomArchitecture(Architecture):
    """An architecture defined by an explicit undirected link list."""

    def __init__(
        self,
        num_pes: int,
        links: Iterable[tuple[int, int]],
        *,
        name: str = "custom",
        comm_model: CommModel | None = None,
    ):
        super().__init__(num_pes, links, name=name, comm_model=comm_model)


def from_adjacency(
    adjacency: Mapping[int, Iterable[int]],
    *,
    name: str = "custom",
    comm_model: CommModel | None = None,
) -> CustomArchitecture:
    """Build from an adjacency mapping ``{pe: [neighbours...]}``.

    PE ids must be ``0..n-1`` where ``n`` is the largest mentioned id
    plus one; the adjacency may be one-directional (links are
    symmetrised).
    """
    if not adjacency:
        raise ArchitectureError("empty adjacency")
    num = max(
        [max(adjacency.keys(), default=0)]
        + [max(v, default=0) for v in map(list, adjacency.values())]
    ) + 1
    links = [(a, b) for a, nbrs in adjacency.items() for b in nbrs]
    return CustomArchitecture(num, links, name=name, comm_model=comm_model)


_COMM_BY_NAME = {
    "store-and-forward": StoreAndForwardModel,
    "wormhole": WormholeModel,
    "zero": ZeroCommModel,
}


def save_architecture(arch: Architecture, path: str | Path) -> None:
    """Persist an architecture (topology + comm model) as JSON."""
    payload: dict[str, Any] = {
        "format": "repro-arch",
        "name": arch.name,
        "num_pes": arch.num_pes,
        "links": [list(link) for link in arch.links],
        "comm_model": arch.comm_model.name,
    }
    if isinstance(arch.comm_model, ConstantLatencyModel):
        payload["comm_latency"] = arch.comm_model.latency
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_architecture(path: str | Path) -> CustomArchitecture:
    """Load an architecture written by :func:`save_architecture`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-arch":
        raise ArchitectureError("not a repro-arch JSON payload")
    comm_name = payload.get("comm_model", "store-and-forward")
    comm: CommModel
    if comm_name == "constant":
        comm = ConstantLatencyModel(payload.get("comm_latency", 1))
    elif comm_name in _COMM_BY_NAME:
        comm = _COMM_BY_NAME[comm_name]()
    else:
        raise ArchitectureError(f"unknown comm model {comm_name!r}")
    return CustomArchitecture(
        payload["num_pes"],
        [tuple(link) for link in payload["links"]],
        name=payload.get("name", "custom"),
        comm_model=comm,
    )
