"""Ring topology (paper Figure 5(b)).

A linear array whose terminal PEs are joined; every PE has degree 2 and
the diameter halves to ``floor(N / 2)``.  The paper uses bidirectional
channels; messages take the shorter way around.

The ring is the smallest Cayley graph in the zoo: the cyclic group
``Z_n`` with connection set ``{+1, -1}`` — i.e. a
:class:`~repro.arch.cayley.Circulant` with the single step ``1``.
"""

from __future__ import annotations

from repro.arch.cayley import Circulant
from repro.arch.comm import CommModel
from repro.errors import ArchitectureError

__all__ = ["Ring"]


class Ring(Circulant):
    """A bidirectional ring of ``num_pes`` processors (``num_pes >= 3``;
    a 2-ring would duplicate its single link)."""

    def __init__(self, num_pes: int, *, comm_model: CommModel | None = None):
        if num_pes < 3:
            raise ArchitectureError(f"a ring needs >= 3 PEs, got {num_pes}")
        super().__init__(
            num_pes,
            steps=(1,),
            comm_model=comm_model,
            name=f"ring{num_pes}",
        )
