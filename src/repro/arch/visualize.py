"""ASCII diagrams of architectures (paper Figures 5 and 8).

Text renderings for reports and teaching: meshes/tori draw the grid,
linear arrays and rings the chain, hypercubes the bit-labelled node
list, everything else a generic adjacency listing.  A schedule's
processor load can be overlaid to visualise mapping decisions.
"""

from __future__ import annotations

from repro.arch.hypercube import Hypercube
from repro.arch.linear import LinearArray
from repro.arch.mesh import Mesh2D
from repro.arch.ring import Ring
from repro.arch.topology import Architecture
from repro.arch.torus import Torus2D

__all__ = ["render_architecture", "render_processor_load"]


def render_architecture(arch: Architecture) -> str:
    """A text diagram of ``arch``'s topology."""
    if isinstance(arch, Mesh2D):
        return _render_grid(arch, wrap=False)
    if isinstance(arch, Torus2D):
        return _render_grid(arch, wrap=True)
    if isinstance(arch, LinearArray):
        return _render_chain(arch, closed=False)
    if isinstance(arch, Ring):
        return _render_chain(arch, closed=True)
    if isinstance(arch, Hypercube):
        return _render_hypercube(arch)
    return _render_generic(arch)


def _pe(num: int) -> str:
    return f"pe{num + 1}"


def _render_grid(arch, wrap: bool) -> str:
    width = len(_pe(arch.num_pes - 1))
    lines = [f"{arch.name}:"]
    for r in range(arch.rows):
        cells = [
            _pe(r * arch.cols + c).ljust(width) for c in range(arch.cols)
        ]
        row = " -- ".join(cells)
        if wrap:
            row = "~ " + row + " ~"
        lines.append("  " + row)
        if r + 1 < arch.rows:
            bar = ("|".ljust(width + 4) * arch.cols).rstrip()
            lines.append("  " + ("  " if wrap else "") + bar)
    if wrap:
        lines.append("  (~ marks wrap-around links in both dimensions)")
    return "\n".join(lines)


def _render_chain(arch, closed: bool) -> str:
    chain = " -- ".join(_pe(p) for p in arch.processors)
    if closed:
        chain = chain + f" -- ({_pe(0)})"
    return f"{arch.name}:\n  {chain}"


def _render_hypercube(arch: Hypercube) -> str:
    lines = [f"{arch.name} (nodes adjacent iff labels differ in one bit):"]
    for p in arch.processors:
        neighbours = ", ".join(_pe(q) for q in arch.neighbors(p))
        lines.append(f"  {_pe(p)} [{arch.bit_label(p)}] -- {neighbours}")
    return "\n".join(lines)


def _render_generic(arch: Architecture) -> str:
    lines = [f"{arch.name} ({arch.num_pes} PEs, {len(arch.links)} links):"]
    for p in arch.processors:
        neighbours = ", ".join(_pe(q) for q in arch.neighbors(p))
        lines.append(f"  {_pe(p)} -- {neighbours if neighbours else '(isolated)'}")
    return "\n".join(lines)


def render_processor_load(arch: Architecture, schedule) -> str:
    """Per-PE busy-control-step bars for a schedule on ``arch``."""
    lines = [f"processor load ({schedule.name}, L={schedule.length}):"]
    for p in arch.processors:
        busy = sum(pl.occupancy for pl in schedule.pe_tasks(p))
        bar = "#" * busy + "." * max(0, schedule.length - busy)
        tasks = ",".join(str(pl.node) for pl in schedule.pe_tasks(p))
        lines.append(f"  {_pe(p):5s} |{bar}| {tasks}")
    return "\n".join(lines)
