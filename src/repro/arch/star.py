"""Star topology: one hub PE linked to every leaf.

An extension architecture (host + accelerator farm); the hub is PE 0.
Any leaf-to-leaf transfer pays 2 hops through the hub.
"""

from __future__ import annotations

from repro.arch.comm import CommModel
from repro.arch.topology import Architecture
from repro.errors import ArchitectureError

__all__ = ["Star"]


class Star(Architecture):
    """A hub-and-spoke topology of ``num_pes`` processors (PE 0 hub)."""

    def __init__(self, num_pes: int, *, comm_model: CommModel | None = None):
        if num_pes < 2:
            raise ArchitectureError(f"a star needs >= 2 PEs, got {num_pes}")
        links = [(0, leaf) for leaf in range(1, num_pes)]
        super().__init__(
            num_pes,
            links,
            name=f"star{num_pes}",
            comm_model=comm_model,
        )

    @property
    def hub(self) -> int:
        """The center processor id."""
        return 0
