"""Completely connected topology (paper Figure 5(c)).

Every PE reaches every other PE through one link, so the store-and-
forward cost degenerates to the bare data volume.  This is the
architecture assumed by the authors' earlier communication-sensitive
rotation scheduling (ICCD'94) and is the best case of Table 11.
"""

from __future__ import annotations

from repro.arch.comm import CommModel
from repro.arch.topology import Architecture

__all__ = ["CompletelyConnected"]


class CompletelyConnected(Architecture):
    """A clique of ``num_pes`` processors."""

    def __init__(self, num_pes: int, *, comm_model: CommModel | None = None):
        links = [
            (i, j) for i in range(num_pes) for j in range(i + 1, num_pes)
        ]
        super().__init__(
            num_pes,
            links,
            name=f"complete{num_pes}",
            comm_model=comm_model,
        )
