"""Named architecture factory and the paper's experimental set.

The paper evaluates five 8-PE architectures (Figure 8): linear array,
ring, completely connected, 2-D mesh and 3-cube.
:func:`paper_architectures` builds exactly that set;
:func:`make_architecture` resolves string names (handy for CLI-style
experiment drivers).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.arch.cayley import (
    BubbleSortGraph,
    Circulant,
    PancakeGraph,
    StarGraph,
    _permutation_order,
)
from repro.arch.comm import CommModel
from repro.arch.complete import CompletelyConnected
from repro.arch.hypercube import Hypercube
from repro.arch.linear import LinearArray
from repro.arch.mesh import Mesh2D
from repro.arch.ring import Ring
from repro.arch.star import Star
from repro.arch.topology import Architecture
from repro.arch.torus import Torus2D
from repro.arch.tree import BalancedTree
from repro.errors import ArchitectureError

__all__ = ["make_architecture", "paper_architectures", "ARCHITECTURE_KINDS"]


def _mesh_shape(num_pes: int) -> tuple[int, int]:
    """Most-square ``rows x cols`` factorisation of ``num_pes``."""
    best = (1, num_pes)
    for rows in range(1, int(math.isqrt(num_pes)) + 1):
        if num_pes % rows == 0:
            best = (rows, num_pes // rows)
    return best


def _make_mesh(num_pes: int, comm_model: CommModel | None) -> Mesh2D:
    rows, cols = _mesh_shape(num_pes)
    return Mesh2D(rows, cols, comm_model=comm_model)


def _make_torus(num_pes: int, comm_model: CommModel | None) -> Torus2D:
    rows, cols = _mesh_shape(num_pes)
    return Torus2D(rows, cols, comm_model=comm_model)


def _make_hypercube(num_pes: int, comm_model: CommModel | None) -> Hypercube:
    dim = num_pes.bit_length() - 1
    if 1 << dim != num_pes:
        raise ArchitectureError(f"hypercube needs a power-of-two PE count, got {num_pes}")
    return Hypercube(dim, comm_model=comm_model)


def _make_tree(num_pes: int, comm_model: CommModel | None) -> BalancedTree:
    # binary tree with enough levels, truncated is not supported: require
    # num_pes == 2**(h+1) - 1
    height = num_pes.bit_length() - 1
    if 2 ** (height + 1) - 1 != num_pes:
        raise ArchitectureError(
            f"balanced binary tree needs 2**k - 1 PEs, got {num_pes}"
        )
    return BalancedTree(2, height, comm_model=comm_model)


def _make_star_graph(num_pes: int, comm_model: CommModel | None) -> StarGraph:
    return StarGraph(
        _permutation_order(num_pes, "cayley-star"), comm_model=comm_model
    )


def _make_bubble(num_pes: int, comm_model: CommModel | None) -> BubbleSortGraph:
    return BubbleSortGraph(
        _permutation_order(num_pes, "cayley-bubble"), comm_model=comm_model
    )


def _make_pancake(num_pes: int, comm_model: CommModel | None) -> PancakeGraph:
    return PancakeGraph(
        _permutation_order(num_pes, "pancake"), comm_model=comm_model
    )


ARCHITECTURE_KINDS: dict[str, Callable[[int, CommModel | None], Architecture]] = {
    "linear": lambda n, cm: LinearArray(n, comm_model=cm),
    "ring": lambda n, cm: Ring(n, comm_model=cm),
    "complete": lambda n, cm: CompletelyConnected(n, comm_model=cm),
    "mesh": _make_mesh,
    "torus": _make_torus,
    "hypercube": _make_hypercube,
    "star": lambda n, cm: Star(n, comm_model=cm),
    "tree": _make_tree,
    # Cayley family (repro.arch.cayley): vertex-transitive machines
    # built from group presentations.
    "circulant": lambda n, cm: Circulant(n, comm_model=cm),
    "cayley-star": _make_star_graph,
    "cayley-bubble": _make_bubble,
    "pancake": _make_pancake,
}


def make_architecture(
    kind: str, num_pes: int, *, comm_model: CommModel | None = None
) -> Architecture:
    """Build an architecture by kind name.

    ``kind`` is one of :data:`ARCHITECTURE_KINDS`
    (``linear, ring, complete, mesh, torus, hypercube, star, tree``
    plus the Cayley family ``circulant, cayley-star, cayley-bubble,
    pancake``).  Meshes/tori use the most-square factorisation of
    ``num_pes``; the permutation-group kinds need a factorial PE count.
    """
    try:
        factory = ARCHITECTURE_KINDS[kind]
    except KeyError:
        raise ArchitectureError(
            f"unknown architecture kind {kind!r}; known: {sorted(ARCHITECTURE_KINDS)}"
        ) from None
    return factory(num_pes, comm_model)


def paper_architectures(
    num_pes: int = 8, *, comm_model: CommModel | None = None
) -> dict[str, Architecture]:
    """The paper's five experimental architectures (Figure 8), keyed by
    the paper's Table 11 column labels.

    With the default ``num_pes=8`` these are: completely connected
    (``com``), linear array (``lin``), ring (``rin``), 2x4 mesh
    (``2-d``) and 3-cube (``hyp``).
    """
    return {
        "com": make_architecture("complete", num_pes, comm_model=comm_model),
        "lin": make_architecture("linear", num_pes, comm_model=comm_model),
        "rin": make_architecture("ring", num_pes, comm_model=comm_model),
        "2-d": make_architecture("mesh", num_pes, comm_model=comm_model),
        "hyp": make_architecture("hypercube", num_pes, comm_model=comm_model),
    }
