"""Architecture base class: processors, links, hop distances, comm cost.

An :class:`Architecture` is an undirected connected graph of processing
elements (PEs).  Hop distances (shortest path link counts) are computed
once with a vectorised multi-source BFS and cached in a dense numpy
matrix — the scheduling inner loop calls :meth:`Architecture.hops`
millions of times.

Processor ids are 0-based integers internally; renderings add 1 to match
the paper's ``pe1..peN`` convention.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.arch.comm import CommModel, StoreAndForwardModel
from repro.errors import ArchitectureError, UnknownProcessorError

__all__ = ["Architecture"]


class Architecture:
    """A multiprocessor topology plus a communication cost model.

    Parameters
    ----------
    num_pes:
        Number of processing elements (>= 1).
    links:
        Undirected PE pairs.  The resulting graph must be connected.
    name:
        Label used in reports.
    comm_model:
        Cost model mapping (hops, volume) to control steps; defaults to
        the paper's store-and-forward model.
    time_scales:
        Optional per-PE execution-time multipliers (heterogeneous
        machines, an extension beyond the paper): a task with base time
        ``t`` needs ``t * time_scales[pe]`` control steps on ``pe``.
        Defaults to all ones (homogeneous).
    """

    def __init__(
        self,
        num_pes: int,
        links: Iterable[tuple[int, int]],
        *,
        name: str = "custom",
        comm_model: CommModel | None = None,
        time_scales: Sequence[int] | None = None,
    ):
        if num_pes < 1:
            raise ArchitectureError(f"need at least one PE, got {num_pes}")
        self.name = name
        self.num_pes = int(num_pes)
        self.comm_model: CommModel = (
            comm_model if comm_model is not None else StoreAndForwardModel()
        )
        if time_scales is None:
            self._time_scales: tuple[int, ...] = (1,) * num_pes
        else:
            scales = tuple(int(s) for s in time_scales)
            if len(scales) != num_pes:
                raise ArchitectureError(
                    f"need {num_pes} time scales, got {len(scales)}"
                )
            if any(s < 1 for s in scales):
                raise ArchitectureError("time scales must be >= 1")
            self._time_scales = scales
        adj: list[set[int]] = [set() for _ in range(num_pes)]
        canonical: set[tuple[int, int]] = set()
        for a, b in links:
            self._check_pe(a)
            self._check_pe(b)
            if a == b:
                raise ArchitectureError(f"self-link on PE {a}")
            adj[a].add(b)
            adj[b].add(a)
            canonical.add((min(a, b), max(a, b)))
        self._adjacency: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in adj
        )
        self._links: tuple[tuple[int, int], ...] = tuple(sorted(canonical))
        self._distance = self._all_pairs_hops()
        if np.any(self._distance < 0):
            raise ArchitectureError(f"architecture {name!r} is not connected")

    # ------------------------------------------------------------------
    def _check_pe(self, pe: int) -> None:
        if not (0 <= pe < self.num_pes):
            raise UnknownProcessorError(
                f"PE {pe} outside 0..{self.num_pes - 1} of {self.name!r}"
            )

    def _all_pairs_hops(self) -> np.ndarray:
        """All-pairs hop counts via per-source BFS over the adjacency.

        Returns an ``(n, n)`` int matrix; unreachable pairs are -1
        (rejected by the constructor).
        """
        n = self.num_pes
        dist = np.full((n, n), -1, dtype=np.int64)
        for src in range(n):
            row = dist[src]
            row[src] = 0
            frontier = [src]
            depth = 0
            while frontier:
                depth += 1
                nxt: list[int] = []
                for node in frontier:
                    for nb in self._adjacency[node]:
                        if row[nb] < 0:
                            row[nb] = depth
                            nxt.append(nb)
                frontier = nxt
        return dist

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def processors(self) -> Sequence[int]:
        """Iterable of *usable* PE ids (0-based).  Degraded topologies
        override this to yield surviving processors only."""
        return range(self.num_pes)

    def is_alive(self, pe: int) -> bool:
        """Whether ``pe`` may execute tasks (always true on a healthy
        machine; degraded topologies report failed PEs)."""
        self._check_pe(pe)
        return True

    @property
    def links(self) -> tuple[tuple[int, int], ...]:
        """Canonical undirected link list (a < b)."""
        return self._links

    def neighbors(self, pe: int) -> tuple[int, ...]:
        """PEs one link away from ``pe``."""
        self._check_pe(pe)
        return self._adjacency[pe]

    def degree(self, pe: int) -> int:
        self._check_pe(pe)
        return len(self._adjacency[pe])

    def hops(self, src: int, dst: int) -> int:
        """Shortest-path link count between two PEs."""
        self._check_pe(src)
        self._check_pe(dst)
        return int(self._distance[src, dst])

    @property
    def distance_matrix(self) -> np.ndarray:
        """Read-only ``(n, n)`` hop-count matrix."""
        view = self._distance.view()
        view.setflags(write=False)
        return view

    @property
    def diameter(self) -> int:
        """Maximum hop distance over all PE pairs."""
        return int(self._distance.max())

    @property
    def average_distance(self) -> float:
        """Mean hop distance over ordered distinct PE pairs."""
        n = self.num_pes
        if n == 1:
            return 0.0
        return float(self._distance.sum()) / (n * (n - 1))

    def comm_cost(self, src: int, dst: int, volume: int) -> int:
        """The paper's ``M(p_src, p_dst)``: cost of shipping ``volume``
        units from ``src`` to ``dst`` (0 when ``src == dst``)."""
        return self.comm_model.cost(self.hops(src, dst), volume)

    @property
    def time_scales(self) -> tuple[int, ...]:
        """Per-PE execution-time multipliers (all ones when
        homogeneous)."""
        return self._time_scales

    @property
    def is_heterogeneous(self) -> bool:
        """True when some PE runs at a different speed."""
        return len(set(self._time_scales)) > 1

    def execution_time(self, pe: int, base_time: int) -> int:
        """Control steps a ``base_time`` task needs on ``pe``."""
        self._check_pe(pe)
        return base_time * self._time_scales[pe]

    # ------------------------------------------------------------------
    def with_comm_model(self, comm_model: CommModel) -> "Architecture":
        """A copy of this architecture under a different cost model."""
        return Architecture(
            self.num_pes,
            self._links,
            name=self.name,
            comm_model=comm_model,
            time_scales=self._time_scales,
        )

    def with_time_scales(self, time_scales: Sequence[int]) -> "Architecture":
        """A copy of this topology with per-PE speed multipliers."""
        return Architecture(
            self.num_pes,
            self._links,
            name=f"{self.name}-hetero",
            comm_model=self.comm_model,
            time_scales=time_scales,
        )

    def is_isomorphic_to(self, other: "Architecture") -> bool:
        """Topology isomorphism test (delegates to networkx VF2)."""
        import networkx as nx

        return nx.is_isomorphic(self.to_networkx(), other.to_networkx())

    def to_networkx(self):
        """The underlying undirected link graph as ``networkx.Graph``."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(self.processors)
        g.add_edges_from(self._links)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Architecture(name={self.name!r}, num_pes={self.num_pes}, "
            f"links={len(self._links)}, comm={self.comm_model.name})"
        )
