"""Architecture substrate: topologies, communication models, routing.

The paper's five experimental architectures (linear array, ring,
completely connected, 2-D mesh, n-cube) plus extensions (torus, star,
balanced tree, custom link lists).  Distances are store-and-forward hop
counts by default; see :mod:`repro.arch.comm` for alternative cost
models.
"""

from repro.arch.cache import CommCostCache
from repro.arch.cayley import (
    BubbleSortGraph,
    CayleyTopology,
    Circulant,
    PancakeGraph,
    StarGraph,
)
from repro.arch.comm import (
    CONTENTION_MODELS,
    CommModel,
    ConstantLatencyModel,
    ContentionModel,
    NoContention,
    ScaledContention,
    SerializedContention,
    StoreAndForwardModel,
    WormholeModel,
    ZeroCommModel,
    make_contention_model,
)
from repro.arch.complete import CompletelyConnected
from repro.arch.contention import (
    ContendedCostReport,
    LinkLoadReport,
    LinkOccupancy,
    contended_cost,
    link_loads,
)
from repro.arch.custom import (
    CustomArchitecture,
    from_adjacency,
    load_architecture,
    save_architecture,
)
from repro.arch.degraded import DegradedTopology
from repro.arch.hypercube import Hypercube
from repro.arch.linear import LinearArray
from repro.arch.mesh import Mesh2D
from repro.arch.registry import (
    ARCHITECTURE_KINDS,
    make_architecture,
    paper_architectures,
)
from repro.arch.ring import Ring
from repro.arch.routing import ecube_route, route, shortest_path, xy_route
from repro.arch.star import Star
from repro.arch.topology import Architecture
from repro.arch.torus import Torus2D
from repro.arch.visualize import render_architecture, render_processor_load
from repro.arch.tree import BalancedTree

__all__ = [
    "ARCHITECTURE_KINDS",
    "Architecture",
    "BalancedTree",
    "BubbleSortGraph",
    "CONTENTION_MODELS",
    "CayleyTopology",
    "Circulant",
    "CommCostCache",
    "CommModel",
    "CompletelyConnected",
    "ConstantLatencyModel",
    "ContendedCostReport",
    "ContentionModel",
    "CustomArchitecture",
    "DegradedTopology",
    "Hypercube",
    "LinearArray",
    "LinkLoadReport",
    "LinkOccupancy",
    "Mesh2D",
    "NoContention",
    "PancakeGraph",
    "Ring",
    "ScaledContention",
    "SerializedContention",
    "Star",
    "StarGraph",
    "StoreAndForwardModel",
    "Torus2D",
    "WormholeModel",
    "ZeroCommModel",
    "contended_cost",
    "ecube_route",
    "from_adjacency",
    "link_loads",
    "load_architecture",
    "make_architecture",
    "make_contention_model",
    "paper_architectures",
    "render_architecture",
    "render_processor_load",
    "route",
    "save_architecture",
    "shortest_path",
    "xy_route",
]
