"""Hierarchical wall-time spans (context-manager API).

Usage::

    from repro.obs import span

    with span("remap", pass_index=3) as sp:
        ...
        sp.add(slots_scanned=n)   # attach counters discovered mid-span

With no sink installed :func:`span` returns a shared no-op handle —
the only cost at an instrumented call site is one flag check — so the
library's hot paths are safe to annotate densely.  With a sink
installed, each span emits one event **on exit**::

    {"type": "span", "name": str, "start_ns": int, "dur_ns": int,
     "depth": int, "attrs": dict}

``start_ns`` comes from :func:`time.perf_counter_ns` (monotonic;
meaningful only relative to other spans of the same process), ``depth``
is the nesting level at entry (0 == top level).  Exporters rebuild the
hierarchy from (start, duration, depth) — see :mod:`repro.obs.export`.
"""

from __future__ import annotations

from time import perf_counter_ns

from repro.obs import runtime

__all__ = ["span", "Span", "NO_OP_SPAN"]

_depth = 0


class Span:
    """A live span: times its ``with`` block and emits on exit."""

    __slots__ = ("name", "attrs", "start_ns", "dur_ns", "depth")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.start_ns = 0
        self.dur_ns = 0
        self.depth = 0

    def add(self, **attrs) -> None:
        """Merge extra attributes into the span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        global _depth
        self.depth = _depth
        _depth += 1
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _depth
        self.dur_ns = perf_counter_ns() - self.start_ns
        _depth = self.depth
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        runtime.emit(
            {
                "type": "span",
                "name": self.name,
                "start_ns": self.start_ns,
                "dur_ns": self.dur_ns,
                "depth": self.depth,
                "attrs": self.attrs,
            }
        )


class _NoopSpan:
    """Shared do-nothing handle returned while observability is off."""

    __slots__ = ()

    def add(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NO_OP_SPAN = _NoopSpan()


def span(name: str, **attrs):
    """Open a span named ``name`` (no-op unless a sink is installed)."""
    if not runtime._enabled:
        return NO_OP_SPAN
    return Span(name, attrs)
