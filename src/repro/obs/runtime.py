"""Process-wide observability state: the sink registry.

Observability is **off by default**: with no sink installed every
instrumentation call in the library (``span(...)``, ``metrics.inc(...)``)
degenerates to a single flag check, so tier-1 timings are unaffected.
Installing a sink flips the flag; everything the instrumented code
emits — span events, metric updates — flows to every installed sink.

The registry is deliberately module-global (one process, one pipeline
run) and not thread-safe: the optimiser is single-threaded and the
instrumentation inherits that assumption.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "enabled",
    "install_sink",
    "remove_sink",
    "remove_all_sinks",
    "installed_sinks",
    "emit",
    "sink_installed",
]

_sinks: list = []
_enabled: bool = False  # cached `bool(_sinks)`, read on every hot-path call


def enabled() -> bool:
    """True when at least one sink is installed (instrumentation live)."""
    return _enabled


def install_sink(sink) -> None:
    """Register ``sink`` (any :class:`~repro.obs.sinks.EventSink`)."""
    global _enabled
    if sink not in _sinks:
        _sinks.append(sink)
    _enabled = True


def remove_sink(sink) -> None:
    """Unregister ``sink``; unknown sinks are ignored."""
    global _enabled
    try:
        _sinks.remove(sink)
    except ValueError:
        pass
    _enabled = bool(_sinks)


def remove_all_sinks() -> None:
    """Drop every installed sink (test isolation helper)."""
    global _enabled
    _sinks.clear()
    _enabled = False


def installed_sinks() -> tuple:
    """The currently installed sinks (snapshot)."""
    return tuple(_sinks)


def emit(event: dict) -> None:
    """Deliver ``event`` to every installed sink."""
    for sink in _sinks:
        sink.emit(event)


@contextmanager
def sink_installed(sink) -> Iterator:
    """Scope-install ``sink``; removed (and closed) on exit."""
    install_sink(sink)
    try:
        yield sink
    finally:
        remove_sink(sink)
        close = getattr(sink, "close", None)
        if close is not None:
            close()
