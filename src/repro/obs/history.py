"""The append-only run-history store (``repro.obs.history``).

One NDJSON file per run *kind* (``schedule``, ``sweep``, ``fuzz``,
``bench``, ``gate`` …) under a history directory, one provenance-stamped
:class:`RunRecord` per line.  The store never rewrites a line: records
accumulate across sessions, so ``repro obs regressions`` can fit a
baseline from genuinely historical data and ``repro obs diff`` can
compare any two runs or windows.

Design rules (all load-bearing for tests and the CI gate):

* **Provenance** — every record carries the engine version
  (``repro.__version__``) and a ``config_hash`` (sha256 of the
  canonical-JSON config), so a baseline is only fit from runs of the
  same code + configuration + workload + topology.
* **Byte stability** — serialization is sorted-key, separator-pinned
  JSON with floats rounded to fixed precision; a record built from the
  same inputs and the same clock value is byte-identical.  The clock is
  injectable (``clock=``) precisely so tests can pin it.
* **Zero dependencies** — stdlib only, like the rest of ``repro.obs``
  (pinned by ``tests/unit/test_obs_stdlib.py``).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.errors import ReproError

__all__ = [
    "DEFAULT_HISTORY_DIR",
    "HistoryError",
    "RunRecord",
    "HistoryStore",
    "config_hash",
    "engine_version",
    "load_records",
]

#: Where the CLI appends history unless ``--history-dir`` says otherwise.
DEFAULT_HISTORY_DIR = Path("benchmarks/out/history")

#: Float fields are rounded to this many decimals before serialization
#: so a record's bytes do not depend on platform float repr quirks.
_FLOAT_DECIMALS = 6


class HistoryError(ReproError):
    """A malformed history record or an unusable history directory."""


def engine_version() -> str:
    """The engine version stamped into every record."""
    import repro

    return repro.__version__


def config_hash(config: dict | None) -> str:
    """sha256 of the canonical-JSON form of a config mapping.

    Key order, whitespace and float repr are pinned, so two configs
    with equal content always hash identically.  ``None`` (no config)
    hashes the empty object.
    """
    payload = json.dumps(
        config or {}, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _round_floats(value):
    if isinstance(value, float):
        return round(value, _FLOAT_DECIMALS)
    if isinstance(value, dict):
        return {k: _round_floats(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(v) for v in value]
    return value


@dataclass(frozen=True)
class RunRecord:
    """One provenance-stamped run in the history.

    Attributes
    ----------
    kind:
        What produced the record: ``"schedule"``, ``"sweep"``,
        ``"fuzz"``, ``"bench"``, ``"gate"`` …
    workload / arch:
        Graph name and architecture name — together with ``kind`` and
        ``config_hash`` they form the baseline grouping key.
    config_hash:
        sha256 of the canonical config JSON (:func:`config_hash`).
    engine_version:
        ``repro.__version__`` at record time.
    timestamp:
        Seconds since the epoch (from the injected clock).
    duration_seconds:
        Total wall-clock of the run — the value the regression detector
        fits its baseline over.
    phases:
        Wall-clock seconds per optimiser phase
        (``{"startup": ..., "rotate": ..., ...}``).
    counters:
        Key counters snapshot (plain ``name -> int``).
    attrs:
        Free-form extras (schedule lengths, trial counts, seeds …).
    """

    kind: str
    workload: str
    arch: str
    config_hash: str
    engine_version: str
    timestamp: float
    duration_seconds: float
    phases: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    attrs: dict = field(default_factory=dict)

    def key(self) -> tuple[str, str, str, str]:
        """The baseline grouping key: runs are only comparable within
        one (kind, workload, arch, config_hash) group."""
        return (self.kind, self.workload, self.arch, self.config_hash)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "workload": self.workload,
            "arch": self.arch,
            "config_hash": self.config_hash,
            "engine_version": self.engine_version,
            "timestamp": _round_floats(self.timestamp),
            "duration_seconds": _round_floats(self.duration_seconds),
            "phases": _round_floats(self.phases),
            "counters": self.counters,
            "attrs": _round_floats(self.attrs),
        }

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, pinned separators):
        byte-stable given equal field values."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        try:
            return cls(
                kind=data["kind"],
                workload=data["workload"],
                arch=data["arch"],
                config_hash=data["config_hash"],
                engine_version=data["engine_version"],
                timestamp=data["timestamp"],
                duration_seconds=data["duration_seconds"],
                phases=dict(data.get("phases", {})),
                counters=dict(data.get("counters", {})),
                attrs=dict(data.get("attrs", {})),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise HistoryError(f"malformed history record: {exc}") from exc


class HistoryStore:
    """Append-only NDJSON store under one directory.

    Parameters
    ----------
    root:
        The history directory (created on first append).
    clock:
        Timestamp source (defaults to ``time.time``); injectable so
        tests can pin record bytes.
    """

    def __init__(
        self,
        root: str | Path = DEFAULT_HISTORY_DIR,
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.root = Path(root)
        self.clock = clock

    def _file(self, kind: str) -> Path:
        if not kind or "/" in kind or "\\" in kind or kind.startswith("."):
            raise HistoryError(f"invalid history kind {kind!r}")
        return self.root / f"{kind}.ndjson"

    def record(
        self,
        kind: str,
        *,
        workload: str,
        arch: str,
        config: dict | None = None,
        duration_seconds: float,
        phases: dict | None = None,
        counters: dict | None = None,
        attrs: dict | None = None,
    ) -> RunRecord:
        """Build a provenance-stamped record and append it."""
        rec = RunRecord(
            kind=kind,
            workload=workload,
            arch=arch,
            config_hash=config_hash(config),
            engine_version=engine_version(),
            timestamp=self.clock(),
            duration_seconds=duration_seconds,
            phases=dict(phases or {}),
            counters=dict(counters or {}),
            attrs=dict(attrs or {}),
        )
        self.append(rec)
        return rec

    def append(self, record: RunRecord) -> Path:
        """Append one record to its kind's NDJSON file."""
        target = self._file(record.kind)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("a", encoding="utf-8") as fh:
            fh.write(record.to_json() + "\n")
        return target

    def kinds(self) -> list[str]:
        """Record kinds present in the store, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.ndjson"))

    def load(self, kind: str | None = None) -> list[RunRecord]:
        """All records (of one kind, or every kind) in append order."""
        kinds = [kind] if kind is not None else self.kinds()
        out: list[RunRecord] = []
        for k in kinds:
            path = self._file(k)
            if path.is_file():
                out.extend(_read_ndjson(path))
        return out

    def __len__(self) -> int:
        return len(self.load())


def _read_ndjson(path: Path) -> Iterator[RunRecord]:
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise HistoryError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from exc
        yield RunRecord.from_dict(data)


def load_records(paths: Iterable[str | Path]) -> list[RunRecord]:
    """Load records from explicit NDJSON files and/or history dirs."""
    out: list[RunRecord] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            out.extend(HistoryStore(p).load())
        elif p.is_file():
            out.extend(_read_ndjson(p))
        else:
            raise HistoryError(f"no such history file or directory: {entry}")
    return out
