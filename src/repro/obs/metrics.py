"""The process-wide metrics registry: counters, gauges, histograms.

Instrumented code calls the module-level helpers (:func:`inc`,
:func:`set_gauge`, :func:`observe`); each is a no-op unless a sink is
installed (see :mod:`repro.obs.runtime`), so the registry stays empty —
and the hot paths stay unmeasurably close to seed speed — during normal
library use.  Tests and the CLI read the registry directly via
:data:`REGISTRY` / :func:`snapshot` and reset it between runs.
"""

from __future__ import annotations

from repro.obs import runtime

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "merge_snapshot",
    "reset",
]


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value (also tracks the maximum ever set)."""

    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value: float = 0
        self.max_value: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value


#: Per-histogram sample cap: enough for stable p99 estimates on every
#: campaign the repo runs, small enough that a runaway producer cannot
#: grow the registry unboundedly.  Overflow keeps the first samples
#: seen (deterministic — no random eviction).
SAMPLE_CAP = 4096


class Histogram:
    """Streaming summary statistics plus a bounded sample reservoir.

    ``count``/``total``/``min``/``max`` are exact over every observed
    value; percentiles (:meth:`percentile`) are computed from the first
    :data:`SAMPLE_CAP` samples, which covers every campaign size the
    repo runs exactly and degrades deterministically beyond it.
    """

    __slots__ = ("count", "total", "min", "max", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total: float = 0
        self.min: float | None = None
        self.max: float | None = None
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < SAMPLE_CAP:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile of the retained samples (``None``
        when the histogram is empty).  ``q`` is in ``(0, 100]``."""
        if not self.samples:
            return None
        if not 0 < q <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        ordered = sorted(self.samples)
        rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "samples": list(self.samples),
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first touch."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            c = self.counters[name] = Counter()
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            g = self.gauges[name] = Gauge()
            return g

    def histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            h = self.histograms[name] = Histogram()
            return h

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (JSON-safe)."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {
                k: {"value": g.value, "max": g.max_value}
                for k, g in sorted(self.gauges.items())
            },
            "histograms": {
                k: h.summary() for k, h in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (between runs / between tests)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` dict from another registry into this one.

        Used by the parallel sweep driver to combine per-worker metrics
        into the parent process: counters add, gauges keep the largest
        value seen across processes (last-writer order is meaningless
        once runs interleave), histograms combine their summary
        statistics (count/total/min/max — ``mean`` stays derived) and
        concatenate their sample reservoirs up to :data:`SAMPLE_CAP`
        (snapshots are merged in item order, so the combined percentiles
        are deterministic regardless of worker finish order).
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, data in snap.get("gauges", {}).items():
            g = self.gauge(name)
            g.set(data["value"])
            if data["max"] > g.max_value:
                g.max_value = data["max"]
        for name, data in snap.get("histograms", {}).items():
            h = self.histogram(name)
            if not data["count"]:
                continue
            h.count += data["count"]
            h.total += data["total"]
            if h.min is None or data["min"] < h.min:
                h.min = data["min"]
            if h.max is None or data["max"] > h.max:
                h.max = data["max"]
            room = SAMPLE_CAP - len(h.samples)
            if room > 0:
                h.samples.extend(data.get("samples", ())[:room])


REGISTRY = MetricsRegistry()


def inc(name: str, n: int = 1) -> None:
    """Increment counter ``name`` — no-op while observability is off."""
    if runtime._enabled:
        REGISTRY.counter(name).inc(n)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` — no-op while observability is off."""
    if runtime._enabled:
        REGISTRY.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record ``value`` in histogram ``name`` — no-op while off."""
    if runtime._enabled:
        REGISTRY.histogram(name).observe(value)


def snapshot() -> dict:
    """Snapshot of the global registry."""
    return REGISTRY.snapshot()


def merge_snapshot(snap: dict) -> None:
    """Merge a snapshot from another process into the global registry."""
    REGISTRY.merge(snap)


def reset() -> None:
    """Reset the global registry."""
    REGISTRY.reset()
