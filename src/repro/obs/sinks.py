"""Event sinks: where instrumentation events go when observability is on.

A sink is anything with an ``emit(event: dict)`` method (see
:class:`EventSink`); two implementations cover the common cases:

* :class:`InMemorySink` — collect events in a list (profiling,
  exporters, tests),
* :class:`NDJSONSink` — stream events as newline-delimited JSON to a
  file (post-mortem analysis with ``jq``/pandas).

Events are flat dicts.  The instrumentation layer currently emits one
shape, ``{"type": "span", "name", "start_ns", "dur_ns", "depth",
"attrs"}``, but sinks must tolerate (and preserve) any dict so future
event kinds stream through unchanged.
"""

from __future__ import annotations

import io
import json
from typing import Protocol, runtime_checkable

__all__ = ["EventSink", "InMemorySink", "NDJSONSink"]


@runtime_checkable
class EventSink(Protocol):
    """Anything that can receive instrumentation events."""

    def emit(self, event: dict) -> None:
        """Receive one event (must not mutate it)."""
        ...  # pragma: no cover - protocol body


class InMemorySink:
    """Buffer events in memory (``.events`` is the list, in order)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def spans(self) -> list[dict]:
        """Only the span events (the common consumer filter)."""
        return [e for e in self.events if e.get("type") == "span"]

    def close(self) -> None:  # symmetric with NDJSONSink
        pass


class NDJSONSink:
    """Stream events to ``path`` as one JSON object per line.

    The file is opened lazily on the first event and flushed per line,
    so a crashed run still leaves a readable prefix.  Non-JSON-safe
    attribute values are stringified rather than dropped.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: io.TextIOWrapper | None = None
        self.count = 0

    def emit(self, event: dict) -> None:
        if self._fh is None:
            self._fh = open(self.path, "w")
        json.dump(event, self._fh, default=str, separators=(",", ":"))
        self._fh.write("\n")
        self._fh.flush()
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
