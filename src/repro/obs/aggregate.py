"""Aggregation over traces and run history: hotspots, diffs, regressions.

Three consumers share this module:

* ``repro obs report`` — per-span-name hotspot tables (calls, total,
  self time, latency percentiles) over one or many trace files;
* ``repro obs diff`` — phase-by-phase comparison of two runs (traces)
  or two history windows;
* ``repro obs regressions`` — baseline fitting over the run-history
  store and slowdown detection, the engine behind the CI perf gate.

Baselines are deliberately simple and robust: the **median** duration
of the prior runs in a group.  Runs are only grouped when their
``(kind, workload, arch, config_hash)`` keys match exactly, so a config
or topology change starts a fresh baseline instead of poisoning an old
one (provenance stamping exists precisely for this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.obs.collapse import self_times
from repro.obs.history import HistoryError, RunRecord

__all__ = [
    "percentile",
    "SpanStats",
    "trace_stats",
    "hotspot_table",
    "phase_totals",
    "record_phases",
    "trace_file_span_events",
    "format_history_summary",
    "DiffRow",
    "diff_tables",
    "format_diff",
    "Regression",
    "fit_baselines",
    "detect_regressions",
    "format_regressions",
]


def percentile(values: Sequence[float], q: float) -> float | None:
    """Nearest-rank percentile (``q`` in ``(0, 100]``); ``None`` when
    ``values`` is empty.  Matches ``Histogram.percentile``."""
    if not values:
        return None
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class SpanStats:
    """Aggregated statistics for one span name."""

    name: str
    calls: int
    total_ns: int
    self_ns: int
    p50_ns: int
    p95_ns: int
    p99_ns: int

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def self_ms(self) -> float:
        return self.self_ns / 1e6


def trace_stats(span_events: Sequence[dict]) -> list[SpanStats]:
    """Per-span-name statistics over a recording, ranked by self time
    (descending), ties broken by name for reproducible output."""
    durations: dict[str, list[int]] = {}
    totals: dict[str, int] = {}
    selfs: dict[str, int] = {}
    for stack, row in self_times(span_events).items():
        name = stack[-1]
        selfs[name] = selfs.get(name, 0) + row["self_ns"]
        totals[name] = totals.get(name, 0) + row["total_ns"]
    for e in span_events:
        if e.get("type") == "span":
            durations.setdefault(e["name"], []).append(e["dur_ns"])
    out = []
    for name, durs in durations.items():
        out.append(SpanStats(
            name=name,
            calls=len(durs),
            total_ns=totals.get(name, sum(durs)),
            self_ns=selfs.get(name, 0),
            p50_ns=int(percentile(durs, 50)),
            p95_ns=int(percentile(durs, 95)),
            p99_ns=int(percentile(durs, 99)),
        ))
    out.sort(key=lambda s: (-s.self_ns, s.name))
    return out


def hotspot_table(span_events: Sequence[dict], *, limit: int = 0) -> str:
    """Markdown hotspot table ranked by self time."""
    stats = trace_stats(span_events)
    if limit > 0:
        stats = stats[:limit]
    if not stats:
        return "(no spans recorded)"
    lines = [
        "| span | calls | self (ms) | total (ms) | p50 (ms) | p95 (ms) "
        "| p99 (ms) |",
        "|---|---:|---:|---:|---:|---:|---:|",
    ]
    for s in stats:
        lines.append(
            f"| {s.name} | {s.calls} | {s.self_ms:.3f} | {s.total_ms:.3f} "
            f"| {s.p50_ns / 1e6:.3f} | {s.p95_ns / 1e6:.3f} "
            f"| {s.p99_ns / 1e6:.3f} |"
        )
    return "\n".join(lines)


def phase_totals(span_events: Sequence[dict]) -> dict[str, float]:
    """Total seconds per span name (``name -> seconds``)."""
    out: dict[str, float] = {}
    for e in span_events:
        if e.get("type") == "span":
            out[e["name"]] = out.get(e["name"], 0.0) + e["dur_ns"] / 1e9
    return out


def record_phases(records: Sequence[RunRecord]) -> dict[str, float]:
    """Mean seconds per phase over a window of history records (the
    window's ``duration_seconds`` mean rides along as ``"total"``)."""
    if not records:
        return {}
    out: dict[str, float] = {}
    for rec in records:
        for name, seconds in rec.phases.items():
            out[name] = out.get(name, 0.0) + float(seconds)
    averaged = {name: total / len(records) for name, total in out.items()}
    averaged["total"] = sum(
        r.duration_seconds for r in records
    ) / len(records)
    return averaged


def trace_file_span_events(path: str | Path) -> list[dict]:
    """Load a Chrome trace-event JSON (as written by ``--trace`` /
    :func:`repro.obs.export.write_chrome_trace`) back into sink-shaped
    span events.

    The Chrome format drops the recorded nesting depth, so depth is
    reconstructed from interval containment on the optimiser track
    (pid 1) — parents sort before their children at equal start times
    because they last longer.
    """
    target = Path(path)
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise HistoryError(f"cannot read trace {target}: {exc}") from exc
    raw = payload.get("traceEvents", []) if isinstance(payload, dict) else payload
    slices = [
        e for e in raw
        if isinstance(e, dict) and e.get("ph") == "X" and e.get("pid") == 1
    ]
    spans: list[dict] = []
    open_ends: list[int] = []  # end_ns of currently enclosing spans
    for e in sorted(slices, key=lambda e: (e["ts"], -e["dur"])):
        start = round(e["ts"] * 1000)
        dur = round(e["dur"] * 1000)
        while open_ends and start >= open_ends[-1]:
            open_ends.pop()
        spans.append({
            "type": "span",
            "name": e["name"],
            "start_ns": start,
            "dur_ns": dur,
            "depth": len(open_ends),
            "attrs": dict(e.get("args") or {}),
        })
        open_ends.append(start + dur)
    return spans


def format_history_summary(records: Sequence[RunRecord]) -> str:
    """Markdown per-group summary of a history window: run counts and
    duration percentiles (grouped by provenance key)."""
    if not records:
        return "(no history records)"
    groups: dict[tuple, list[RunRecord]] = {}
    for rec in records:
        groups.setdefault(rec.key(), []).append(rec)
    lines = [
        "| kind | workload | arch | runs | p50 (s) | p95 (s) | latest (s) |",
        "|---|---|---|---:|---:|---:|---:|",
    ]
    for key in sorted(groups):
        group = groups[key]
        durations = [r.duration_seconds for r in group]
        kind, workload, arch, _cfg = key
        lines.append(
            f"| {kind} | {workload} | {arch} | {len(group)} "
            f"| {percentile(durations, 50):.6f} "
            f"| {percentile(durations, 95):.6f} "
            f"| {durations[-1]:.6f} |"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class DiffRow:
    """One phase compared across two runs/windows."""

    phase: str
    a_seconds: float
    b_seconds: float

    @property
    def delta_seconds(self) -> float:
        return self.b_seconds - self.a_seconds

    @property
    def ratio(self) -> float | None:
        """``b / a`` (``None`` when the phase is new — absent in A)."""
        return self.b_seconds / self.a_seconds if self.a_seconds else None


def diff_tables(
    a: dict[str, float], b: dict[str, float]
) -> list[DiffRow]:
    """Phase-by-phase comparison; union of phases, sorted by name."""
    return [
        DiffRow(phase=name, a_seconds=a.get(name, 0.0), b_seconds=b.get(name, 0.0))
        for name in sorted(set(a) | set(b))
    ]


def format_diff(
    rows: Sequence[DiffRow], *, a_label: str = "A", b_label: str = "B"
) -> str:
    """Markdown table of a phase diff."""
    if not rows:
        return "(nothing to compare)"
    lines = [
        f"| phase | {a_label} (s) | {b_label} (s) | delta (s) | ratio |",
        "|---|---:|---:|---:|---:|",
    ]
    for r in rows:
        ratio = f"{r.ratio:.3f}" if r.ratio is not None else "new"
        lines.append(
            f"| {r.phase} | {r.a_seconds:.6f} | {r.b_seconds:.6f} "
            f"| {r.delta_seconds:+.6f} | {ratio} |"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class Regression:
    """One run group whose latest run exceeds the fitted baseline."""

    kind: str
    workload: str
    arch: str
    config_hash: str
    baseline_seconds: float
    latest_seconds: float
    threshold: float
    samples: int  # baseline sample count (prior runs)

    @property
    def ratio(self) -> float:
        return (
            self.latest_seconds / self.baseline_seconds
            if self.baseline_seconds
            else float("inf")
        )


def fit_baselines(
    records: Sequence[RunRecord],
) -> dict[tuple, dict]:
    """Per-group baseline fit: ``key -> {"baseline", "latest",
    "samples"}``.

    Within each ``(kind, workload, arch, config_hash)`` group the
    records stay in append order; the last record is the candidate
    under test and the baseline is the **median** of all prior runs.
    Groups with fewer than two records fit no baseline (``baseline``
    is ``None``) — a first run can never regress against itself.
    """
    groups: dict[tuple, list[RunRecord]] = {}
    for rec in records:
        groups.setdefault(rec.key(), []).append(rec)
    out: dict[tuple, dict] = {}
    for key, group in groups.items():
        latest = group[-1]
        prior = [r.duration_seconds for r in group[:-1]]
        out[key] = {
            "baseline": percentile(prior, 50) if prior else None,
            "latest": latest.duration_seconds,
            "samples": len(prior),
        }
    return out


def detect_regressions(
    records: Sequence[RunRecord],
    *,
    threshold: float = 1.3,
    min_seconds: float = 0.0,
) -> list[Regression]:
    """Flag groups whose latest run is ``> threshold x`` the baseline.

    ``min_seconds`` suppresses noise on sub-millisecond runs: a group
    is only flagged when the latest duration also exceeds it.  Sorted
    by descending slowdown ratio.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must exceed 1.0, got {threshold}")
    found: list[Regression] = []
    for key, fit in fit_baselines(records).items():
        baseline = fit["baseline"]
        latest = fit["latest"]
        if baseline is None or baseline <= 0:
            continue
        if latest > threshold * baseline and latest >= min_seconds:
            kind, workload, arch, cfg = key
            found.append(Regression(
                kind=kind,
                workload=workload,
                arch=arch,
                config_hash=cfg,
                baseline_seconds=baseline,
                latest_seconds=latest,
                threshold=threshold,
                samples=fit["samples"],
            ))
    found.sort(key=lambda r: -r.ratio)
    return found


def format_regressions(
    found: Sequence[Regression], *, checked: int
) -> str:
    """Human-readable summary for the CLI / CI log."""
    if not found:
        return f"no regressions across {checked} run group(s)"
    lines = [
        f"{len(found)} regression(s) across {checked} run group(s):",
        "| kind | workload | arch | baseline (s) | latest (s) | ratio "
        "| threshold |",
        "|---|---|---|---:|---:|---:|---:|",
    ]
    for r in found:
        lines.append(
            f"| {r.kind} | {r.workload} | {r.arch} "
            f"| {r.baseline_seconds:.6f} | {r.latest_seconds:.6f} "
            f"| {r.ratio:.2f}x | {r.threshold:.2f}x |"
        )
    return "\n".join(lines)
