"""Span self-time analysis and flamegraph-compatible collapsed stacks.

Sink events record each span as a flat ``{"name", "start_ns",
"dur_ns", "depth", "attrs"}`` dict emitted at span *exit*.  This module
rebuilds the span hierarchy from those three ordering facts — a span's
parent is the innermost span at ``depth - 1`` whose interval contains
it — and derives:

* **self time** — a span's duration minus the durations of its direct
  children (the time actually spent *in* that phase, not delegated);
* **collapsed stacks** — the classic semicolon-joined
  ``root;child;leaf <self_us>`` lines that ``flamegraph.pl``,
  speedscope and Brendan Gregg's tooling all consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["SpanNode", "build_span_tree", "self_times", "collapsed_stacks"]


@dataclass
class SpanNode:
    """One span with its reconstructed ancestry."""

    name: str
    start_ns: int
    dur_ns: int
    depth: int
    stack: tuple[str, ...]  # root .. self
    children_dur_ns: int = 0
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.dur_ns

    @property
    def self_ns(self) -> int:
        """Duration not attributable to any direct child (clamped at 0:
        overlapping children can only arise from clock jitter)."""
        return max(0, self.dur_ns - self.children_dur_ns)


def build_span_tree(span_events: Sequence[dict]) -> list[SpanNode]:
    """Rebuild the span forest; returns every node (roots first within
    equal start times).

    Events are matched to parents by interval containment at
    ``depth - 1``; spans at depth 0 (or orphans whose parent interval
    is missing from the recording) become roots.
    """
    spans = sorted(
        (e for e in span_events if e.get("type") == "span"),
        key=lambda e: (e["start_ns"], -e["dur_ns"], e.get("depth", 0)),
    )
    nodes: list[SpanNode] = []
    # innermost open span per depth, maintained as a stack of candidates
    open_by_depth: dict[int, SpanNode] = {}
    for e in spans:
        depth = e.get("depth", 0)
        parent = None
        d = depth - 1
        while d >= 0:
            candidate = open_by_depth.get(d)
            if (
                candidate is not None
                and candidate.start_ns <= e["start_ns"]
                and e["start_ns"] + e["dur_ns"] <= candidate.end_ns
            ):
                parent = candidate
                break
            d -= 1
        stack = (parent.stack if parent else ()) + (e["name"],)
        node = SpanNode(
            name=e["name"],
            start_ns=e["start_ns"],
            dur_ns=e["dur_ns"],
            depth=depth,
            stack=stack,
        )
        if parent is not None:
            parent.children.append(node)
            parent.children_dur_ns += node.dur_ns
        nodes.append(node)
        open_by_depth[depth] = node
    return nodes


def self_times(span_events: Sequence[dict]) -> dict[tuple[str, ...], dict]:
    """Aggregate self time per distinct stack.

    Returns ``stack -> {"calls", "self_ns", "total_ns"}`` where
    ``self_ns`` sums each occurrence's duration minus its direct
    children — so summing ``self_ns`` over all stacks reproduces the
    root wall time (modulo clock jitter).
    """
    out: dict[tuple[str, ...], dict] = {}
    for node in build_span_tree(span_events):
        row = out.setdefault(
            node.stack, {"calls": 0, "self_ns": 0, "total_ns": 0}
        )
        row["calls"] += 1
        row["self_ns"] += node.self_ns
        row["total_ns"] += node.dur_ns
    return out


def collapsed_stacks(span_events: Sequence[dict]) -> list[str]:
    """Flamegraph-collapsed lines: ``a;b;c <self_microseconds>``.

    One line per distinct stack, self time in integer microseconds,
    sorted by stack for reproducible output.  Stacks whose self time
    rounds to zero are kept (flamegraph tools tolerate zero weights and
    dropping them would hide call structure).
    """
    rows = self_times(span_events)
    return [
        ";".join(stack) + f" {row['self_ns'] // 1000}"
        for stack, row in sorted(rows.items())
    ]
