"""The CI perf-regression gate: a fixed workload matrix into history.

``repro obs matrix`` replays a small, pinned (workload, architecture)
matrix through the optimiser with full instrumentation, appends one
provenance-stamped ``gate`` record per cell to the run-history store,
and optionally writes flamegraph-collapsed stacks per cell.  CI runs
the matrix on every build and then ``repro obs regressions`` against
the accumulated history — a build whose latest runs exceed the fitted
baseline by the threshold fails.

The matrix is deliberately tiny (seconds, not minutes): the point is a
stable *relative* signal across builds of the same config hash, not an
absolute benchmark.

**Test hook**: when the environment variable named by
:data:`GATE_SLEEP_ENV` is set to a positive float, every cell sleeps
that many seconds inside its timed window — a synthetic, deterministic
slowdown that lets the regression detector be exercised end-to-end
without depending on machine noise.  The hook is read per run and does
nothing when unset; production CI never sets it.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.aggregate import phase_totals
from repro.obs.collapse import collapsed_stacks
from repro.obs.history import HistoryStore, RunRecord
from repro.obs.metrics import REGISTRY
from repro.obs import metrics as metrics_mod
from repro.obs.runtime import sink_installed
from repro.obs.sinks import InMemorySink

__all__ = ["GATE_MATRIX", "GATE_SLEEP_ENV", "run_gate_matrix"]

#: The pinned gate cells: (workload, architecture kind, PEs, passes).
#: Chosen to cover a dense and a sparse topology plus two graph shapes
#: while keeping one full matrix run comfortably under a few seconds.
GATE_MATRIX: tuple[tuple[str, str, int, int], ...] = (
    ("figure7", "hypercube", 8, 20),
    ("figure7", "mesh", 8, 20),
    ("lattice4", "ring", 4, 20),
)

#: Environment variable carrying the synthetic-slowdown test hook.
GATE_SLEEP_ENV = "REPRO_OBS_GATE_SLEEP"


def _sleep_hook_seconds() -> float:
    raw = os.environ.get(GATE_SLEEP_ENV)
    if not raw:
        return 0.0
    try:
        return max(0.0, float(raw))
    except ValueError:
        return 0.0


def run_gate_matrix(
    history_dir: str | Path,
    *,
    matrix: Sequence[tuple[str, str, int, int]] = GATE_MATRIX,
    collapsed_dir: str | Path | None = None,
    clock: Callable[[], float] = time.time,
) -> list[RunRecord]:
    """Run every matrix cell once; append one ``gate`` record each.

    Returns the appended records (in matrix order).  When
    ``collapsed_dir`` is given, a ``<workload>-<kind><pes>.collapsed``
    flamegraph-collapsed stack file is written per cell.
    """
    from repro.arch import make_architecture
    from repro.core import CycloConfig, cyclo_compact
    from repro.workloads import make_workload

    store = HistoryStore(history_dir, clock=clock)
    records: list[RunRecord] = []
    for workload, kind, pes, passes in matrix:
        graph = make_workload(workload)
        arch = make_architecture(kind, pes)
        cfg = CycloConfig(max_iterations=passes, validate_each_step=False)
        sink = InMemorySink()
        metrics_mod.reset()
        with sink_installed(sink):
            started = time.perf_counter()
            result = cyclo_compact(graph, arch, config=cfg)
            sleep = _sleep_hook_seconds()
            if sleep:
                time.sleep(sleep)
            duration = time.perf_counter() - started
        counters = REGISTRY.snapshot()["counters"]
        rec = store.record(
            "gate",
            workload=workload,
            arch=f"{kind}{pes}",
            config=cfg.to_dict(),
            duration_seconds=duration,
            phases=phase_totals(sink.events),
            counters=counters,
            attrs={
                "initial_length": result.initial_length,
                "final_length": result.final_length,
                "stop_reason": result.stop_reason,
            },
        )
        records.append(rec)
        if collapsed_dir is not None:
            target = Path(collapsed_dir)
            target.mkdir(parents=True, exist_ok=True)
            path = target / f"{workload}-{kind}{pes}.collapsed"
            path.write_text(
                "\n".join(collapsed_stacks(sink.events)) + "\n",
                encoding="utf-8",
            )
    metrics_mod.reset()
    return records
