"""Per-phase profiling: aggregate span events into a time breakdown.

The optimiser's phase structure (see the instrumentation in
:mod:`repro.core`) is::

    cyclo_compact
      startup            (once)
      pass[i]
        rotate
        remap
        validate         (when validate_each_step / final check)

:func:`phase_breakdown` charges each phase its **total** time across a
recording, expresses it as a percentage of the root span(s), and adds
an explicit ``other`` row for uninstrumented driver time — so the rows
always sum to ~100% and nothing hides in the gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["PhaseRow", "phase_breakdown", "format_breakdown"]

DEFAULT_PHASES = ("startup", "rotate", "remap", "validate")


@dataclass(frozen=True)
class PhaseRow:
    """One aggregated row of the per-phase breakdown."""

    phase: str
    calls: int
    total_ns: int
    percent: float

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6


def phase_breakdown(
    span_events: Sequence[dict],
    *,
    phases: Sequence[str] = DEFAULT_PHASES,
    root: str = "cyclo_compact",
) -> list[PhaseRow]:
    """Aggregate ``span_events`` into per-phase totals.

    The percentage base is the summed duration of every ``root`` span
    (falling back to the summed top-level spans, then to the phase sum
    itself, when no root was recorded).  Returns one row per phase that
    occurred, plus an ``other`` row for the remainder of the root time.
    """
    spans = [e for e in span_events if e.get("type") == "span"]
    totals = {name: 0 for name in phases}
    calls = {name: 0 for name in phases}
    root_total = 0
    root_seen = False
    top_level_total = 0
    for e in spans:
        name = e["name"]
        if name in totals:
            totals[name] += e["dur_ns"]
            calls[name] += 1
        if name == root:
            root_total += e["dur_ns"]
            root_seen = True
        if e.get("depth", 0) == 0:
            top_level_total += e["dur_ns"]
    phase_sum = sum(totals.values())
    base = root_total if root_seen else (top_level_total or phase_sum)
    if base <= 0:
        return []
    rows = [
        PhaseRow(
            phase=name,
            calls=calls[name],
            total_ns=totals[name],
            percent=100.0 * totals[name] / base,
        )
        for name in phases
        if calls[name]
    ]
    other = base - sum(r.total_ns for r in rows)
    if other > 0:
        rows.append(
            PhaseRow(
                phase="other",
                calls=0,
                total_ns=other,
                percent=100.0 * other / base,
            )
        )
    return rows


def format_breakdown(rows: Sequence[PhaseRow]) -> str:
    """Fixed-width table, phases in recorded order, percentages last."""
    if not rows:
        return "(no spans recorded)"
    width = max(len(r.phase) for r in rows)
    lines = [f"{'phase':<{width}}  {'calls':>6}  {'time (ms)':>10}  {'%':>6}"]
    for r in rows:
        calls = str(r.calls) if r.calls else "-"
        lines.append(
            f"{r.phase:<{width}}  {calls:>6}  {r.total_ms:>10.3f}  "
            f"{r.percent:>5.1f}%"
        )
    total_ms = sum(r.total_ms for r in rows)
    total_pct = sum(r.percent for r in rows)
    lines.append(
        f"{'total':<{width}}  {'':>6}  {total_ms:>10.3f}  {total_pct:>5.1f}%"
    )
    return "\n".join(lines)
