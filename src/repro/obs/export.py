"""Exporters: Chrome trace-event JSON and plain-text metrics reports.

:func:`chrome_trace_events` turns recorded span events (and optionally
a simulated execution) into the Chrome trace-event format that both
``chrome://tracing`` and https://ui.perfetto.dev render natively:

* **optimiser spans** (pid 1) — one complete-event (``"ph": "X"``) per
  span, nested slices on a single track, timestamps in real
  microseconds;
* **simulated schedule** (pid 2) — one track per processing element,
  one slice per task instance, with one *control step* mapped to
  :data:`CS_US` microseconds so the discrete schedule is visible on the
  same timeline;
* **interconnect** (pid 3) — one track per directed PE pair, one slice
  per message transfer (depart → arrive).

The module is intentionally free of ``repro`` imports: the simulated
execution is duck-typed (anything with ``executions`` / ``messages``
sequences works), so exporters can never create import cycles with the
instrumented packages.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "CS_US",
    "chrome_trace_events",
    "write_chrome_trace",
    "metrics_report",
]

CS_US = 1000  # one simulated control step rendered as 1 ms


def _meta(pid: int, name: str, *, tid: int | None = None) -> dict:
    event = {
        "name": "process_name" if tid is None else "thread_name",
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": 0 if tid is None else tid,
        "args": {"name": name},
    }
    return event


def chrome_trace_events(
    span_events: Sequence[dict],
    *,
    sim=None,
) -> list[dict]:
    """Build the ``traceEvents`` list.

    Parameters
    ----------
    span_events:
        Events collected by a sink (non-span events are ignored).
    sim:
        Optional simulated execution (``repro.sim.SimulationResult`` or
        anything shaped like it) rendered as additional timelines.
    """
    events: list[dict] = []
    spans = [e for e in span_events if e.get("type") == "span"]
    if spans:
        base = min(e["start_ns"] for e in spans)
        events.append(_meta(1, "optimiser"))
        events.append(_meta(1, "spans", tid=1))
        for e in spans:
            events.append(
                {
                    "name": e["name"],
                    "cat": "optimiser",
                    "ph": "X",
                    "ts": (e["start_ns"] - base) / 1000.0,
                    "dur": e["dur_ns"] / 1000.0,
                    "pid": 1,
                    "tid": 1,
                    "args": dict(e.get("attrs") or {}),
                }
            )
    if sim is not None:
        events.extend(_simulation_events(sim))
    return events


def _simulation_events(sim) -> list[dict]:
    events: list[dict] = [_meta(2, "simulated schedule")]
    pes = sorted({e.pe for e in sim.executions})
    for pe in pes:
        events.append(_meta(2, f"pe{pe + 1}", tid=pe + 1))
    for e in sim.executions:
        events.append(
            {
                "name": f"{e.node}@{e.iteration}",
                "cat": "task",
                "ph": "X",
                "ts": (e.start - 1) * CS_US,
                "dur": (e.finish - e.start + 1) * CS_US,
                "pid": 2,
                "tid": e.pe + 1,
                "args": {"iteration": e.iteration, "node": str(e.node)},
            }
        )
    links = sorted({(m.src_pe, m.dst_pe) for m in sim.messages})
    if links:
        events.append(_meta(3, "interconnect"))
        tid_of = {}
        for i, (s, d) in enumerate(links, start=1):
            tid_of[(s, d)] = i
            events.append(_meta(3, f"pe{s + 1}->pe{d + 1}", tid=i))
        for m in sim.messages:
            events.append(
                {
                    "name": f"{m.src}->{m.dst}@{m.src_iteration}",
                    "cat": "message",
                    "ph": "X",
                    "ts": (m.depart - 1) * CS_US,
                    "dur": max(m.arrive - m.depart + 1, 1) * CS_US,
                    "pid": 3,
                    "tid": tid_of[(m.src_pe, m.dst_pe)],
                    "args": {"volume": m.volume},
                }
            )
    return events


def write_chrome_trace(
    path: str | Path,
    span_events: Sequence[dict],
    *,
    sim=None,
) -> Path:
    """Write a Chrome trace-event JSON file; returns the path."""
    target = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(span_events, sim=sim),
        "displayTimeUnit": "ms",
    }
    target.write_text(json.dumps(payload, default=str))
    return target


def _fmt_pct(value) -> str:
    return "-" if value is None else f"{value:.3g}"


def metrics_report(snapshot: dict, *, title: str = "metrics") -> str:
    """Render a registry snapshot (:func:`repro.obs.metrics.snapshot`)
    as a markdown report."""
    lines = [f"## {title}", ""]
    counters: dict = snapshot.get("counters", {})
    gauges: dict = snapshot.get("gauges", {})
    histograms: dict = snapshot.get("histograms", {})
    if counters:
        lines += ["| counter | value |", "|---|---:|"]
        lines += [f"| {k} | {v} |" for k, v in counters.items()]
        lines.append("")
    if gauges:
        lines += ["| gauge | value | max |", "|---|---:|---:|"]
        lines += [
            f"| {k} | {g['value']} | {g['max']} |" for k, g in gauges.items()
        ]
        lines.append("")
    if histograms:
        lines += [
            "| histogram | count | mean | min | p50 | p95 | max |",
            "|---|---:|---:|---:|---:|---:|---:|",
        ]
        lines += [
            f"| {k} | {h['count']} | {h['mean']:.3g} | {h['min']} "
            f"| {_fmt_pct(h.get('p50'))} | {_fmt_pct(h.get('p95'))} "
            f"| {h['max']} |"
            for k, h in histograms.items()
        ]
        lines.append("")
    if len(lines) == 2:
        lines.append("(no metrics recorded)")
    return "\n".join(lines).rstrip()
