"""``repro.obs`` — structured tracing, metrics, and profiling.

A zero-dependency (stdlib-only) instrumentation layer threaded through
the scheduling pipeline:

* **spans** (:func:`span`) — hierarchical wall-time timers around the
  optimiser phases (startup, rotate, remap, validate, per pass);
* **metrics** (:mod:`repro.obs.metrics`) — process-wide counters,
  gauges and histograms (remap decisions, violation counts, per-PE
  simulator load);
* **sinks** (:class:`InMemorySink`, :class:`NDJSONSink`) — pluggable
  event receivers; with none installed every instrumentation point is
  a single flag check, so default-path timings match the seed;
* **exporters** (:func:`write_chrome_trace`, :func:`metrics_report`) —
  Chrome trace-event JSON (``chrome://tracing`` / Perfetto) and
  markdown metrics reports;
* **profiling** (:func:`phase_breakdown`) — per-phase time/percentage
  aggregation behind ``repro profile`` and ``--profile``;
* **run history** (:mod:`repro.obs.history`) — the append-only NDJSON
  store of provenance-stamped run records that ``repro obs
  report|diff|regressions`` and the CI perf gate aggregate over;
* **analysis** (:mod:`repro.obs.aggregate`,
  :mod:`repro.obs.collapse`) — hotspot/self-time tables, phase diffs,
  baseline fitting + regression detection, and flamegraph-compatible
  collapsed stacks.

See ``docs/observability.md`` for a guided tour.
"""

from repro.obs import metrics
from repro.obs.aggregate import (
    detect_regressions,
    diff_tables,
    hotspot_table,
    trace_stats,
)
from repro.obs.collapse import collapsed_stacks, self_times
from repro.obs.history import (
    DEFAULT_HISTORY_DIR,
    HistoryStore,
    RunRecord,
    config_hash,
)
from repro.obs.export import (
    chrome_trace_events,
    metrics_report,
    write_chrome_trace,
)
from repro.obs.profile import PhaseRow, format_breakdown, phase_breakdown
from repro.obs.runtime import (
    emit,
    enabled,
    install_sink,
    installed_sinks,
    remove_all_sinks,
    remove_sink,
    sink_installed,
)
from repro.obs.sinks import EventSink, InMemorySink, NDJSONSink
from repro.obs.spans import NO_OP_SPAN, Span, span

__all__ = [
    "DEFAULT_HISTORY_DIR",
    "EventSink",
    "HistoryStore",
    "RunRecord",
    "collapsed_stacks",
    "config_hash",
    "detect_regressions",
    "diff_tables",
    "hotspot_table",
    "self_times",
    "trace_stats",
    "InMemorySink",
    "NDJSONSink",
    "NO_OP_SPAN",
    "PhaseRow",
    "Span",
    "chrome_trace_events",
    "emit",
    "enabled",
    "format_breakdown",
    "install_sink",
    "installed_sinks",
    "metrics",
    "metrics_report",
    "phase_breakdown",
    "remove_all_sinks",
    "remove_sink",
    "sink_installed",
    "span",
    "write_chrome_trace",
]
