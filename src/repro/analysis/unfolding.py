"""Unfolding-based scheduling study (extension).

The iteration bound is generally *fractional* (``max cycle t/d``);
a static schedule of one loop body can only achieve integer lengths.
Unfolding the loop by ``f`` schedules ``f`` consecutive iterations as
one body, so the effective per-iteration initiation interval becomes
``L_f / f`` and can approach the fractional bound — the classical
companion result to retiming (Parhi & Messerschmitt).  This module runs
cyclo-compaction on unfolded bodies and reports the effective rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.core.cyclo import cyclo_compact
from repro.graph.csdfg import CSDFG
from repro.graph.properties import iteration_bound
from repro.graph.transform import unfold

__all__ = ["UnfoldingPoint", "unfolding_study"]


@dataclass(frozen=True)
class UnfoldingPoint:
    """Result of scheduling one unfolding factor.

    Attributes
    ----------
    factor:
        Unfolding factor ``f``.
    length:
        Schedule length of the unfolded body (covers ``f`` iterations).
    effective:
        Per-original-iteration initiation interval ``length / f``.
    bound:
        The graph's fractional iteration bound (the floor for
        ``effective`` at any factor).
    """

    factor: int
    length: int
    effective: Fraction
    bound: Fraction


def unfolding_study(
    graph: CSDFG,
    arch: Architecture,
    factors: tuple[int, ...] = (1, 2, 3),
    *,
    config: CycloConfig | None = None,
) -> list[UnfoldingPoint]:
    """Schedule ``graph`` unfolded by each factor and report rates.

    Every point satisfies ``effective >= bound``; on architectures with
    cheap communication, larger factors typically close the gap to the
    fractional bound.
    """
    bound = iteration_bound(graph)
    cfg = config if config is not None else CycloConfig(
        max_iterations=40, validate_each_step=False
    )
    points: list[UnfoldingPoint] = []
    for factor in factors:
        body = graph if factor == 1 else unfold(graph, factor)
        result = cyclo_compact(body, arch, config=cfg)
        points.append(
            UnfoldingPoint(
                factor=factor,
                length=result.final_length,
                effective=Fraction(result.final_length, factor),
                bound=bound,
            )
        )
    return points
