"""Experiment runner: one (workload, architecture, policy) cell.

This is the engine behind every reproduced table: it runs the start-up
scheduler and cyclo-compaction, validates both schedules, and returns
the paper's ``init`` / ``after`` pair plus supporting metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.core.cyclo import CycloResult, cyclo_compact
from repro.graph.csdfg import CSDFG
from repro.graph.properties import iteration_bound
from repro.schedule.validate import validate_schedule

__all__ = ["ExperimentCell", "run_cell", "run_grid"]


@dataclass(frozen=True)
class ExperimentCell:
    """One table cell: a workload scheduled on one architecture.

    ``init`` and ``after`` are the paper's column pair (start-up length
    and compacted length); ``bound`` is the iteration bound of the
    (input) graph, an absolute floor for ``after``.
    """

    workload: str
    architecture: str
    relaxation: bool
    init: int
    after: int
    passes_to_best: int
    bound: Fraction

    @property
    def improvement(self) -> int:
        return self.init - self.after

    @property
    def ratio(self) -> float:
        """``after / init`` (smaller is better)."""
        return self.after / self.init if self.init else 0.0


def run_cell(
    graph: CSDFG,
    arch: Architecture,
    *,
    relaxation: bool = True,
    config: CycloConfig | None = None,
) -> tuple[ExperimentCell, CycloResult]:
    """Schedule ``graph`` on ``arch`` and summarise the outcome.

    Both the initial and the final schedule are validated; the returned
    :class:`~repro.core.cyclo.CycloResult` carries the full trace for
    deeper inspection.
    """
    cfg = config if config is not None else CycloConfig(relaxation=relaxation)
    if cfg.relaxation != relaxation:
        cfg = CycloConfig(
            relaxation=relaxation,
            max_iterations=cfg.max_iterations,
            patience=cfg.patience,
            validate_each_step=cfg.validate_each_step,
        )
    result = cyclo_compact(graph, arch, config=cfg)
    validate_schedule(graph, arch, result.initial_schedule)
    validate_schedule(result.graph, arch, result.schedule)
    cell = ExperimentCell(
        workload=graph.name,
        architecture=arch.name,
        relaxation=relaxation,
        init=result.initial_length,
        after=result.final_length,
        passes_to_best=result.trace.passes_to_best,
        bound=iteration_bound(graph),
    )
    return cell, result


def run_grid(
    graph: CSDFG,
    architectures: dict[str, Architecture],
    *,
    relaxation: bool = True,
    config: CycloConfig | None = None,
) -> dict[str, ExperimentCell]:
    """Run one workload across several architectures (one table row)."""
    cells: dict[str, ExperimentCell] = {}
    for key, arch in architectures.items():
        cell, _ = run_cell(
            graph, arch, relaxation=relaxation, config=config
        )
        cells[key] = cell
    return cells
