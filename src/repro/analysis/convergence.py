"""Convergence studies of the cyclo-compaction iteration (§5's "fast
convergence" claim)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.core.cyclo import cyclo_compact
from repro.core.trace import CompactionTrace
from repro.graph.csdfg import CSDFG

__all__ = ["ConvergenceReport", "convergence_study"]


@dataclass(frozen=True)
class ConvergenceReport:
    """Length trajectory of one optimisation run.

    ``lengths[k]`` is the schedule length after pass ``k`` (index 0 is
    the start-up schedule).  ``trace`` is the raw optimiser trace the
    trajectory was derived from; serialise it with
    :meth:`~repro.core.trace.CompactionTrace.to_dict` to archive a run.
    """

    workload: str
    architecture: str
    lengths: tuple[int, ...]
    best: int
    passes_to_best: int
    trace: CompactionTrace | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def normalized(self) -> tuple[float, ...]:
        """Lengths relative to the initial schedule."""
        init = self.lengths[0]
        return tuple(length / init for length in self.lengths)


def convergence_study(
    graph: CSDFG,
    arch: Architecture,
    *,
    max_iterations: int | None = None,
    relaxation: bool = True,
) -> ConvergenceReport:
    """Run cyclo-compaction and capture its full length trajectory."""
    cfg = CycloConfig(relaxation=relaxation, max_iterations=max_iterations)
    result = cyclo_compact(graph, arch, config=cfg)
    lengths = tuple(result.trace.lengths)
    return ConvergenceReport(
        workload=graph.name,
        architecture=arch.name,
        lengths=lengths,
        best=result.final_length,
        passes_to_best=result.trace.passes_to_best,
        trace=result.trace,
    )
