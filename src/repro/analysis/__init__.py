"""Experiment harness: runners, table formatting, ablations,
convergence studies."""

from repro.analysis.ablation import (
    PRIORITY_VARIANTS,
    CommAblationRow,
    comm_awareness_ablation,
    priority_ablation,
    relaxation_ablation,
)
from repro.analysis.convergence import ConvergenceReport, convergence_study
from repro.analysis.experiments import ExperimentCell, run_cell, run_grid
from repro.analysis.full_report import generate_full_report
from repro.analysis.recommend import ArchitectureScore, recommend_architecture
from repro.analysis.report import (
    PaperComparison,
    markdown_comparison_table,
    markdown_grid,
)
from repro.analysis.sweep import (
    SweepPoint,
    pe_count_sweep,
    slowdown_sweep,
    volume_sweep,
)
from repro.analysis.tables import format_cells, format_table11
from repro.analysis.unfolding import UnfoldingPoint, unfolding_study

__all__ = [
    "CommAblationRow",
    "ConvergenceReport",
    "ExperimentCell",
    "PRIORITY_VARIANTS",
    "ArchitectureScore",
    "PaperComparison",
    "SweepPoint",
    "UnfoldingPoint",
    "comm_awareness_ablation",
    "convergence_study",
    "format_cells",
    "format_table11",
    "generate_full_report",
    "markdown_comparison_table",
    "markdown_grid",
    "pe_count_sweep",
    "priority_ablation",
    "recommend_architecture",
    "relaxation_ablation",
    "run_cell",
    "run_grid",
    "slowdown_sweep",
    "unfolding_study",
    "volume_sweep",
]
