"""Ablations of the design choices the paper makes.

Three axes:

* **priority function** — the paper's PF vs. mobility-only, FIFO and
  volume-only start-up priorities (Definition 3.6's design),
* **communication awareness** — cyclo-compaction vs. the oblivious
  baselines, evaluated under the true communication model (§1's
  motivation),
* **remapping policy** — with vs. without relaxation (Definition 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.topology import Architecture
from repro.baselines.list_oblivious import oblivious_list_schedule
from repro.baselines.rotation_chao import rotation_schedule
from repro.core.config import CycloConfig
from repro.core.cyclo import cyclo_compact
from repro.core.priority import (
    PriorityFn,
    fifo_priority,
    mobility_only_priority,
    paper_priority,
    volume_only_priority,
)
from repro.core.startup import start_up_schedule
from repro.graph.csdfg import CSDFG

__all__ = [
    "PRIORITY_VARIANTS",
    "priority_ablation",
    "comm_awareness_ablation",
    "relaxation_ablation",
    "CommAblationRow",
]

PRIORITY_VARIANTS: dict[str, PriorityFn] = {
    "paper-PF": paper_priority,
    "mobility": mobility_only_priority,
    "fifo": fifo_priority,
    "volume": volume_only_priority,
}


def priority_ablation(
    graph: CSDFG, arch: Architecture
) -> dict[str, int]:
    """Start-up schedule length under each priority variant."""
    return {
        name: start_up_schedule(graph, arch, priority=fn).length
        for name, fn in PRIORITY_VARIANTS.items()
    }


@dataclass(frozen=True)
class CommAblationRow:
    """Outcome of one scheduler in the communication-awareness ablation.

    ``claimed`` is the length the scheduler believes in; ``actual`` is
    the minimum legal length under the true communication model
    (``None`` == infeasible placements).
    """

    scheduler: str
    claimed: int
    actual: int | None


def comm_awareness_ablation(
    graph: CSDFG, arch: Architecture, *, config: CycloConfig | None = None
) -> list[CommAblationRow]:
    """Compare cyclo-compaction with the oblivious baselines on
    ``arch`` (all evaluated under the true comm model)."""
    rows: list[CommAblationRow] = []

    result = cyclo_compact(graph, arch, config=config)
    rows.append(
        CommAblationRow(
            scheduler="cyclo-compaction",
            claimed=result.final_length,
            actual=result.final_length,
        )
    )

    oblivious = oblivious_list_schedule(graph, arch)
    rows.append(
        CommAblationRow(
            scheduler="oblivious-list",
            claimed=oblivious.claimed_length,
            actual=oblivious.actual_length,
        )
    )

    rotation = rotation_schedule(graph, arch, config=config)
    rows.append(
        CommAblationRow(
            scheduler="rotation-no-comm",
            claimed=rotation.claimed_length,
            actual=rotation.actual_length,
        )
    )
    return rows


def relaxation_ablation(
    graph: CSDFG, arch: Architecture, *, max_iterations: int | None = None
) -> dict[str, int]:
    """Final length with vs. without remapping relaxation."""
    out: dict[str, int] = {}
    for label, relaxation in (("with", True), ("w/o", False)):
        cfg = CycloConfig(relaxation=relaxation, max_iterations=max_iterations)
        result = cyclo_compact(graph, arch, config=cfg)
        out[label] = result.final_length
    return out
