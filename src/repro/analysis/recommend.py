"""Architecture recommendation for a workload (extension).

Answers the system designer's question the paper's evaluation implies:
*given this loop, which interconnect do I build?*  Runs
cyclo-compaction over a candidate set and ranks by schedule length
first, then by hardware cost (link count — a proxy for wiring/area),
then by realized single-channel congestion (from
:mod:`repro.sim.contention`), so a cheaper topology wins ties against
the completely connected machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.arch.registry import paper_architectures
from repro.arch.topology import Architecture
from repro.core.config import CycloConfig
from repro.core.cyclo import cyclo_compact
from repro.graph.csdfg import CSDFG
from repro.sim.contention import simulate_contended

__all__ = ["ArchitectureScore", "recommend_architecture"]


@dataclass(frozen=True)
class ArchitectureScore:
    """One candidate's evaluation.

    Sort key: (schedule length, link count, queueing) ascending.
    """

    key: str
    name: str
    length: int
    links: int
    queueing: int

    @property
    def sort_key(self) -> tuple[int, int, int]:
        return (self.length, self.links, self.queueing)


def recommend_architecture(
    graph: CSDFG,
    candidates: Mapping[str, Architecture] | None = None,
    *,
    config: CycloConfig | None = None,
    contention_iterations: int = 4,
) -> list[ArchitectureScore]:
    """Rank candidate architectures for ``graph``; best first.

    ``candidates`` defaults to the paper's five 8-PE architectures.
    """
    if candidates is None:
        candidates = paper_architectures(8)
    cfg = config if config is not None else CycloConfig(
        max_iterations=40, validate_each_step=False
    )
    scores: list[ArchitectureScore] = []
    for key, arch in candidates.items():
        result = cyclo_compact(graph, arch, config=cfg)
        report = simulate_contended(
            result.graph, arch, result.schedule, iterations=contention_iterations
        )
        scores.append(
            ArchitectureScore(
                key=key,
                name=arch.name,
                length=result.final_length,
                links=len(arch.links),
                queueing=report.total_queueing,
            )
        )
    scores.sort(key=lambda s: (s.sort_key, s.key))
    return scores
