"""Markdown experiment report generation.

Produces the paper-vs-measured record that EXPERIMENTS.md is built
from: every table/figure experiment is rerun and rendered as a markdown
section with the published values alongside the measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.experiments import ExperimentCell

__all__ = ["PaperComparison", "markdown_comparison_table", "markdown_grid"]


@dataclass(frozen=True)
class PaperComparison:
    """One experiment cell with its published counterpart.

    ``paper_init`` / ``paper_after`` may be ``None`` when the paper did
    not report that cell (or reported it on an incomparable scale).
    """

    label: str
    paper_init: int | None
    paper_after: int | None
    measured: ExperimentCell

    @property
    def matches_shape(self) -> bool:
        """Compaction direction and rough magnitude agree with the
        paper (within the reconstruction tolerance of 3 control
        steps)."""
        cell = self.measured
        if cell.after > cell.init:
            return False
        if self.paper_init is not None and abs(cell.init - self.paper_init) > 3:
            return False
        if self.paper_after is not None and abs(cell.after - self.paper_after) > 3:
            return False
        return True


def markdown_comparison_table(
    title: str, comparisons: Iterable[PaperComparison]
) -> str:
    """A markdown table of paper-vs-measured rows."""
    lines = [
        f"### {title}",
        "",
        "| cell | paper init | paper after | measured init | measured after | shape |",
        "|---|---|---|---|---|---|",
    ]
    for comp in comparisons:
        paper_i = "-" if comp.paper_init is None else str(comp.paper_init)
        paper_a = "-" if comp.paper_after is None else str(comp.paper_after)
        shape = "ok" if comp.matches_shape else "MISMATCH"
        lines.append(
            f"| {comp.label} | {paper_i} | {paper_a} | "
            f"{comp.measured.init} | {comp.measured.after} | {shape} |"
        )
    return "\n".join(lines) + "\n"


def markdown_grid(title: str, cells: dict[str, ExperimentCell]) -> str:
    """A markdown table of one run_grid result."""
    lines = [
        f"### {title}",
        "",
        "| architecture | init | after | improvement | passes to best | bound |",
        "|---|---|---|---|---|---|",
    ]
    for key, cell in cells.items():
        lines.append(
            f"| {key} | {cell.init} | {cell.after} | {cell.improvement} | "
            f"{cell.passes_to_best} | {cell.bound} |"
        )
    return "\n".join(lines) + "\n"
