"""Text rendering of experiment grids in the paper's Table 11 layout.

``format_table11`` prints rows of ``init``/``after`` pairs per
architecture column for each (workload, policy) row — the same shape as
the paper's final table, so measured and published values can be
eyeballed side by side.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.experiments import ExperimentCell

__all__ = ["format_table11", "format_cells"]


def format_table11(
    rows: Sequence[tuple[str, str, Mapping[str, ExperimentCell]]],
    column_order: Sequence[str] = ("com", "lin", "rin", "2-d", "hyp"),
) -> str:
    """Render rows of ``(workload label, policy label, cells-by-arch)``.

    Mirrors the paper's Table 11: each architecture contributes an
    ``init`` and an ``after`` column.
    """
    headers = ["application", "relax"]
    for col in column_order:
        headers += [f"{col}:init", f"{col}:after"]
    body: list[list[str]] = []
    for workload, policy, cells in rows:
        row = [workload, policy]
        for col in column_order:
            cell = cells.get(col)
            if cell is None:
                row += ["-", "-"]
            else:
                row += [str(cell.init), str(cell.after)]
        body.append(row)
    return _format_grid([headers] + body)


def format_cells(cells: Mapping[str, ExperimentCell]) -> str:
    """One-workload summary: arch, init, after, passes, bound."""
    headers = ["arch", "init", "after", "improvement", "passes", "bound"]
    body = [
        [
            key,
            str(cell.init),
            str(cell.after),
            str(cell.improvement),
            str(cell.passes_to_best),
            str(cell.bound),
        ]
        for key, cell in cells.items()
    ]
    return _format_grid([headers] + body)


def _format_grid(rows: list[list[str]]) -> str:
    widths = [
        max(len(row[i]) for row in rows) for i in range(len(rows[0]))
    ]
    lines = []
    for k, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
        if k == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
