"""Parameter sweeps: processor count, data volume, slowdown factor.

Reusable sweep drivers behind the scaling figures of the examples and
benchmarks: each sweep point runs full cyclo-compaction and records the
(init, after, bound) triple, so saturation effects (more PEs stop
helping once the iteration bound or the communication costs bind) are
directly visible.

Every sweep accepts ``jobs``: with ``jobs > 1`` the points run on a
process pool via :func:`repro.perf.parallel.run_parallel` — each point
is an independent full optimiser run determined only by its inputs, so
the parallel results are identical to the serial ones, in the same
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.analysis.experiments import run_cell
from repro.arch.comm import CommModel
from repro.arch.registry import make_architecture
from repro.core.config import CycloConfig
from repro.graph.csdfg import CSDFG
from repro.graph.transform import scale_volumes, slowdown
from repro.perf.parallel import run_parallel

__all__ = ["SweepPoint", "pe_count_sweep", "volume_sweep", "slowdown_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample.

    ``x`` is the swept parameter value (PE count, volume factor, or
    slowdown factor).
    """

    x: int
    init: int
    after: int
    bound: Fraction

    @property
    def improvement(self) -> int:
        return self.init - self.after


def _default_config() -> CycloConfig:
    return CycloConfig(max_iterations=40, validate_each_step=False)


def _pe_point(params: tuple) -> SweepPoint:
    graph, arch_kind, count, comm_model, cfg = params
    arch = make_architecture(arch_kind, count, comm_model=comm_model)
    cell, _ = run_cell(graph, arch, config=cfg)
    return SweepPoint(x=count, init=cell.init, after=cell.after, bound=cell.bound)


def _volume_point(params: tuple) -> SweepPoint:
    graph, arch_kind, num_pes, factor, cfg = params
    arch = make_architecture(arch_kind, num_pes)
    g = scale_volumes(graph, factor) if factor > 1 else graph
    cell, _ = run_cell(g, arch, config=cfg)
    return SweepPoint(x=factor, init=cell.init, after=cell.after, bound=cell.bound)


def _slowdown_point(params: tuple) -> SweepPoint:
    graph, arch_kind, num_pes, factor, cfg = params
    arch = make_architecture(arch_kind, num_pes)
    g = slowdown(graph, factor) if factor > 1 else graph
    cell, _ = run_cell(g, arch, config=cfg)
    return SweepPoint(x=factor, init=cell.init, after=cell.after, bound=cell.bound)


def pe_count_sweep(
    graph: CSDFG,
    arch_kind: str,
    pe_counts: Sequence[int],
    *,
    comm_model: CommModel | None = None,
    config: CycloConfig | None = None,
    jobs: int = 1,
) -> list[SweepPoint]:
    """Sweep the processor count of one architecture family."""
    cfg = config if config is not None else _default_config()
    return run_parallel(
        _pe_point,
        [(graph, arch_kind, count, comm_model, cfg) for count in pe_counts],
        jobs=jobs,
    )


def volume_sweep(
    graph: CSDFG,
    arch_kind: str,
    num_pes: int,
    factors: Sequence[int],
    *,
    config: CycloConfig | None = None,
    jobs: int = 1,
) -> list[SweepPoint]:
    """Sweep the communication data-volume scale.

    Larger volumes raise store-and-forward costs, pushing the optimum
    toward fewer, more local processors — schedule lengths are
    non-decreasing in the factor (checked by the tests in aggregate).
    """
    cfg = config if config is not None else _default_config()
    return run_parallel(
        _volume_point,
        [(graph, arch_kind, num_pes, factor, cfg) for factor in factors],
        jobs=jobs,
    )


def slowdown_sweep(
    graph: CSDFG,
    arch_kind: str,
    num_pes: int,
    factors: Sequence[int],
    *,
    config: CycloConfig | None = None,
    jobs: int = 1,
) -> list[SweepPoint]:
    """Sweep the slow-down factor (the paper's Table 11 transform).

    Slowdown divides the iteration bound by the factor, giving the
    retimer more freedom; compacted lengths typically shrink until the
    resource/communication floor binds.
    """
    cfg = config if config is not None else _default_config()
    return run_parallel(
        _slowdown_point,
        [(graph, arch_kind, num_pes, factor, cfg) for factor in factors],
        jobs=jobs,
    )
