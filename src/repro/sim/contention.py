"""Contention-aware network replay (extension).

The paper assumes "the communication channels are multiple so that
there is no congestion" (§3): every message experiences exactly
``M = hops * volume`` control steps of transit.  This module replays a
schedule's message traffic over a **single-channel** interconnect —
each link carries one message at a time, store-and-forward, FIFO by
injection time — and measures how late messages actually arrive
relative to the no-congestion model:

* a message departs when its producer finishes,
* each hop occupies the traversed link for ``volume`` control steps
  and must wait for the link to free up,
* the consumer needs the data one control step before its issue.

The report quantifies the optimism of the multiple-channel assumption:
``max_lateness == 0`` means the schedule is valid even on a
single-channel machine; otherwise the schedule would need
``extra_length_needed`` more control steps per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.routing import route
from repro.arch.topology import Architecture
from repro.graph.csdfg import CSDFG
from repro.schedule.table import ScheduleTable
from repro.sim.engine import SimulationError, simulate

__all__ = ["ContendedMessage", "ContentionReport", "simulate_contended"]


@dataclass(frozen=True)
class ContendedMessage:
    """One message's realized journey under link contention.

    ``model_arrival`` is the no-congestion arrival (depart + M - 1);
    ``actual_arrival`` includes link queueing; ``needed_by`` is the
    last control step the data may arrive (consumer CB - 1).
    ``lateness = max(0, actual_arrival - needed_by)``.
    """

    src: object
    dst: object
    src_iteration: int
    depart: int
    model_arrival: int
    actual_arrival: int
    needed_by: int

    @property
    def queueing(self) -> int:
        """Extra control steps spent waiting for busy links."""
        return self.actual_arrival - self.model_arrival

    @property
    def lateness(self) -> int:
        return max(0, self.actual_arrival - self.needed_by)


@dataclass
class ContentionReport:
    """Aggregate outcome of a contended replay.

    Attributes
    ----------
    messages:
        All replayed messages with realized timings.
    max_lateness:
        Worst data-miss in control steps (0 == schedule still valid).
    late_messages:
        How many messages missed their consumer's issue step.
    total_queueing:
        Sum of link-waiting control steps across all messages.
    extra_length_needed:
        Conservative per-iteration padding that would absorb the worst
        lateness (``ceil(max_lateness / 1)`` — one empty control step
        per lateness step, pessimistic but safe).
    """

    messages: list[ContendedMessage] = field(default_factory=list)
    max_lateness: int = 0
    late_messages: int = 0
    total_queueing: int = 0
    #: Control steps each directed link spent carrying data.
    link_busy: dict[tuple[int, int], int] = field(default_factory=dict)
    #: Waiting control steps attributable to each directed link (a
    #: message blocked at a busy link charges the wait to that link).
    link_queueing: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def extra_length_needed(self) -> int:
        return self.max_lateness

    @property
    def congestion_free(self) -> bool:
        """True when the multiple-channel assumption was harmless."""
        return self.max_lateness == 0

    def hotspots(self, top: int = 3) -> list[tuple[tuple[int, int], int]]:
        """Directed links that caused the most queueing, descending;
        ties fall back to busy time then link id.  The empirical
        counterpart of the static per-link loads in
        :func:`repro.arch.contention.link_loads`."""
        return sorted(
            self.link_queueing.items(),
            key=lambda kv: (-kv[1], -self.link_busy.get(kv[0], 0), kv[0]),
        )[:top]


def simulate_contended(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    iterations: int = 6,
) -> ContentionReport:
    """Replay message traffic over single-channel links.

    Messages are injected in (depart time, source PE, edge) order and
    traverse their deterministic routes
    (:func:`repro.arch.routing.route`); each directed link serves one
    message at a time, FIFO.
    """
    if iterations < 1:
        raise SimulationError(f"iterations must be >= 1, got {iterations}")
    base = simulate(graph, arch, schedule, iterations, check=False)

    # (depart, src_pe, stable-tiebreak) injection order
    pending = sorted(
        base.messages,
        key=lambda m: (m.depart, m.src_pe, str(m.src), str(m.dst)),
    )
    link_free: dict[tuple[int, int], int] = {}
    report = ContentionReport()

    for msg in pending:
        path = route(arch, msg.src_pe, msg.dst_pe)
        now = msg.depart  # first control step the head may use a link
        for a, b in zip(path, path[1:]):
            link = (a, b)
            start = max(now, link_free.get(link, 1))
            if start > now:
                report.link_queueing[link] = (
                    report.link_queueing.get(link, 0) + start - now
                )
            finish = start + msg.volume - 1
            report.link_busy[link] = (
                report.link_busy.get(link, 0) + msg.volume
            )
            link_free[link] = finish + 1
            now = finish + 1
        actual_arrival = now - 1
        consumer = base.execution_of(msg.dst, msg.dst_iteration)
        needed_by = consumer.start - 1
        model_arrival = msg.arrive
        record = ContendedMessage(
            src=msg.src,
            dst=msg.dst,
            src_iteration=msg.src_iteration,
            depart=msg.depart,
            model_arrival=model_arrival,
            actual_arrival=actual_arrival,
            needed_by=needed_by,
        )
        report.messages.append(record)
        report.total_queueing += record.queueing
        if record.lateness > 0:
            report.late_messages += 1
            if record.lateness > report.max_lateness:
                report.max_lateness = record.lateness
    return report
