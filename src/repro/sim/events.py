"""Event records produced by the schedule execution simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csdfg import Node

__all__ = ["TaskExecution", "MessageTransfer"]


@dataclass(frozen=True)
class TaskExecution:
    """One dynamic instance of a task.

    Attributes
    ----------
    node:
        The task.
    iteration:
        0-based loop iteration index.
    pe:
        Executing processor.
    start, finish:
        Global control steps (1-based), ``finish - start + 1 == t``.
    """

    node: Node
    iteration: int
    pe: int
    start: int
    finish: int

    @property
    def duration(self) -> int:
        return self.finish - self.start + 1


@dataclass(frozen=True)
class MessageTransfer:
    """One inter-processor data transfer.

    ``depart`` is the first control step after the producer finishes;
    ``arrive`` is the last control step of transit (the consumer may
    start at ``arrive + 1``).  Same-PE dependences generate no
    transfer.
    """

    src: Node
    dst: Node
    src_iteration: int
    dst_iteration: int
    src_pe: int
    dst_pe: int
    volume: int
    depart: int
    arrive: int

    @property
    def latency(self) -> int:
        """Transit control steps (``M`` in the paper)."""
        return self.arrive - self.depart + 1
