"""Execution simulator for static cyclic schedules.

Expands a schedule table into its dynamic execution over ``iterations``
loop iterations — instance ``(v, j)`` of task ``v`` runs at global
control steps ``j*L + CB(v) .. j*L + CE(v)`` on ``PE(v)`` — and then
*independently* re-checks the execution model event by event:

* **data availability**: every consumed value was produced and has
  finished its store-and-forward transit before the consumer starts,
* **processor exclusivity**: no two instances overlap on a PE,
* **determinism**: instances of the same task never overtake each
  other.

This is a second, dynamic implementation of the legality rules that the
static validator (:mod:`repro.schedule.validate`) encodes as
inequalities; the property tests cross-check the two on random
schedules.  The simulator also yields the event timeline used by the
buffer analysis (:mod:`repro.sim.buffers`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.topology import Architecture
from repro.errors import ReproError
from repro.graph.csdfg import CSDFG, Node
from repro.schedule.table import ScheduleTable
from repro.sim.events import MessageTransfer, TaskExecution

__all__ = ["SimulationError", "SimulationResult", "simulate"]


class SimulationError(ReproError):
    """The dynamic execution violated the machine model."""


@dataclass
class SimulationResult:
    """Full dynamic trace of ``iterations`` executions of the loop.

    Attributes
    ----------
    executions:
        All task instances, ordered by (iteration, start).
    messages:
        All inter-processor transfers.
    iterations:
        Number of simulated loop iterations.
    schedule_length:
        The initiation interval ``L``.
    """

    executions: list[TaskExecution]
    messages: list[MessageTransfer]
    iterations: int
    schedule_length: int
    _by_instance: dict[tuple[Node, int], TaskExecution] = field(
        default_factory=dict, repr=False
    )

    @property
    def makespan(self) -> int:
        """Last busy global control step."""
        return max((e.finish for e in self.executions), default=0)

    @property
    def total_comm_steps(self) -> int:
        """Sum of transfer latencies across the run."""
        return sum(m.latency for m in self.messages)

    def execution_of(self, node: Node, iteration: int) -> TaskExecution:
        """The instance record of ``node`` at ``iteration``."""
        try:
            return self._by_instance[(node, iteration)]
        except KeyError:
            raise SimulationError(
                f"no execution of {node!r} at iteration {iteration}"
            ) from None

    def throughput(self) -> float:
        """Average iterations completed per control step."""
        if self.makespan == 0:
            return 0.0
        return self.iterations / self.makespan

    def pe_timeline(self, pe: int) -> list[TaskExecution]:
        """All instances executed by ``pe``, by start time."""
        return sorted(
            (e for e in self.executions if e.pe == pe),
            key=lambda e: e.start,
        )


def simulate(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    iterations: int = 4,
    *,
    check: bool = True,
    pipelined_pes: bool = False,
) -> SimulationResult:
    """Execute ``iterations`` loop iterations of ``schedule``.

    With ``check=True`` (default) every model rule is re-verified
    dynamically; :class:`SimulationError` pinpoints the first violated
    event.  Dependences reaching before iteration 0 are assumed
    preloaded (the loop's live-in state), mirroring the static model.
    With ``pipelined_pes=True`` a processor conflict means two tasks
    *issued* in the same control step (execution may overlap).
    """
    if iterations < 1:
        raise SimulationError(f"iterations must be >= 1, got {iterations}")
    L = schedule.length
    if L < 1:
        raise SimulationError("cannot simulate an empty schedule")

    executions: list[TaskExecution] = []
    by_instance: dict[tuple[Node, int], TaskExecution] = {}
    for j in range(iterations):
        for node in graph.nodes():
            placement = schedule.placement(node)
            exe = TaskExecution(
                node=node,
                iteration=j,
                pe=placement.pe,
                start=j * L + placement.start,
                finish=j * L + placement.finish,
            )
            executions.append(exe)
            by_instance[(node, j)] = exe
    executions.sort(key=lambda e: (e.start, str(e.node)))

    messages: list[MessageTransfer] = []
    for edge in graph.edges():
        src_pe = schedule.processor(edge.src)
        dst_pe = schedule.processor(edge.dst)
        if src_pe == dst_pe:
            continue
        cost = arch.comm_cost(src_pe, dst_pe, edge.volume)
        for j in range(iterations):
            consumer_iter = j + edge.delay
            if consumer_iter >= iterations:
                continue
            producer = by_instance[(edge.src, j)]
            messages.append(
                MessageTransfer(
                    src=edge.src,
                    dst=edge.dst,
                    src_iteration=j,
                    dst_iteration=consumer_iter,
                    src_pe=src_pe,
                    dst_pe=dst_pe,
                    volume=edge.volume,
                    depart=producer.finish + 1,
                    arrive=producer.finish + cost,
                )
            )

    result = SimulationResult(
        executions=executions,
        messages=messages,
        iterations=iterations,
        schedule_length=L,
        _by_instance=by_instance,
    )
    if check:
        _check_dependences(graph, arch, result)
        _check_resources(
            result, num_pes=schedule.num_pes, pipelined_pes=pipelined_pes
        )
    return result


def _check_dependences(
    graph: CSDFG, arch: Architecture, result: SimulationResult
) -> None:
    for edge in graph.edges():
        for j in range(result.iterations):
            consumer_iter = j + edge.delay
            if consumer_iter >= result.iterations:
                continue
            producer = result.execution_of(edge.src, j)
            consumer = result.execution_of(edge.dst, consumer_iter)
            comm = arch.comm_cost(producer.pe, consumer.pe, edge.volume)
            ready = producer.finish + comm + 1
            if consumer.start < ready:
                raise SimulationError(
                    f"iteration {consumer_iter}: {edge.dst!r} starts at "
                    f"{consumer.start} but data from {edge.src!r} "
                    f"(iteration {j}) is ready only at {ready}"
                )


def _check_resources(
    result: SimulationResult, num_pes: int, pipelined_pes: bool = False
) -> None:
    for pe in range(num_pes):
        timeline = result.pe_timeline(pe)
        for a, b in zip(timeline, timeline[1:]):
            conflict = (
                b.start == a.start if pipelined_pes else b.start <= a.finish
            )
            if conflict:
                raise SimulationError(
                    f"pe{pe + 1}: {a.node!r}@{a.iteration} "
                    f"(cs {a.start}-{a.finish}) overlaps "
                    f"{b.node!r}@{b.iteration} (cs {b.start}-{b.finish})"
                )
