"""Execution simulator for static cyclic schedules.

Expands a schedule table into its dynamic execution over ``iterations``
loop iterations — instance ``(v, j)`` of task ``v`` runs at global
control steps ``j*L + CB(v) .. j*L + CE(v)`` on ``PE(v)`` — and then
*independently* re-checks the execution model event by event:

* **data availability**: every consumed value was produced and has
  finished its store-and-forward transit before the consumer starts,
* **processor exclusivity**: no two instances overlap on a PE,
* **determinism**: instances of the same task never overtake each
  other.

This is a second, dynamic implementation of the legality rules that the
static validator (:mod:`repro.schedule.validate`) encodes as
inequalities; the property tests cross-check the two on random
schedules.  The simulator also yields the event timeline used by the
buffer analysis (:mod:`repro.sim.buffers`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.topology import Architecture
from repro.errors import ReproError
from repro.graph.csdfg import CSDFG, Node
from repro.obs import metrics, span
from repro.schedule.table import ScheduleTable
from repro.sim.events import MessageTransfer, TaskExecution

__all__ = ["LinkTraffic", "SimulationError", "SimulationResult", "simulate"]


class SimulationError(ReproError):
    """The dynamic execution violated the machine model."""


@dataclass(frozen=True)
class LinkTraffic:
    """Aggregate traffic of one directed PE pair across a run.

    ``transit_steps`` sums the store-and-forward latency of every
    message (the hop-volume total: for the default comm model each
    message contributes ``hops * volume`` control steps).
    """

    messages: int
    volume: int
    transit_steps: int


@dataclass
class SimulationResult:
    """Full dynamic trace of ``iterations`` executions of the loop.

    Attributes
    ----------
    executions:
        All task instances, ordered by (iteration, start).
    messages:
        All inter-processor transfers.
    iterations:
        Number of simulated loop iterations.
    schedule_length:
        The initiation interval ``L``.
    """

    executions: list[TaskExecution]
    messages: list[MessageTransfer]
    iterations: int
    schedule_length: int
    num_pes: int = 0
    _by_instance: dict[tuple[Node, int], TaskExecution] = field(
        default_factory=dict, repr=False
    )

    @property
    def makespan(self) -> int:
        """Last busy global control step."""
        return max((e.finish for e in self.executions), default=0)

    @property
    def total_comm_steps(self) -> int:
        """Sum of transfer latencies across the run."""
        return sum(m.latency for m in self.messages)

    def execution_of(self, node: Node, iteration: int) -> TaskExecution:
        """The instance record of ``node`` at ``iteration``."""
        try:
            return self._by_instance[(node, iteration)]
        except KeyError:
            raise SimulationError(
                f"no execution of {node!r} at iteration {iteration}"
            ) from None

    def throughput(self) -> float:
        """Average iterations completed per control step."""
        if self.makespan == 0:
            return 0.0
        return self.iterations / self.makespan

    def pe_timeline(self, pe: int) -> list[TaskExecution]:
        """All instances executed by ``pe``, by start time."""
        return sorted(
            (e for e in self.executions if e.pe == pe),
            key=lambda e: e.start,
        )

    def pe_busy_steps(self) -> dict[int, int]:
        """Busy control steps per processor (0 for idle PEs)."""
        pes = range(self.num_pes) if self.num_pes else sorted(
            {e.pe for e in self.executions}
        )
        busy = {pe: 0 for pe in pes}
        for e in self.executions:
            busy[e.pe] = busy.get(e.pe, 0) + e.duration
        return busy

    def pe_utilisation(self) -> dict[int, float]:
        """Busy fraction of the makespan per processor."""
        horizon = self.makespan
        if horizon == 0:
            return {pe: 0.0 for pe in self.pe_busy_steps()}
        return {
            pe: busy / horizon for pe, busy in self.pe_busy_steps().items()
        }

    def link_traffic(self) -> dict[tuple[int, int], LinkTraffic]:
        """Aggregate per-link (directed PE pair) message traffic."""
        acc: dict[tuple[int, int], list[int]] = {}
        for m in self.messages:
            entry = acc.setdefault((m.src_pe, m.dst_pe), [0, 0, 0])
            entry[0] += 1
            entry[1] += m.volume
            entry[2] += m.latency
        return {
            link: LinkTraffic(
                messages=e[0], volume=e[1], transit_steps=e[2]
            )
            for link, e in sorted(acc.items())
        }


def simulate(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    iterations: int = 4,
    *,
    check: bool = True,
    pipelined_pes: bool = False,
) -> SimulationResult:
    """Execute ``iterations`` loop iterations of ``schedule``.

    With ``check=True`` (default) every model rule is re-verified
    dynamically; :class:`SimulationError` pinpoints the first violated
    event.  Dependences reaching before iteration 0 are assumed
    preloaded (the loop's live-in state), mirroring the static model.
    With ``pipelined_pes=True`` a processor conflict means two tasks
    *issued* in the same control step (execution may overlap).
    """
    if iterations < 1:
        raise SimulationError(f"iterations must be >= 1, got {iterations}")
    L = schedule.length
    if L < 1:
        raise SimulationError("cannot simulate an empty schedule")

    with span(
        "simulate", workload=graph.name, arch=arch.name, iterations=iterations
    ):
        result = _expand(graph, arch, schedule, iterations, L)
        if check:
            _check_dependences(graph, arch, result)
            _check_resources(
                result, num_pes=schedule.num_pes, pipelined_pes=pipelined_pes
            )
        _emit_metrics(result)
    return result


def _expand(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    iterations: int,
    L: int,
) -> SimulationResult:
    executions: list[TaskExecution] = []
    by_instance: dict[tuple[Node, int], TaskExecution] = {}
    for j in range(iterations):
        for node in graph.nodes():
            placement = schedule.placement(node)
            exe = TaskExecution(
                node=node,
                iteration=j,
                pe=placement.pe,
                start=j * L + placement.start,
                finish=j * L + placement.finish,
            )
            executions.append(exe)
            by_instance[(node, j)] = exe
    executions.sort(key=lambda e: (e.start, str(e.node)))

    messages: list[MessageTransfer] = []
    for edge in graph.edges():
        src_pe = schedule.processor(edge.src)
        dst_pe = schedule.processor(edge.dst)
        if src_pe == dst_pe:
            continue
        cost = arch.comm_cost(src_pe, dst_pe, edge.volume)
        for j in range(iterations):
            consumer_iter = j + edge.delay
            if consumer_iter >= iterations:
                continue
            producer = by_instance[(edge.src, j)]
            messages.append(
                MessageTransfer(
                    src=edge.src,
                    dst=edge.dst,
                    src_iteration=j,
                    dst_iteration=consumer_iter,
                    src_pe=src_pe,
                    dst_pe=dst_pe,
                    volume=edge.volume,
                    depart=producer.finish + 1,
                    arrive=producer.finish + cost,
                )
            )

    return SimulationResult(
        executions=executions,
        messages=messages,
        iterations=iterations,
        schedule_length=L,
        num_pes=schedule.num_pes,
        _by_instance=by_instance,
    )


def _emit_metrics(result: SimulationResult) -> None:
    """Publish the run's resource accounting to the metrics registry
    (no-op while observability is off)."""
    if not metrics.runtime.enabled():
        return
    makespan = result.makespan
    for pe, busy in result.pe_busy_steps().items():
        metrics.set_gauge(f"sim.pe{pe + 1}.busy_steps", busy)
        metrics.set_gauge(f"sim.pe{pe + 1}.idle_steps", makespan - busy)
        if makespan:
            metrics.set_gauge(
                f"sim.pe{pe + 1}.utilisation", round(busy / makespan, 4)
            )
    metrics.inc("sim.messages", len(result.messages))
    metrics.inc("sim.transit_steps", result.total_comm_steps)
    for (src, dst), traffic in result.link_traffic().items():
        link = f"sim.link.pe{src + 1}->pe{dst + 1}"
        metrics.set_gauge(f"{link}.messages", traffic.messages)
        metrics.set_gauge(f"{link}.volume", traffic.volume)
        metrics.set_gauge(f"{link}.transit_steps", traffic.transit_steps)


def _check_dependences(
    graph: CSDFG, arch: Architecture, result: SimulationResult
) -> None:
    for edge in graph.edges():
        for j in range(result.iterations):
            consumer_iter = j + edge.delay
            if consumer_iter >= result.iterations:
                continue
            producer = result.execution_of(edge.src, j)
            consumer = result.execution_of(edge.dst, consumer_iter)
            comm = arch.comm_cost(producer.pe, consumer.pe, edge.volume)
            ready = producer.finish + comm + 1
            if consumer.start < ready:
                raise SimulationError(
                    f"iteration {consumer_iter}: {edge.dst!r} starts at "
                    f"{consumer.start} but data from {edge.src!r} "
                    f"(iteration {j}) is ready only at {ready}"
                )


def _check_resources(
    result: SimulationResult, num_pes: int, pipelined_pes: bool = False
) -> None:
    for pe in range(num_pes):
        timeline = result.pe_timeline(pe)
        for a, b in zip(timeline, timeline[1:]):
            conflict = (
                b.start == a.start if pipelined_pes else b.start <= a.finish
            )
            if conflict:
                raise SimulationError(
                    f"pe{pe + 1}: {a.node!r}@{a.iteration} "
                    f"(cs {a.start}-{a.finish}) overlaps "
                    f"{b.node!r}@{b.iteration} (cs {b.start}-{b.finish})"
                )
