"""Edge buffer analysis over a simulated execution.

Each dependence edge needs storage for its live tokens: a value is
*live* from the control step after its producer finishes (plus transit,
for remote edges) until its consumer finishes reading it.  The steady-
state maximum number of simultaneously live tokens per edge sizes the
FIFO a hardware implementation (or the message buffer a runtime) must
provision — at least ``d(e)`` for a delayed edge (the preloaded
initial tokens) and more when the schedule skews producer and consumer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.topology import Architecture
from repro.graph.csdfg import CSDFG
from repro.obs import metrics
from repro.schedule.table import ScheduleTable
from repro.sim.engine import SimulationResult, simulate

__all__ = ["BufferReport", "buffer_requirements"]


@dataclass(frozen=True)
class BufferReport:
    """Buffer sizing for one schedule.

    Attributes
    ----------
    per_edge:
        Max simultaneous live tokens per edge key ``(src, dst)``.
    total_tokens:
        Sum over edges (aggregate storage in tokens).
    total_words:
        Sum weighted by each edge's data volume (storage in words).
    """

    per_edge: dict[tuple, int]
    total_tokens: int
    total_words: int


def buffer_requirements(
    graph: CSDFG,
    arch: Architecture,
    schedule: ScheduleTable,
    *,
    iterations: int = 6,
    result: SimulationResult | None = None,
) -> BufferReport:
    """Measure per-edge peak token liveness over a simulated run.

    A token produced by ``(u, j)`` for edge ``u -> v`` (delay ``d``)
    becomes live at ``CE(u, j) + M + 1`` and dies at ``CE(v, j + d)``.
    Initial tokens (consumed by iterations ``0 .. d-1``) are live from
    control step 1.  The report takes the max concurrent liveness per
    edge across the run.
    """
    sim = result if result is not None else simulate(
        graph, arch, schedule, iterations, check=False
    )
    n = sim.iterations
    per_edge: dict[tuple, int] = {}
    for edge in graph.edges():
        src_pe = schedule.processor(edge.src)
        dst_pe = schedule.processor(edge.dst)
        comm = arch.comm_cost(src_pe, dst_pe, edge.volume)
        intervals: list[tuple[int, int]] = []
        # initial (preloaded) tokens feed consumer iterations 0..d-1
        for consumer_iter in range(min(edge.delay, n)):
            death = sim.execution_of(edge.dst, consumer_iter).finish
            intervals.append((1, death))
        # produced tokens
        for j in range(n):
            consumer_iter = j + edge.delay
            if consumer_iter >= n:
                continue
            birth = sim.execution_of(edge.src, j).finish + comm + 1
            death = sim.execution_of(edge.dst, consumer_iter).finish
            intervals.append((birth, max(birth, death)))
        per_edge[edge.key] = _max_overlap(intervals)
    total_tokens = sum(per_edge.values())
    total_words = sum(
        per_edge[e.key] * e.volume for e in graph.edges()
    )
    if metrics.runtime.enabled():
        # buffer high-water marks, per edge and aggregate
        for (src, dst), peak in per_edge.items():
            metrics.set_gauge(f"sim.buffer.{src}->{dst}.high_water", peak)
        metrics.set_gauge("sim.buffer.total_tokens", total_tokens)
        metrics.set_gauge("sim.buffer.total_words", total_words)
    return BufferReport(
        per_edge=per_edge,
        total_tokens=total_tokens,
        total_words=total_words,
    )


def _max_overlap(intervals: list[tuple[int, int]]) -> int:
    """Peak number of overlapping [birth, death] intervals."""
    if not intervals:
        return 0
    events: list[tuple[int, int]] = []
    for birth, death in intervals:
        events.append((birth, 1))
        events.append((death + 1, -1))
    events.sort()
    live = peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak
