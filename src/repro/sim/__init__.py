"""Execution simulator substrate: dynamic replay of static cyclic
schedules, event timelines, buffer sizing and link-contention replay."""

from repro.sim.buffers import BufferReport, buffer_requirements
from repro.sim.contention import (
    ContendedMessage,
    ContentionReport,
    simulate_contended,
)
from repro.sim.engine import (
    LinkTraffic,
    SimulationError,
    SimulationResult,
    simulate,
)
from repro.sim.events import MessageTransfer, TaskExecution

__all__ = [
    "BufferReport",
    "ContendedMessage",
    "ContentionReport",
    "LinkTraffic",
    "MessageTransfer",
    "SimulationError",
    "SimulationResult",
    "TaskExecution",
    "buffer_requirements",
    "simulate",
    "simulate_contended",
]
