"""Unit tests for the `repro analyze` CLI command."""

import json

import pytest

from repro.cli import main
from repro.core import CycloConfig, cyclo_compact
from repro.schedule.io import schedule_to_json
from repro.workloads import make_workload


class TestAnalyzeCommand:
    def test_clean_pair_exits_zero(self, capsys):
        assert main(["analyze", "fir8", "mesh", "--pes", "4"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out and "RA305" in out

    def test_infeasible_target_exits_one(self, capsys):
        code = main(
            ["analyze", "biquad4", "mesh", "--pes", "4",
             "--target-length", "1"]
        )
        assert code == 1
        assert "RA301" in capsys.readouterr().out

    def test_unknown_graph_spec_exits_one(self, capsys):
        assert main(["analyze", "no-such-thing"]) == 1
        assert "RA108" in capsys.readouterr().out

    def test_no_graph_is_a_usage_error(self, capsys):
        assert main(["analyze"]) == 1
        assert "no graph given" in capsys.readouterr().err

    def test_json_format(self, capsys):
        assert main(
            ["analyze", "fir8", "ring", "--pes", "4", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-analysis"
        assert payload["ok"] is True

    def test_sarif_to_file(self, tmp_path, capsys):
        out = tmp_path / "findings.sarif"
        assert main(
            ["analyze", "fir8", "mesh", "--pes", "4",
             "--format", "sarif", "--out", str(out)]
        ) == 0
        sarif = json.loads(out.read_text())
        assert sarif["version"] == "2.1.0"
        assert "written to" in capsys.readouterr().out

    def test_strict_turns_warnings_into_failure(self, tmp_path, capsys):
        # a dead node is a warning: exit 0 normally, 1 under --strict
        from repro.graph.io import to_json as graph_to_json

        graph = make_workload("fir8")
        graph.add_node("ghost", 1)
        path = tmp_path / "g.json"
        path.write_text(json.dumps(graph_to_json(graph)))
        assert main(["analyze", str(path), "mesh", "--pes", "4"]) == 0
        capsys.readouterr()
        assert main(
            ["analyze", str(path), "mesh", "--pes", "4", "--strict"]
        ) == 1
        assert "RA103" in capsys.readouterr().out

    def test_degraded_analysis_flags(self, capsys):
        # cutting a ring link inflates the diameter: RA205 warning
        assert main(
            ["analyze", "fir8", "ring", "--pes", "6", "--cut-link", "1-6"]
        ) == 0
        assert "RA205" in capsys.readouterr().out

    def test_disconnecting_failure_exits_one(self, capsys):
        code = main(
            ["analyze", "fir8", "linear", "--pes", "3", "--fail-pe", "2"]
        )
        assert code == 1
        assert "RA201" in capsys.readouterr().out

    def test_config_file_with_target_length(self, tmp_path, capsys):
        cfg = CycloConfig().to_dict()
        cfg["target_length"] = 1
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(cfg))
        code = main(
            ["analyze", "biquad4", "mesh", "--pes", "4",
             "--config", str(path)]
        )
        assert code == 1
        assert "RA301" in capsys.readouterr().out

    def test_malformed_config_is_ra304(self, tmp_path, capsys):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"no_such_knob": True}))
        assert main(
            ["analyze", "fir8", "mesh", "--pes", "4", "--config", str(path)]
        ) == 1
        assert "RA304" in capsys.readouterr().out

    def test_schedule_certificate_roundtrip(self, tmp_path, capsys):
        graph = make_workload("fir8")
        from repro.arch import make_architecture

        arch = make_architecture("mesh", 4)
        result = cyclo_compact(
            graph, arch,
            config=CycloConfig(max_iterations=10, validate_each_step=False),
        )
        path = tmp_path / "sched.json"
        path.write_text(json.dumps(schedule_to_json(result.schedule)))
        assert main(
            ["analyze", "fir8", "mesh", "--pes", "4",
             "--schedule", str(path)]
        ) == 0

    def test_schedule_certificate_rejects_wrong_machine(
        self, tmp_path, capsys
    ):
        # certify a 4-PE mesh schedule against a 2-PE machine: the
        # placements use PEs that do not exist there
        graph = make_workload("fir8")
        from repro.arch import make_architecture

        arch = make_architecture("mesh", 4)
        result = cyclo_compact(
            graph, arch,
            config=CycloConfig(max_iterations=4, validate_each_step=False),
        )
        path = tmp_path / "sched.json"
        path.write_text(json.dumps(schedule_to_json(result.schedule)))
        code = main(
            ["analyze", "fir8", "linear", "--pes", "2",
             "--schedule", str(path)]
        )
        if code == 0:
            # the compaction may have clustered everything on 2 PEs;
            # force the issue with a machine of 1 PE less than used
            pes = {p.pe for p in result.schedule.placements()}
            assert pes <= {0, 1}
        else:
            assert "RA40" in capsys.readouterr().out

    def test_paper_suite_is_clean(self, capsys):
        assert main(["analyze", "--paper-suite", "--pes", "8"]) == 0
        out = capsys.readouterr().out
        assert "pair(s)" in out and "0 error(s)" in out


class TestListRules:
    def test_prints_every_band(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for head in ("input analyzer", "codebase lint",
                     "determinism flow", "engine contracts"):
            assert head in out
        for code in ("RA101", "RL101", "RL109",
                     "RD101", "RD104", "RC201", "RC204"):
            assert code in out

    def test_shows_severity_and_title(self, capsys):
        main(["analyze", "--list-rules"])
        out = capsys.readouterr().out
        assert "RD101  error" in out
        assert "unseeded-rng-reaches-parallel-work" in out
        assert "RL109  warning" in out


class TestFlowCommand:
    def test_shipped_tree_is_clean(self, capsys):
        assert main(["analyze", "--flow"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_explicit_paths(self, tmp_path, capsys):
        victim = tmp_path / "repro" / "perf" / "driver.py"
        victim.parent.mkdir(parents=True)
        victim.write_text(
            "import random\n"
            "from repro.perf.parallel import run_parallel\n"
            "def payload(item):\n"
            "    return random.random()\n"
            "def drive(items):\n"
            "    return run_parallel(payload, items)\n"
        )
        assert main(["analyze", "--flow", str(victim)]) == 1
        out = capsys.readouterr().out
        assert "RD101" in out

    def test_flow_sarif_output(self, tmp_path, capsys):
        out_path = tmp_path / "flow.sarif"
        assert main([
            "analyze", "--flow", "--format", "sarif",
            "--out", str(out_path),
        ]) == 0
        capsys.readouterr()
        sarif = json.loads(out_path.read_text())
        assert sarif["version"] == "2.1.0"


class TestSanitizeCommand:
    def test_clean_target_exits_zero(self, capsys, monkeypatch):
        import repro
        from pathlib import Path

        monkeypatch.setenv(
            "PYTHONPATH", str(Path(repro.__file__).parent.parent)
        )
        assert main([
            "sanitize", "--timeout", "60", "--",
            "schedule", "figure1", "--arch", "mesh", "--pes", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out

    def test_json_artifact(self, tmp_path, capsys, monkeypatch):
        import repro
        from pathlib import Path

        monkeypatch.setenv(
            "PYTHONPATH", str(Path(repro.__file__).parent.parent)
        )
        out_path = tmp_path / "sanitize.json"
        assert main([
            "sanitize", "--timeout", "60", "--out", str(out_path), "--",
            "schedule", "figure1", "--arch", "mesh", "--pes", "4",
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "repro-sanitize"
        assert payload["ok"] is True

    def test_missing_target_fails(self, capsys):
        assert main(["sanitize"]) == 1
        err = capsys.readouterr().err
        assert "needs a target" in err
