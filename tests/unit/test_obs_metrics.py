"""Unit tests for the metrics registry (repro.obs.metrics)."""

from repro.obs import InMemorySink, metrics, sink_installed
from repro.obs.metrics import MetricsRegistry


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5

    def test_gauge_tracks_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("load")
        g.set(3)
        g.set(9)
        g.set(2)
        assert g.value == 2
        assert g.max_value == 9

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (2, 8, 5):
            h.observe(v)
        assert h.count == 3
        assert h.total == 15
        assert h.min == 2 and h.max == 8
        assert h.mean == 5.0

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("x").mean == 0.0


class TestRegistry:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": {"value": 1.5, "max": 1.5}}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1)
        reg.reset()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestGlobalHelpers:
    def test_noop_while_disabled(self):
        metrics.inc("never")
        metrics.set_gauge("never.g", 1)
        metrics.observe("never.h", 1)
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_records_while_a_sink_is_installed(self):
        with sink_installed(InMemorySink()):
            metrics.inc("live", 2)
            metrics.set_gauge("live.g", 7)
            metrics.observe("live.h", 3)
        snap = metrics.snapshot()
        assert snap["counters"]["live"] == 2
        assert snap["gauges"]["live.g"]["value"] == 7
        assert snap["histograms"]["live.h"]["count"] == 1

    def test_registry_reset_between_tests(self):
        # the autouse fixture in conftest.py must have wiped whatever
        # the previous test recorded into the global registry
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
