"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import InMemorySink, metrics, sink_installed
from repro.obs.metrics import SAMPLE_CAP, MetricsRegistry


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5

    def test_gauge_tracks_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("load")
        g.set(3)
        g.set(9)
        g.set(2)
        assert g.value == 2
        assert g.max_value == 9

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (2, 8, 5):
            h.observe(v)
        assert h.count == 3
        assert h.total == 15
        assert h.min == 2 and h.max == 8
        assert h.mean == 5.0

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("x").mean == 0.0


class TestHistogramPercentiles:
    def test_nearest_rank(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0

    def test_single_sample(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(7.0)
        assert h.percentile(50) == 7.0
        assert h.percentile(99) == 7.0

    def test_empty_returns_none(self):
        h = MetricsRegistry().histogram("lat")
        assert h.percentile(50) is None

    def test_out_of_range_raises(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_includes_percentiles(self):
        h = MetricsRegistry().histogram("lat")
        for v in (4.0, 1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["p50"] == 2.0
        assert s["p95"] == 4.0
        assert s["p99"] == 4.0
        assert s["samples"] == [4.0, 1.0, 3.0, 2.0]

    def test_sample_cap_keeps_first(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(SAMPLE_CAP + 10):
            h.observe(float(v))
        assert len(h.samples) == SAMPLE_CAP
        assert h.samples[0] == 0.0
        assert h.samples[-1] == float(SAMPLE_CAP - 1)
        assert h.count == SAMPLE_CAP + 10  # exact stats keep counting


class TestRegistry:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": {"value": 1.5, "max": 1.5}}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_combines_samples(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for v in (1.0, 2.0):
            a.histogram("h").observe(v)
        for v in (3.0, 4.0):
            b.histogram("h").observe(v)
        a.merge(b.snapshot())
        h = a.histogram("h")
        assert h.count == 4
        assert h.samples == [1.0, 2.0, 3.0, 4.0]
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0

    def test_merge_respects_sample_cap(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for v in range(SAMPLE_CAP - 1):
            a.histogram("h").observe(float(v))
        for v in (101.0, 102.0, 103.0):
            b.histogram("h").observe(v)
        a.merge(b.snapshot())
        h = a.histogram("h")
        assert len(h.samples) == SAMPLE_CAP
        assert h.samples[-1] == 101.0  # keep-first, deterministic
        assert h.count == SAMPLE_CAP + 2

    def test_merge_tolerates_legacy_snapshot_without_samples(self):
        a = MetricsRegistry()
        a.merge({"histograms": {
            "h": {"count": 2, "total": 6.0, "min": 2.0, "max": 4.0}
        }})
        h = a.histogram("h")
        assert h.count == 2
        assert h.samples == []
        assert h.percentile(50) is None

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(1)
        reg.reset()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestGlobalHelpers:
    def test_noop_while_disabled(self):
        metrics.inc("never")
        metrics.set_gauge("never.g", 1)
        metrics.observe("never.h", 1)
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_records_while_a_sink_is_installed(self):
        with sink_installed(InMemorySink()):
            metrics.inc("live", 2)
            metrics.set_gauge("live.g", 7)
            metrics.observe("live.h", 3)
        snap = metrics.snapshot()
        assert snap["counters"]["live"] == 2
        assert snap["gauges"]["live.g"]["value"] == 7
        assert snap["histograms"]["live.h"]["count"] == 1

    def test_registry_reset_between_tests(self):
        # the autouse fixture in conftest.py must have wiped whatever
        # the previous test recorded into the global registry
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
