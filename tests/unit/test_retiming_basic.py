"""Unit tests for retiming fundamentals."""

import pytest

from repro.errors import IllegalRetimingError, RetimingError
from repro.graph import CSDFG, iteration_bound
from repro.retiming import (
    apply_retiming,
    compose_retimings,
    is_legal_retiming,
    normalize_retiming,
    retimed_delay,
    zero_retiming,
)


class TestApply:
    def test_identity(self, figure1):
        out = apply_retiming(figure1, zero_retiming(figure1))
        assert out.structurally_equal(figure1)

    def test_paper_figure1c(self, figure1):
        # Figure 1(c): retime A by +1
        out = apply_retiming(figure1, {"A": 1})
        assert out.delay("D", "A") == 2
        assert out.delay("A", "B") == 1
        assert out.delay("A", "C") == 1
        assert out.delay("A", "E") == 1
        assert out.delay("F", "E") == 1  # untouched

    def test_illegal_raises(self, figure1):
        with pytest.raises(IllegalRetimingError):
            apply_retiming(figure1, {"B": 1})  # A->B has no delay to draw

    def test_unknown_node_rejected(self, figure1):
        with pytest.raises(RetimingError, match="unknown"):
            apply_retiming(figure1, {"Z": 1})

    def test_cycle_delays_invariant(self, figure1):
        out = apply_retiming(figure1, {"A": 1})
        # cycle A->B->D->A keeps 3 delays; E->F->E keeps 1
        assert (
            out.delay("A", "B") + out.delay("B", "D") + out.delay("D", "A") == 3
        )
        assert out.delay("E", "F") + out.delay("F", "E") == 1

    def test_iteration_bound_invariant(self, figure1):
        out = apply_retiming(figure1, {"A": 1})
        assert iteration_bound(out) == iteration_bound(figure1)

    def test_volumes_and_times_unchanged(self, figure1):
        out = apply_retiming(figure1, {"A": 1})
        assert out.volume("A", "B") == 1
        assert out.time("B") == 2


class TestLegality:
    def test_is_legal(self, figure1):
        assert is_legal_retiming(figure1, {"A": 1})
        assert not is_legal_retiming(figure1, {"B": 1})
        assert is_legal_retiming(figure1, {})

    def test_retimed_delay(self, figure1):
        assert retimed_delay(figure1, {"A": 1}, "D", "A") == 2
        assert retimed_delay(figure1, {"A": 1}, "A", "B") == 1
        assert retimed_delay(figure1, {}, "D", "A") == 3


class TestAlgebra:
    def test_normalize(self):
        assert normalize_retiming({"a": -2, "b": 1}) == {"a": 0, "b": 3}
        assert normalize_retiming({}) == {}

    def test_compose(self, figure1):
        r1, r2 = {"A": 1}, {"A": 1, "B": 1}
        once = apply_retiming(figure1, r1)
        twice = apply_retiming(once, r2)
        direct = apply_retiming(figure1, compose_retimings(r1, r2))
        assert twice.structurally_equal(direct)

    def test_zero_retiming_covers_nodes(self, figure7):
        z = zero_retiming(figure7)
        assert set(z) == set(figure7.nodes())
        assert all(v == 0 for v in z.values())
