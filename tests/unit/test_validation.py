"""Unit tests for CSDFG structural validation."""

import pytest

from repro.errors import GraphValidationError
from repro.graph import (
    CSDFG,
    collect_issues,
    find_zero_delay_cycle,
    is_legal,
    topological_order_zero_delay,
    validate_csdfg,
)


def make_zero_cycle():
    g = CSDFG("bad")
    g.add_nodes("abc")
    g.add_edge("a", "b", 0)
    g.add_edge("b", "c", 0)
    g.add_edge("c", "a", 0)
    return g


class TestZeroDelayCycle:
    def test_legal_graph_has_no_cycle(self, figure1):
        assert find_zero_delay_cycle(figure1) == []
        assert is_legal(figure1)

    def test_detects_cycle(self):
        g = make_zero_cycle()
        cycle = find_zero_delay_cycle(g)
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b", "c"}
        assert not is_legal(g)

    def test_delayed_cycle_is_legal(self, tiny_loop):
        assert is_legal(tiny_loop)

    def test_self_zero_loop_detected(self):
        g = CSDFG()
        g.add_node("a")
        # zero-delay self loop is rejected at validation time
        g.add_edge("a", "a", 0)
        assert not is_legal(g)


class TestTopologicalOrder:
    def test_respects_zero_delay_edges(self, figure1):
        order = topological_order_zero_delay(figure1)
        pos = {v: i for i, v in enumerate(order)}
        for e in figure1.edges():
            if e.delay == 0:
                assert pos[e.src] < pos[e.dst]

    def test_raises_on_cycle(self):
        with pytest.raises(GraphValidationError, match="zero-delay cycle"):
            topological_order_zero_delay(make_zero_cycle())

    def test_covers_all_nodes(self, figure7):
        assert len(topological_order_zero_delay(figure7)) == 19


class TestCollectIssues:
    def test_clean_graph(self, figure1):
        assert collect_issues(figure1) == []

    def test_empty_graph_flagged(self):
        issues = collect_issues(CSDFG())
        assert any("no nodes" in i for i in issues)

    def test_empty_graph_allowed_when_requested(self):
        assert collect_issues(CSDFG(), require_nonempty=False) == []

    def test_disconnected_flagged_when_requested(self):
        g = CSDFG()
        g.add_nodes("ab")
        issues = collect_issues(g, require_weakly_connected=True)
        assert any("not weakly connected" in i for i in issues)

    def test_connected_ok(self, figure1):
        assert collect_issues(figure1, require_weakly_connected=True) == []

    def test_validate_raises_with_issue_list(self):
        with pytest.raises(GraphValidationError) as exc:
            validate_csdfg(make_zero_cycle())
        assert exc.value.issues

    def test_validate_passes(self, figure7):
        validate_csdfg(figure7, require_weakly_connected=True)
