"""Unit tests for SCC decomposition and the Karp-style cycle ratio."""

from fractions import Fraction

import pytest

from repro.graph import CSDFG, chain_csdfg, iteration_bound, ring_csdfg
from repro.graph.cycles import (
    karp_maximum_cycle_ratio,
    recursive_core,
    scc_condensation,
    strongly_connected_components,
)


class TestScc:
    def test_figure1_components(self, figure1):
        comps = strongly_connected_components(figure1)
        as_sets = [set(c) for c in comps]
        # recursive cores: {A, B, D} (A->B->D->A) and {E, F} (E->F->E)
        assert {"A", "B", "D"} in as_sets
        assert {"E", "F"} in as_sets
        assert {"C"} in as_sets
        assert sum(len(c) for c in comps) == 6

    def test_dag_all_singletons(self, diamond_dag):
        comps = strongly_connected_components(diamond_dag)
        assert all(len(c) == 1 for c in comps)
        assert len(comps) == 4

    def test_condensation_is_dag(self, figure7):
        comps, edges = scc_condensation(figure7)
        index = {}
        for k, comp in enumerate(comps):
            for v in comp:
                index[v] = k
        # Tarjan emits components in reverse topological order, so all
        # condensation edges must go from a higher to a lower index
        assert all(a > b for a, b in edges) or all(a != b for a, b in edges)
        assert len({v for c in comps for v in c}) == 19

    def test_recursive_core(self, figure1):
        core = recursive_core(figure1)
        assert {frozenset(c) for c in core} == {
            frozenset({"A", "B", "D"}),
            frozenset({"E", "F"}),
        }

    def test_self_loop_counts_as_core(self):
        g = CSDFG()
        g.add_node("a")
        g.add_edge("a", "a", 1, 1)
        assert recursive_core(g) == [["a"]]

    def test_acyclic_core_empty(self, diamond_dag):
        assert recursive_core(diamond_dag) == []


class TestKarpRatio:
    def test_matches_iteration_bound_on_examples(self, figure1, figure7):
        for g in (figure1, figure7):
            assert karp_maximum_cycle_ratio(g) == iteration_bound(g)

    def test_acyclic_zero(self, diamond_dag):
        assert karp_maximum_cycle_ratio(diamond_dag) == 0

    def test_fractional(self):
        g = chain_csdfg(3, time=1, loop_delay=2)
        assert karp_maximum_cycle_ratio(g) == Fraction(3, 2)

    def test_ring(self):
        g = ring_csdfg(5, delay_per_edge=1, time=2)
        assert karp_maximum_cycle_ratio(g) == Fraction(2)

    def test_workload_sweep(self):
        from repro.workloads import make_workload, workload_names

        for name in workload_names():
            g = make_workload(name)
            assert karp_maximum_cycle_ratio(g) == iteration_bound(g), name
