"""Unit tests for the remapping phase."""

from repro.core import remap_nodes, rotate_schedule, start_up_schedule
from repro.schedule import is_valid_schedule


def rotated_state(figure1, mesh2x2):
    g = figure1.copy()
    s = start_up_schedule(g, mesh2x2)
    prev = s.length
    rotated, old = rotate_schedule(g, s)
    return g, s, rotated, prev


class TestAccepts:
    def test_relaxed_always_places(self, figure1, mesh2x2):
        g, s, rotated, prev = rotated_state(figure1, mesh2x2)
        outcome = remap_nodes(
            g, mesh2x2, s, rotated, previous_length=prev, relaxation=True
        )
        assert outcome.accepted
        assert set(outcome.placements) == set(rotated)
        assert is_valid_schedule(g, mesh2x2, s)

    def test_shrinks_figure1(self, figure1, mesh2x2):
        g, s, rotated, prev = rotated_state(figure1, mesh2x2)
        outcome = remap_nodes(
            g, mesh2x2, s, rotated, previous_length=prev, relaxation=True
        )
        assert outcome.new_length < prev

    def test_without_relaxation_monotone(self, figure1, mesh2x2):
        g, s, rotated, prev = rotated_state(figure1, mesh2x2)
        outcome = remap_nodes(
            g, mesh2x2, s, rotated, previous_length=prev, relaxation=False
        )
        assert outcome.accepted
        assert outcome.new_length <= prev
        assert is_valid_schedule(g, mesh2x2, s)

    def test_rejection_rolls_back_placements(self, figure1, mesh2x2):
        g, s, rotated, prev = rotated_state(figure1, mesh2x2)
        # an impossible cap forces rejection; the table must be left
        # exactly as rotated (no stray trial placements)
        tasks_before = set(s.nodes())
        outcome = remap_nodes(
            g, mesh2x2, s, rotated, previous_length=0, relaxation=False
        )
        assert not outcome.accepted
        assert set(s.nodes()) == tasks_before


class TestPlacementQuality:
    def test_prefers_shrinking_slot(self, figure1, mesh2x2):
        g, s, rotated, prev = rotated_state(figure1, mesh2x2)
        remap_nodes(
            g, mesh2x2, s, rotated, previous_length=prev, relaxation=True
        )
        # A must not be parked beyond the previous length when an
        # in-range slot exists
        assert s.finish("A") <= prev

    def test_schedule_stays_valid_without_relaxation(self, figure7):
        from repro.arch import Mesh2D

        arch = Mesh2D(2, 2)
        g = figure7.copy()
        s = start_up_schedule(g, arch)
        prev = s.length
        rotated, _ = rotate_schedule(g, s)
        outcome = remap_nodes(
            g, arch, s, rotated, previous_length=prev, relaxation=False
        )
        if outcome.accepted:
            assert is_valid_schedule(g, arch, s)
            assert s.length <= prev


class TestRemapStrategies:
    def test_first_fit_valid_everywhere(self, figure7):
        from repro.arch import Mesh2D
        from repro.core import CycloConfig, cyclo_compact
        from repro.schedule import is_valid_schedule

        arch = Mesh2D(2, 4)
        cfg = CycloConfig(
            max_iterations=30,
            validate_each_step=False,
            remap_strategy="first-fit",
        )
        result = cyclo_compact(figure7, arch, config=cfg)
        assert is_valid_schedule(result.graph, arch, result.schedule)
        assert result.final_length <= result.initial_length

    def test_implied_never_worse_in_aggregate(self, figure7):
        from repro.arch import paper_architectures
        from repro.core import CycloConfig, cyclo_compact

        totals = {}
        for strat in ("implied", "first-fit"):
            cfg = CycloConfig(
                max_iterations=40,
                validate_each_step=False,
                remap_strategy=strat,
            )
            totals[strat] = sum(
                cyclo_compact(figure7, arch, config=cfg).final_length
                for arch in paper_architectures(8).values()
            )
        assert totals["implied"] <= totals["first-fit"]

    def test_unknown_strategy_rejected(self):
        import pytest

        from repro.core import CycloConfig
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError, match="remap_strategy"):
            CycloConfig(remap_strategy="magic")

    def test_first_fit_monotone_without_relaxation(self, figure1, mesh2x2):
        from repro.core import CycloConfig, cyclo_compact

        cfg = CycloConfig(relaxation=False, remap_strategy="first-fit")
        result = cyclo_compact(figure1, mesh2x2, config=cfg)
        lengths = result.trace.lengths
        assert all(b <= a for a, b in zip(lengths, lengths[1:]))
