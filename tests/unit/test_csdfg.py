"""Unit tests for the CSDFG structure."""

import pytest

from repro.errors import GraphError
from repro.graph import CSDFG, Edge


class TestConstruction:
    def test_add_node_and_time(self):
        g = CSDFG()
        g.add_node("a", 3)
        assert g.time("a") == 3
        assert "a" in g
        assert g.num_nodes == 1

    def test_default_time_is_one(self):
        g = CSDFG()
        g.add_node("a")
        assert g.time("a") == 1

    def test_readd_node_updates_time(self):
        g = CSDFG()
        g.add_node("a", 1)
        g.add_node("a", 5)
        assert g.time("a") == 5
        assert g.num_nodes == 1

    def test_nonpositive_time_rejected(self):
        g = CSDFG()
        with pytest.raises(GraphError):
            g.add_node("a", 0)

    def test_add_nodes_bulk(self):
        g = CSDFG()
        g.add_nodes("abc", time=2)
        assert g.num_nodes == 3
        assert all(g.time(n) == 2 for n in "abc")

    def test_add_edge_requires_nodes(self):
        g = CSDFG()
        g.add_node("a")
        with pytest.raises(GraphError, match="unknown node"):
            g.add_edge("a", "b")

    def test_duplicate_edge_rejected(self):
        g = CSDFG()
        g.add_nodes("ab")
        g.add_edge("a", "b")
        with pytest.raises(GraphError, match="duplicate"):
            g.add_edge("a", "b")

    def test_negative_delay_rejected(self):
        g = CSDFG()
        g.add_nodes("ab")
        with pytest.raises(GraphError):
            g.add_edge("a", "b", delay=-1)

    def test_zero_volume_rejected(self):
        g = CSDFG()
        g.add_nodes("ab")
        with pytest.raises(GraphError):
            g.add_edge("a", "b", volume=0)

    def test_self_loop_allowed_with_delay(self):
        g = CSDFG()
        g.add_node("a")
        e = g.add_edge("a", "a", delay=1)
        assert e.src == e.dst == "a"


class TestQueries:
    def test_edge_accessors(self, figure1):
        assert figure1.delay("D", "A") == 3
        assert figure1.volume("D", "A") == 3
        assert figure1.delay("A", "B") == 0
        assert figure1.has_edge("F", "E")
        assert not figure1.has_edge("E", "A")

    def test_missing_edge_raises(self, figure1):
        with pytest.raises(GraphError, match="no edge"):
            figure1.edge("E", "A")

    def test_degrees(self, figure1):
        assert figure1.out_degree("A") == 3
        assert figure1.in_degree("E") == 4  # A, B, C, F

    def test_predecessors_successors(self, figure1):
        assert set(figure1.successors("A")) == {"B", "C", "E"}
        assert set(figure1.predecessors("F")) == {"D", "E"}

    def test_roots_ignore_delayed_edges(self, figure1):
        # A's only in-edge (D -> A) carries 3 delays
        assert figure1.roots() == ["A"]

    def test_total_work(self, figure1):
        assert figure1.total_work() == 8  # 4*1 + 2*2

    def test_num_edges(self, figure1):
        assert figure1.num_edges == 10

    def test_len_and_iter(self, figure1):
        assert len(figure1) == 6
        assert sorted(figure1.nodes()) == list("ABCDEF")

    def test_unknown_node_queries_raise(self):
        g = CSDFG()
        with pytest.raises(GraphError):
            g.time("ghost")
        with pytest.raises(GraphError):
            list(g.successors("ghost"))
        with pytest.raises(GraphError):
            list(g.in_edges("ghost"))


class TestMutation:
    def test_set_delay(self, figure1):
        figure1.set_delay("D", "A", 1)
        assert figure1.delay("D", "A") == 1
        # volume untouched
        assert figure1.volume("D", "A") == 3

    def test_remove_edge(self, figure1):
        figure1.remove_edge("A", "B")
        assert not figure1.has_edge("A", "B")
        assert figure1.num_edges == 9

    def test_remove_missing_edge_raises(self, figure1):
        with pytest.raises(GraphError):
            figure1.remove_edge("B", "A")

    def test_remove_node_drops_incident_edges(self, figure1):
        figure1.remove_node("E")
        assert "E" not in figure1
        assert not figure1.has_edge("F", "E")
        assert not figure1.has_edge("B", "E")
        assert figure1.num_edges == 5

    def test_remove_unknown_node_raises(self, figure1):
        with pytest.raises(GraphError):
            figure1.remove_node("Z")


class TestCopies:
    def test_copy_is_deep(self, figure1):
        clone = figure1.copy()
        clone.set_delay("D", "A", 0)
        assert figure1.delay("D", "A") == 3

    def test_structurally_equal(self, figure1):
        assert figure1.structurally_equal(figure1.copy())
        other = figure1.copy()
        other.set_delay("D", "A", 2)
        assert not figure1.structurally_equal(other)

    def test_relabel(self, figure1):
        mapped = figure1.relabel({"A": "alpha"})
        assert "alpha" in mapped
        assert mapped.delay("D", "alpha") == 3
        assert "A" not in mapped

    def test_relabel_must_be_injective(self, figure1):
        with pytest.raises(GraphError, match="injective"):
            figure1.relabel({"A": "B"})

    def test_zero_delay_subgraph(self, figure1):
        sub = figure1.zero_delay_subgraph()
        assert sub.num_nodes == 6
        assert sub.num_edges == 8  # drops D->A and F->E
        assert not sub.has_edge("D", "A")


class TestNetworkxBridge:
    def test_round_trip(self, figure1):
        nxg = figure1.to_networkx()
        back = CSDFG.from_networkx(nxg)
        assert figure1.structurally_equal(back)

    def test_attributes_exported(self, figure1):
        nxg = figure1.to_networkx()
        assert nxg.nodes["B"]["time"] == 2
        assert nxg.edges["D", "A"]["delay"] == 3
        assert nxg.edges["D", "A"]["volume"] == 3


class TestEdgeDataclass:
    def test_key_and_with_delay(self):
        e = Edge("a", "b", 2, 3)
        assert e.key == ("a", "b")
        e2 = e.with_delay(0)
        assert e2.delay == 0 and e2.volume == 3
        # original untouched (frozen)
        assert e.delay == 2
