"""Unit tests for schedule refinement and the high-level optimizer."""

import pytest

from repro.arch import CompletelyConnected, LinearArray, Mesh2D
from repro.core import (
    CycloConfig,
    cyclo_compact,
    optimize,
    refine_schedule,
    start_up_schedule,
)
from repro.errors import ScheduleValidationError
from repro.retiming import apply_retiming
from repro.schedule import ScheduleTable, is_valid_schedule

FAST = CycloConfig(max_iterations=20, validate_each_step=False)


class TestRefine:
    def test_never_lengthens(self, figure7):
        arch = Mesh2D(2, 4)
        result = cyclo_compact(figure7, arch, config=FAST)
        refined = refine_schedule(result.graph, arch, result.schedule)
        assert refined.final_length <= refined.initial_length
        assert is_valid_schedule(result.graph, arch, refined.schedule)

    def test_input_untouched(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        before = s.copy()
        refine_schedule(figure1, mesh2x2, s)
        assert s.same_placements(before)

    def test_improves_deliberately_bad_schedule(self):
        # two independent self-looped tasks serialised on one PE of a
        # two-PE machine: refinement must parallelise them
        from repro.graph import CSDFG

        g = CSDFG("pair")
        for n in "ab":
            g.add_node(n, 2)
            g.add_edge(n, n, 1, 1)
        arch = CompletelyConnected(2)
        bad = ScheduleTable(2)
        bad.place("a", 0, 1, 2)
        bad.place("b", 0, 3, 2)
        refined = refine_schedule(g, arch, bad)
        assert refined.final_length == 2
        assert refined.moves >= 1

    def test_rejects_illegal_input(self, figure1, mesh2x2):
        bogus = ScheduleTable(mesh2x2.num_pes)
        bogus.place("A", 0, 1, 1)
        with pytest.raises(ScheduleValidationError):
            refine_schedule(figure1, mesh2x2, bogus)

    def test_fixpoint_is_stable(self, figure7):
        arch = CompletelyConnected(8)
        result = cyclo_compact(figure7, arch, config=FAST)
        once = refine_schedule(result.graph, arch, result.schedule)
        twice = refine_schedule(result.graph, arch, once.schedule)
        assert twice.moves == 0
        assert twice.final_length == once.final_length

    def test_pipelined_mode(self, figure1, mesh2x2):
        cfg = CycloConfig(
            pipelined_pes=True, max_iterations=10, validate_each_step=False
        )
        result = cyclo_compact(figure1, mesh2x2, config=cfg)
        refined = refine_schedule(
            result.graph, mesh2x2, result.schedule, pipelined_pes=True
        )
        assert is_valid_schedule(
            result.graph, mesh2x2, refined.schedule, pipelined_pes=True
        )


class TestOptimize:
    def test_never_worse_than_single_cyclo(self, figure7):
        arch = LinearArray(8)
        single = cyclo_compact(figure7, arch, config=FAST).final_length
        multi = optimize(figure7, arch, config=FAST).final_length
        assert multi <= single

    def test_result_consistency(self, figure7):
        arch = Mesh2D(2, 4)
        res = optimize(figure7, arch, config=FAST)
        assert is_valid_schedule(res.graph, arch, res.schedule)
        assert apply_retiming(figure7, res.retiming).structurally_equal(
            res.graph
        )
        assert res.final_length <= res.initial_length
        assert res.round_lengths[-1] == res.final_length

    def test_input_graph_untouched(self, figure1, mesh2x2):
        snapshot = figure1.copy()
        optimize(figure1, mesh2x2, config=FAST)
        assert figure1.structurally_equal(snapshot)

    def test_round_lengths_monotone(self, figure7):
        res = optimize(figure7, CompletelyConnected(8), config=FAST)
        assert all(
            b <= a for a, b in zip(res.round_lengths, res.round_lengths[1:])
        )

    def test_max_rounds_respected(self, figure7):
        res = optimize(
            figure7, LinearArray(8), config=FAST, max_rounds=1
        )
        assert len(res.round_lengths) <= 2
