"""Unit tests for the qa property suite itself.

Two obligations: every property *holds* on known-good inputs, and every
property *fires* when handed something actually wrong (a suite that can
never fail tests nothing).
"""

import random

import pytest

from repro.arch import make_architecture
from repro.baselines import etf_schedule
from repro.core import CycloConfig, cyclo_compact
from repro.errors import QAError
from repro.graph import CSDFG
from repro.qa import (
    PROPERTIES,
    architecture_automorphism,
    check_all,
    check_property,
    design_criterion_violations,
)
from repro.schedule import ScheduleTable

CFG = CycloConfig(max_iterations=4, validate_each_step=False)


class TestPropertiesHold:
    def test_all_properties_hold_on_figure1(self, figure1, mesh2x2):
        assert check_all(figure1, mesh2x2, CFG, rng=0) == []

    @pytest.mark.parametrize("name", sorted(PROPERTIES))
    def test_each_property_holds_on_tiny_loop(self, tiny_loop, name):
        arch = make_architecture("ring", 3)
        assert check_property(name, tiny_loop, arch, CFG, rng=1) == []

    def test_violations_carry_the_property_prefix(self, figure1, mesh2x2):
        # run one property and confirm the (empty) contract; the prefix
        # behaviour is pinned by the negative tests below
        assert check_property("bounds", figure1, mesh2x2, CFG) == []

    def test_unknown_property_raises(self, figure1, mesh2x2):
        with pytest.raises(QAError, match="unknown property"):
            check_property("nope", figure1, mesh2x2, CFG)


class TestDesignCriterionOracle:
    def test_holds_on_a_real_compaction(self, figure1, mesh2x2):
        result = cyclo_compact(figure1, mesh2x2, config=CFG)
        assert design_criterion_violations(
            result.graph, mesh2x2, result.schedule
        ) == []

    def test_fires_on_a_corrupted_schedule(self, tiny_loop):
        # a -> b with zero delay across one hop: starting both at cs 1
        # ignores a's execution *and* the message transit entirely
        arch = make_architecture("linear", 2)
        broken = ScheduleTable(2, name="broken")
        broken.place("a", 0, 1, 1)
        broken.place("b", 1, 1, 1)
        broken.set_length(2)
        problems = design_criterion_violations(tiny_loop, arch, broken)
        assert problems and "design criterion" in problems[0]

    def test_fires_on_unscheduled_endpoint(self, tiny_loop):
        arch = make_architecture("linear", 2)
        empty = ScheduleTable(2, name="empty")
        empty.set_length(1)
        problems = design_criterion_violations(tiny_loop, arch, empty)
        assert problems and "unscheduled" in problems[0]


class TestArchitectureAutomorphism:
    def test_ring_has_rotation(self):
        arch = make_architecture("ring", 5)
        perm = architecture_automorphism(arch, random.Random(0))
        assert perm is not None and perm != list(range(5))
        dist = arch.distance_matrix
        for p in range(5):
            for q in range(5):
                assert dist[p][q] == dist[perm[p]][perm[q]]

    def test_complete_graph_any_shuffle_works(self):
        arch = make_architecture("complete", 4)
        perm = architecture_automorphism(arch, random.Random(0))
        assert perm is not None

    def test_linear_has_only_the_reversal(self):
        arch = make_architecture("linear", 4)
        perm = architecture_automorphism(arch, random.Random(0))
        assert perm == [3, 2, 1, 0]

    def test_identity_is_never_returned(self):
        # the star's only non-trivial automorphisms permute the leaves
        arch = make_architecture("star", 4)
        for seed in range(10):
            perm = architecture_automorphism(arch, random.Random(seed))
            if perm is not None:
                assert perm != list(range(4))
                assert perm[0] == 0  # the hub is fixed


class TestSuiteCanFail:
    """Inject real bugs and confirm the suite notices (sensitivity)."""

    def test_comm_underpricing_is_caught(self, monkeypatch, figure1):
        from repro.arch.cache import CommCostCache

        real = CommCostCache.cost

        def buggy(self, src, dst, volume):
            cost = real(self, src, dst, volume)
            if src != dst and max(src, dst) >= 2 and cost > 0:
                return cost - 1
            return cost

        monkeypatch.setattr(CommCostCache, "cost", buggy)
        arch = make_architecture("ring", 3)
        found = []
        for seed in range(30):
            from repro.qa import sample_graph

            graph = sample_graph(seed)
            found.extend(check_all(graph, arch, CFG, rng=seed))
            if found:
                break
        assert found, "an under-priced comm cost slipped past the suite"
        assert any(v.startswith("[") for v in found)  # prefixed

    def test_analyzer_agrees_catches_underpriced_comm(self, monkeypatch):
        # the same injected pricing bug, seen through the
        # analyzer-agreement lens: the analyzer passes the inputs, the
        # pipeline produces a validator-illegal schedule, the property
        # must notice the disagreement
        from repro.arch.cache import CommCostCache
        from repro.qa import sample_graph

        real = CommCostCache.cost

        def buggy(self, src, dst, volume):
            cost = real(self, src, dst, volume)
            if src != dst and max(src, dst) >= 2 and cost > 0:
                return cost - 1
            return cost

        monkeypatch.setattr(CommCostCache, "cost", buggy)
        arch = make_architecture("ring", 3)
        found = []
        for seed in range(30):
            graph = sample_graph(seed)
            found = check_property("analyzer-agrees", graph, arch, CFG,
                                   rng=seed)
            if found:
                break
        assert found, "analyzer-agrees missed a validator-illegal schedule"
        assert "validator-illegal" in found[0]

    def test_analyzer_agrees_accepts_typed_refusal(self):
        # a zero-delay cycle: the analyzer rejects the input (RA101)
        # and the pipeline refuses with a typed error — agreement holds
        g = CSDFG("deadlocked")
        g.add_node("a", 1)
        g.add_node("b", 1)
        g.add_edge("a", "b", 0, 1)
        g.add_edge("b", "a", 0, 1)
        arch = make_architecture("ring", 3)
        assert check_property("analyzer-agrees", g, arch, CFG, rng=0) == []

    def test_etf_gated_off_heterogeneous(self, figure1):
        # heterogeneous machines are outside ETF's contract; the
        # legality property must not call it there (no false alarms)
        arch = make_architecture("complete", 3).with_time_scales((1, 2, 1))
        assert arch.is_heterogeneous
        assert check_property("schedules-legal", figure1, arch, CFG) == []


class TestEtfBaselineStillSane:
    def test_etf_schedules_fuzz_samples(self):
        from repro.qa import sample_graph

        arch = make_architecture("complete", 3)
        for seed in range(20):
            graph = sample_graph(seed)
            schedule = etf_schedule(graph, arch)
            assert schedule.length >= 1


class TestSanitizerAgrees:
    def test_registered(self):
        assert "sanitizer-agrees" in PROPERTIES

    def test_holds_on_figure1(self, figure1, mesh2x2):
        assert check_property(
            "sanitizer-agrees", figure1, mesh2x2, CFG, rng=3
        ) == []

    def test_fires_on_run_dependent_pipeline(self, figure1, mesh2x2,
                                             monkeypatch):
        # simulate nondeterminism the way the sanitizer would see it:
        # the second run of the pipeline behaves differently (here, a
        # crippled iteration budget stands in for hash-seed dependence)
        import repro.qa.properties as props

        real = props.cyclo_compact
        calls = {"n": 0}

        def flaky(graph, arch, config=None, **kw):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                config = CycloConfig(max_iterations=0,
                                     validate_each_step=False)
            return real(graph, arch, config=config, **kw)

        monkeypatch.setattr(props, "cyclo_compact", flaky)
        found = check_property(
            "sanitizer-agrees", figure1, mesh2x2, CFG, rng=3
        )
        assert found, "sanitizer-agrees missed a run-dependent pipeline"
        assert "not deterministic" in found[0]
