"""Unit tests for checkpoint/resume of compaction runs.

The acceptance invariant: a run checkpointed after k passes and resumed
to z passes produces exactly the run that did z passes uninterrupted
(the optimiser is deterministic).
"""

import dataclasses

import pytest

from repro.arch import Mesh2D
from repro.core import CycloConfig, cyclo_compact
from repro.errors import CheckpointError
from repro.resilience import CompactionCheckpoint, resume_compaction
from repro.schedule import schedule_to_json
from repro.workloads import figure1_csdfg, figure7_csdfg

ARCH = Mesh2D(2, 4)
FULL = CycloConfig(max_iterations=24)
PARTIAL = CycloConfig(max_iterations=8)


def same_run(a, b) -> None:
    assert schedule_to_json(a.schedule) == schedule_to_json(b.schedule)
    assert a.retiming == b.retiming
    assert a.stop_reason == b.stop_reason
    assert a.trace.records == b.trace.records
    assert schedule_to_json(a.final_schedule) == schedule_to_json(
        b.final_schedule
    )


class TestResumeEqualsUninterrupted:
    def test_figure7(self):
        graph = figure7_csdfg()
        full = cyclo_compact(graph, ARCH, config=FULL)
        partial = cyclo_compact(graph, ARCH, config=PARTIAL)
        ckpt = CompactionCheckpoint.capture(partial, graph, ARCH, PARTIAL)
        resumed = resume_compaction(graph, ARCH, ckpt, config=FULL)
        same_run(resumed, full)

    def test_through_json(self, tmp_path):
        graph = figure7_csdfg()
        full = cyclo_compact(graph, ARCH, config=FULL)
        partial = cyclo_compact(graph, ARCH, config=PARTIAL)
        ckpt = CompactionCheckpoint.capture(partial, graph, ARCH, PARTIAL)
        path = ckpt.save(tmp_path / "run.ckpt.json")
        loaded = CompactionCheckpoint.load(path)
        resumed = resume_compaction(graph, ARCH, loaded, config=FULL)
        same_run(resumed, full)

    def test_deadline_killed_run_resumes(self):
        graph = figure1_csdfg()
        killed_cfg = CycloConfig(max_iterations=18, deadline_seconds=0.0)
        killed = cyclo_compact(graph, ARCH, config=killed_cfg)
        assert killed.stop_reason == "deadline"
        ckpt = CompactionCheckpoint.capture(killed, graph, ARCH, killed_cfg)
        # default resume config == checkpointed config minus the deadline
        resumed = resume_compaction(graph, ARCH, ckpt)
        full = cyclo_compact(
            graph, ARCH, config=CycloConfig(max_iterations=18)
        )
        same_run(resumed, full)


class TestGuards:
    def test_wrong_workload_rejected(self):
        graph = figure1_csdfg()
        partial = cyclo_compact(graph, ARCH, config=PARTIAL)
        ckpt = CompactionCheckpoint.capture(partial, graph, ARCH, PARTIAL)
        with pytest.raises(CheckpointError, match="workload"):
            resume_compaction(figure7_csdfg(), ARCH, ckpt)

    def test_wrong_architecture_rejected(self):
        graph = figure1_csdfg()
        partial = cyclo_compact(graph, ARCH, config=PARTIAL)
        ckpt = CompactionCheckpoint.capture(partial, graph, ARCH, PARTIAL)
        with pytest.raises(CheckpointError, match="architecture"):
            resume_compaction(graph, Mesh2D(2, 2), ckpt)

    def test_capture_requires_final_state(self):
        graph = figure1_csdfg()
        partial = cyclo_compact(graph, ARCH, config=PARTIAL)
        gutted = dataclasses.replace(partial, final_schedule=None)
        with pytest.raises(CheckpointError, match="final"):
            CompactionCheckpoint.capture(gutted, graph, ARCH, PARTIAL)

    def test_format_guards(self):
        with pytest.raises(CheckpointError, match="format"):
            CompactionCheckpoint.from_dict({"format": "something-else"})
        graph = figure1_csdfg()
        partial = cyclo_compact(graph, ARCH, config=PARTIAL)
        ckpt = CompactionCheckpoint.capture(partial, graph, ARCH, PARTIAL)
        data = ckpt.to_dict()
        data["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            CompactionCheckpoint.from_dict(data)
