"""Unit tests for architecture ASCII rendering."""

from repro.arch import (
    BalancedTree,
    Hypercube,
    LinearArray,
    Mesh2D,
    Ring,
    Torus2D,
    render_architecture,
    render_processor_load,
)
from repro.core import start_up_schedule
from repro.workloads import figure1_csdfg, figure1_mesh


class TestRenderArchitecture:
    def test_mesh_grid(self):
        text = render_architecture(Mesh2D(2, 4))
        lines = text.splitlines()
        assert "pe1 -- pe2 -- pe3 -- pe4" in lines[1]
        assert "pe5" in text and "pe8" in text
        assert "|" in text  # vertical links drawn

    def test_torus_marks_wraparound(self):
        text = render_architecture(Torus2D(3, 3))
        assert "~" in text
        assert "wrap-around" in text

    def test_linear_chain(self):
        text = render_architecture(LinearArray(4))
        assert "pe1 -- pe2 -- pe3 -- pe4" in text
        assert "(pe1)" not in text

    def test_ring_closes(self):
        text = render_architecture(Ring(5))
        assert text.rstrip().endswith("(pe1)")

    def test_hypercube_bit_labels(self):
        text = render_architecture(Hypercube(3))
        assert "[000]" in text and "[111]" in text
        assert "one bit" in text

    def test_generic_listing(self):
        text = render_architecture(BalancedTree(2, 1))
        assert "pe1 -- pe2, pe3" in text

    def test_every_pe_mentioned(self):
        for arch in (Mesh2D(2, 2), Ring(6), Hypercube(2), LinearArray(3)):
            text = render_architecture(arch)
            for p in arch.processors:
                assert f"pe{p + 1}" in text, arch.name


class TestRenderLoad:
    def test_bars_match_busy_cells(self):
        g, m = figure1_csdfg(), figure1_mesh()
        s = start_up_schedule(g, m)
        text = render_processor_load(m, s)
        pe1 = next(l for l in text.splitlines() if "pe1" in l)
        assert pe1.count("#") == 7  # fully busy
        pe4 = next(l for l in text.splitlines() if "pe4" in l)
        assert pe4.count("#") == 0

    def test_task_names_listed(self):
        g, m = figure1_csdfg(), figure1_mesh()
        s = start_up_schedule(g, m)
        text = render_processor_load(m, s)
        assert "A,B,D,E,F" in text
