"""Exporter edge cases: empty traces, unclosed/orphan spans, deep
nesting, and non-ASCII names surviving the Chrome-trace round trip."""

import json

from repro.obs import InMemorySink, metrics, sink_installed, span
from repro.obs.aggregate import trace_file_span_events
from repro.obs.collapse import collapsed_stacks
from repro.obs.export import (
    chrome_trace_events,
    metrics_report,
    write_chrome_trace,
)


def _span_event(name, start, dur, depth, attrs=None):
    return {
        "type": "span",
        "name": name,
        "start_ns": start,
        "dur_ns": dur,
        "depth": depth,
        "attrs": attrs or {},
    }


class TestEmptyTrace:
    def test_no_events_no_tracks(self):
        assert chrome_trace_events([]) == []

    def test_non_span_events_are_ignored(self):
        assert chrome_trace_events([{"type": "metric", "name": "x"}]) == []

    def test_written_file_is_valid_and_round_trips_empty(self, tmp_path):
        path = write_chrome_trace(tmp_path / "empty.json", [])
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["traceEvents"] == []
        assert trace_file_span_events(path) == []

    def test_empty_metrics_report(self):
        report = metrics_report({})
        assert "(no metrics recorded)" in report


class TestUnclosedSpan:
    def test_entered_but_never_exited_span_emits_nothing(self):
        sink = InMemorySink()
        with sink_installed(sink):
            handle = span("never-closed")
            handle.__enter__()
            try:
                with span("survivor"):
                    pass
            finally:
                # unwind the leaked depth without recording the span
                from repro.obs import spans as spans_mod

                spans_mod._depth = handle.depth
        names = [e["name"] for e in sink.events if e["type"] == "span"]
        assert names == ["survivor"]
        assert chrome_trace_events(sink.events)[-1]["name"] == "survivor"

    def test_orphan_child_of_unclosed_parent_round_trips_as_root(
        self, tmp_path
    ):
        # the parent at depth 0 never emitted; its child must not crash
        # the exporter and comes back as a root after the round trip
        events = [_span_event("orphan", 10, 20, 1)]
        path = write_chrome_trace(tmp_path / "orphan.json", events)
        back = trace_file_span_events(path)
        assert [(e["name"], e["depth"]) for e in back] == [("orphan", 0)]
        assert collapsed_stacks(back) == ["orphan 0"]

    def test_exception_exited_span_keeps_error_attr(self, tmp_path):
        sink = InMemorySink()
        with sink_installed(sink):
            try:
                with span("doomed"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        path = write_chrome_trace(tmp_path / "err.json", sink.events)
        (back,) = trace_file_span_events(path)
        assert back["name"] == "doomed"
        assert back["attrs"]["error"] == "RuntimeError"


class TestDeepNesting:
    DEPTH = 50

    def _tower(self):
        # spans nested DEPTH deep, each 2 ns of self time per side
        return [
            _span_event(f"level{d}", d, 2 * (self.DEPTH - d) + 1, d)
            for d in range(self.DEPTH)
        ]

    def test_round_trip_preserves_every_depth(self, tmp_path):
        path = write_chrome_trace(tmp_path / "deep.json", self._tower())
        back = trace_file_span_events(path)
        assert [e["depth"] for e in back] == list(range(self.DEPTH))

    def test_collapsed_stack_carries_all_frames(self):
        lines = collapsed_stacks(self._tower())
        deepest = max(lines, key=lambda s: s.count(";"))
        stack, _, _ = deepest.rpartition(" ")
        assert stack.split(";") == [
            f"level{d}" for d in range(self.DEPTH)
        ]

    def test_real_recursive_recording(self):
        sink = InMemorySink()

        def recurse(n):
            if n == 0:
                return
            with span("recurse", n=n):
                recurse(n - 1)

        with sink_installed(sink):
            recurse(self.DEPTH)
        spans = [e for e in sink.events if e["type"] == "span"]
        assert sorted(e["depth"] for e in spans) == list(range(self.DEPTH))


class TestNonAscii:
    def test_span_names_survive_the_chrome_round_trip(self, tmp_path):
        events = [
            _span_event("época", 0, 100_000, 0),
            _span_event("λ-rotate", 10_000, 30_000, 1, {"città": "naïve"}),
        ]
        path = write_chrome_trace(tmp_path / "uni.json", events)
        back = trace_file_span_events(path)
        assert [e["name"] for e in back] == ["época", "λ-rotate"]
        assert back[1]["attrs"]["città"] == "naïve"
        assert collapsed_stacks(back) == ["época 70", "época;λ-rotate 30"]

    def test_metrics_report_renders_non_ascii_names(self):
        metrics.reset()
        try:
            metrics.REGISTRY.counter("métrica.ñ").inc(3)
            metrics.REGISTRY.histogram("durée").observe(1.5)
            report = metrics_report(metrics.snapshot())
        finally:
            metrics.reset()
        assert "| métrica.ñ | 3 |" in report
        assert "durée" in report
