"""Unit tests for the unfolding-based scheduling study."""

from fractions import Fraction

from repro.analysis import unfolding_study
from repro.arch import CompletelyConnected
from repro.core import CycloConfig
from repro.graph import chain_csdfg, iteration_bound


class TestUnfoldingStudy:
    def test_points_respect_bound(self, figure1):
        arch = CompletelyConnected(6)
        points = unfolding_study(figure1, arch, factors=(1, 2))
        for p in points:
            assert p.effective >= p.bound
            assert p.effective == Fraction(p.length, p.factor)

    def test_fractional_bound_approachable(self):
        # chain of 3 unit tasks over 2 delays: bound 3/2 — a factor-2
        # unfolding can realise it exactly on a wide machine
        g = chain_csdfg(3, time=1, loop_delay=2)
        assert iteration_bound(g) == Fraction(3, 2)
        arch = CompletelyConnected(6)
        cfg = CycloConfig(max_iterations=40, validate_each_step=False)
        points = unfolding_study(g, arch, factors=(1, 2), config=cfg)
        f1, f2 = points
        assert f1.effective >= 2  # integer lengths cannot express 1.5
        assert f2.effective < f1.effective  # unfolding strictly helps

    def test_factor_one_matches_plain_cyclo(self, figure1):
        from repro.core import cyclo_compact

        arch = CompletelyConnected(4)
        cfg = CycloConfig(max_iterations=20, validate_each_step=False)
        points = unfolding_study(figure1, arch, factors=(1,), config=cfg)
        direct = cyclo_compact(figure1, arch, config=cfg)
        assert points[0].length == direct.final_length
