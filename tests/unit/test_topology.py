"""Unit tests for the Architecture base class."""

import numpy as np
import pytest

from repro.arch import Architecture, ZeroCommModel
from repro.errors import ArchitectureError, UnknownProcessorError


def path3():
    return Architecture(3, [(0, 1), (1, 2)], name="path3")


class TestConstruction:
    def test_basic(self):
        arch = path3()
        assert arch.num_pes == 3
        assert arch.links == ((0, 1), (1, 2))

    def test_rejects_disconnected(self):
        with pytest.raises(ArchitectureError, match="not connected"):
            Architecture(3, [(0, 1)])

    def test_rejects_self_link(self):
        with pytest.raises(ArchitectureError, match="self-link"):
            Architecture(2, [(0, 0), (0, 1)])

    def test_rejects_out_of_range_link(self):
        with pytest.raises(UnknownProcessorError):
            Architecture(2, [(0, 5)])

    def test_rejects_zero_pes(self):
        with pytest.raises(ArchitectureError):
            Architecture(0, [])

    def test_single_pe_no_links(self):
        arch = Architecture(1, [])
        assert arch.diameter == 0
        assert arch.hops(0, 0) == 0

    def test_duplicate_links_collapse(self):
        arch = Architecture(2, [(0, 1), (1, 0)])
        assert arch.links == ((0, 1),)


class TestDistances:
    def test_hops(self):
        arch = path3()
        assert arch.hops(0, 2) == 2
        assert arch.hops(2, 0) == 2
        assert arch.hops(1, 1) == 0

    def test_distance_matrix_readonly(self):
        arch = path3()
        with pytest.raises(ValueError):
            arch.distance_matrix[0, 0] = 5

    def test_matrix_symmetric(self):
        arch = path3()
        assert np.array_equal(arch.distance_matrix, arch.distance_matrix.T)

    def test_diameter_and_average(self):
        arch = path3()
        assert arch.diameter == 2
        assert arch.average_distance == pytest.approx((1 + 2 + 1 + 1 + 2 + 1) / 6)

    def test_neighbors_and_degree(self):
        arch = path3()
        assert arch.neighbors(1) == (0, 2)
        assert arch.degree(0) == 1

    def test_unknown_pe_raises(self):
        with pytest.raises(UnknownProcessorError):
            path3().hops(0, 9)


class TestCommCost:
    def test_store_and_forward_default(self):
        arch = path3()
        assert arch.comm_cost(0, 2, 3) == 6
        assert arch.comm_cost(1, 1, 3) == 0

    def test_with_comm_model(self):
        arch = path3().with_comm_model(ZeroCommModel())
        assert arch.comm_cost(0, 2, 3) == 0
        assert arch.name == "path3"
        # original unchanged
        assert path3().comm_cost(0, 2, 3) == 6


class TestNetworkx:
    def test_isomorphism(self):
        a = Architecture(3, [(0, 1), (1, 2)])
        b = Architecture(3, [(2, 1), (1, 0)])
        assert a.is_isomorphic_to(b)

    def test_to_networkx(self):
        g = path3().to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2
