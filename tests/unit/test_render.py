"""Unit tests for schedule rendering."""

from repro.schedule import ScheduleTable, render_gantt, render_summary, render_table


def sample():
    t = ScheduleTable(2, name="demo")
    t.place("A", 0, 1, 1)
    t.place("BB", 0, 2, 2)
    t.place("C", 1, 3, 1)
    return t


class TestRenderTable:
    def test_paper_layout(self):
        out = render_table(sample())
        lines = out.splitlines()
        assert lines[0].startswith("cs")
        assert "pe1" in lines[0] and "pe2" in lines[0]
        # multi-cycle task repeats per control step (paper's "B B")
        assert sum("BB" in line for line in lines) == 2

    def test_title(self):
        out = render_table(sample(), title="hello")
        assert out.splitlines()[0] == "hello"

    def test_empty_cells_dotted(self):
        out = render_table(sample())
        assert "." in out

    def test_empty_schedule(self):
        out = render_table(ScheduleTable(1))
        assert "cs" in out


class TestRenderGantt:
    def test_one_row_per_pe(self):
        out = render_gantt(sample())
        lines = out.splitlines()
        assert any(line.startswith("pe1") for line in lines)
        assert any(line.startswith("pe2") for line in lines)

    def test_cells_align_with_placements(self):
        out = render_gantt(sample())
        pe1 = next(l for l in out.splitlines() if l.startswith("pe1"))
        assert "A" in pe1 and "BB" in pe1


class TestSummary:
    def test_contents(self):
        s = render_summary(sample())
        assert "demo" in s
        assert "length=3" in s
        assert "tasks=3" in s
        assert "PEs used=2/2" in s
